"""Pluggable execution backends for cohort flushes.

The :class:`~repro.serving.scheduler.AsyncFleetScheduler` decides *when* a
cohort's micro-batch flushes; the :class:`FlushExecutor` it is configured
with decides *where* the classification runs.  Three backends ship:

- :class:`SerialExecutor` — runs every flush inline on the caller's thread.
  The default, and bit-for-bit the pre-executor behaviour (same classifier
  objects, same injected clock, same sequence of ``clock.now()`` calls).
- :class:`ThreadPoolFlushExecutor` — runs flushes on a shared thread pool,
  so different cohorts' flushes overlap.  The shared classifier objects are
  used from worker threads; that is safe *across cohorts* (each cohort owns
  its own classifier/plan — plan scratch buffers are per-object) but the
  scheduler must never run two flushes of the same cohort concurrently,
  which it enforces by refusing double-flushes.
- :class:`ProcessShardExecutor` — one dedicated worker process per cohort.
  At bind time each worker receives the cohort classifier's transport
  payload (:meth:`repro.models.compiled.CompiledClassifier.to_payload`) and
  reconstructs the plan replica once; every flush then ships only the
  stacked windows and gets probabilities back.  Workers time their own
  service with their local monotonic clock (an injected virtual clock
  cannot cross a process boundary — see the README's clock caveats).

The process backend is *supervised*: a :class:`ShardSupervisor` tracks each
cohort worker's lifecycle (``running`` → ``respawning`` → ``quarantined``).
When a worker dies, the executor respawns it from the cohort's cached
payload with capped exponential backoff + deterministic jitter, re-running
the ready handshake; more than ``max_restarts`` deaths inside a sliding
window quarantines the cohort, and the scheduler degrades it to an inline
:class:`SerialExecutor` fallback instead of crashing the fleet.  Workers
also support zero-downtime plan hot-swap (:meth:`ProcessShardExecutor.
swap_plan`): a new payload travels over the existing pipe as a versioned
control message, the worker double-buffers the replica and flips between
flushes, and every flush reply echoes the ``plan_version`` it served.

Executors hand back :class:`FlushTicket` futures; the scheduler tracks one
in-flight ticket per cohort and folds the completed
:class:`~repro.serving.batcher.ExecutionResult` back into session state on
its own thread, so sessions and telemetry are never touched concurrently.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import signal
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor as _ThreadPool
from concurrent.futures import TimeoutError as _FutureTimeoutError
from dataclasses import dataclass
from typing import (
    Deque,
    Dict,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.models.base import EEGClassifier
from repro.serving.batcher import ExecutionResult, PreparedBatch, execute_windows
from repro.utils.timing import SYSTEM_CLOCK, Clock

#: Supervisor states of one cohort's worker lane.
WORKER_RUNNING = "running"
WORKER_RESPAWNING = "respawning"
WORKER_QUARANTINED = "quarantined"


class FlushExecutionError(RuntimeError):
    """A flush failed inside an execution backend (worker error or loss)."""


class WorkerDiedError(FlushExecutionError):
    """A shard worker process died, with work possibly still assigned to it.

    Carries the cohort and any tickets that were in flight on the dead
    worker so callers can *requeue* instead of crashing the fleet: the
    scheduler puts the ticket's windows back on the cohort queue, and the
    stream consumer leaves the corresponding entries un-acked so another
    scheduler process claims them.  Before this error existed a dead worker
    raised a bare :class:`FlushExecutionError` and poisoned its cohort
    forever — nothing downstream could tell "the batch was bad" from "the
    lane is gone".
    """

    def __init__(
        self,
        cohort: str,
        pending: Tuple["FlushTicket", ...] = (),
        detail: str = "",
    ) -> None:
        message = f"shard worker {cohort!r} has died"
        if pending:
            message += f" with {len(pending)} flush(es) in flight"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        #: Cohort whose dedicated worker is gone.
        self.cohort = cohort
        #: Tickets for flushes handed to the worker and never answered.
        self.pending = tuple(pending)


class WorkerRespawnPending(FlushExecutionError):
    """The cohort's worker is between backoff and respawn; try again later.

    Raised by a supervised executor when a flush is submitted before the
    supervisor's backoff delay has elapsed.  The windows stay queued (the
    scheduler restores them) and :attr:`retry_at_s` tells the caller when
    the respawn attempt becomes due on the executor's clock.
    """

    def __init__(self, cohort: str, retry_at_s: float) -> None:
        super().__init__(
            f"shard worker {cohort!r} is respawning; retry at t={retry_at_s:.6f}"
        )
        self.cohort = cohort
        self.retry_at_s = retry_at_s


class CohortQuarantinedError(FlushExecutionError):
    """The cohort burned through its restart budget and is quarantined.

    The supervisor refuses further respawns; the scheduler degrades the
    cohort to its inline serial fallback so the fleet keeps serving.
    """

    def __init__(self, cohort: str, deaths: int, window_s: float) -> None:
        super().__init__(
            f"cohort {cohort!r} quarantined: {deaths} worker deaths within "
            f"{window_s}s exhausted the restart budget"
        )
        self.cohort = cohort
        self.deaths = deaths


class ExecutorClosedError(FlushExecutionError):
    """The executor was shut down; no further binds or flushes are accepted."""


@runtime_checkable
class FlushTicket(Protocol):
    """Future-shaped handle on one in-flight cohort flush."""

    def done(self) -> bool:
        """True once :meth:`result` will return without blocking."""
        ...

    def result(self, timeout: Optional[float] = None) -> ExecutionResult:
        """Block until the flush completes; raises on executor failure."""
        ...


class FlushExecutor(Protocol):
    """Where cohort flushes run.  Implementations must be bound exactly once.

    ``serializes_flushes`` tells the scheduler whether flushes share one
    executor lane (wake times must then budget for earlier cohorts' service
    time) or run concurrently (each cohort's deadline stands alone).
    ``remote_execution`` marks executors whose classification happens outside
    this process — the scheduler then skips local plan specialisation (the
    workers specialise their own replicas), so no arena memory is pinned on
    plans that never execute.
    """

    serializes_flushes: bool
    remote_execution: bool

    def bind(
        self, classifiers: Mapping[str, EEGClassifier], clock: Clock
    ) -> None: ...

    def submit_flush(self, cohort: str, prepared: PreparedBatch) -> FlushTicket: ...

    def shutdown(self) -> None: ...


class CompletedTicket:
    """A ticket for work that already ran (inline executors)."""

    def __init__(self, execution: ExecutionResult) -> None:
        self._execution = execution

    def done(self) -> bool:
        return True

    def result(self, timeout: Optional[float] = None) -> ExecutionResult:
        return self._execution


# ---------------------------------------------------------------------- #
# supervision policy
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SupervisorConfig:
    """Respawn/quarantine policy for supervised shard executors.

    Parameters
    ----------
    max_restarts:
        Worker deaths tolerated inside ``restart_window_s`` before the
        cohort is quarantined (the death that *exceeds* this count
        quarantines, so ``max_restarts=3`` allows three respawns in the
        window and quarantines on the fourth death).
    restart_window_s:
        Length of the sliding window the death count is measured over.
    backoff_initial_s / backoff_factor / backoff_max_s:
        Capped exponential backoff between a death and the respawn attempt:
        the n-th *consecutive* failure waits
        ``min(backoff_max_s, backoff_initial_s * backoff_factor**(n-1))``.
        A successful respawn resets the exponent.
    jitter_fraction:
        Uniform jitter added on top of the backoff, as a fraction of it,
        drawn from a per-cohort seeded RNG — deterministic under test,
        decorrelated across cohorts in production.
    seed:
        Base seed of the jitter RNGs.
    """

    max_restarts: int = 3
    restart_window_s: float = 60.0
    backoff_initial_s: float = 0.05
    backoff_max_s: float = 2.0
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.restart_window_s <= 0:
            raise ValueError("restart_window_s must be positive")
        if self.backoff_initial_s < 0:
            raise ValueError("backoff_initial_s must be non-negative")
        if self.backoff_max_s < self.backoff_initial_s:
            raise ValueError("backoff_max_s must be >= backoff_initial_s")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")

    def max_backoff_budget_s(self) -> float:
        """Upper bound on any single death→retry delay (backoff + jitter)."""
        return self.backoff_max_s * (1.0 + self.jitter_fraction)


class ShardSupervisor:
    """Pure, clock-injected lifecycle policy for a fleet of worker lanes.

    Tracks one state machine per cohort (``running`` → ``respawning`` →
    back to ``running`` on a successful respawn, or ``quarantined`` once
    the sliding-window death count exceeds the budget) plus the capped
    exponential backoff + jitter that spaces respawn attempts.  It never
    touches processes itself — executors call :meth:`record_death` /
    :meth:`record_respawn_success` and ask :meth:`state` /
    :meth:`retry_at_s` before acting — which is what makes the policy
    exactly testable on a virtual clock and shareable between the real
    process backend and the simulated chaos backend.
    """

    def __init__(
        self,
        config: Optional[SupervisorConfig] = None,
        clock: Clock = SYSTEM_CLOCK,
    ) -> None:
        self.config = config or SupervisorConfig()
        self.clock = clock
        self._state: Dict[str, str] = {}
        self._deaths: Dict[str, Deque[float]] = {}
        self._consecutive: Dict[str, int] = {}
        self._retry_at: Dict[str, float] = {}
        self._restarts: Dict[str, int] = {}
        self._rng: Dict[str, random.Random] = {}

    def watch(self, cohort: str) -> None:
        """Start supervising a cohort lane (idempotent)."""
        if cohort not in self._state:
            self._state[cohort] = WORKER_RUNNING
            self._deaths[cohort] = deque()
            self._consecutive[cohort] = 0
            self._restarts[cohort] = 0
            self._rng[cohort] = random.Random(
                (self.config.seed, cohort).__hash__() & 0x7FFFFFFF
            )

    def state(self, cohort: str) -> str:
        return self._state.get(cohort, WORKER_RUNNING)

    def states(self) -> Dict[str, str]:
        return dict(self._state)

    def retry_at_s(self, cohort: str) -> Optional[float]:
        """Clock time the next respawn attempt becomes due (respawning only)."""
        if self.state(cohort) != WORKER_RESPAWNING:
            return None
        return self._retry_at[cohort]

    def restart_count(self, cohort: str) -> int:
        """Successful respawns of this cohort's lane so far."""
        return self._restarts.get(cohort, 0)

    def respawn_due(self, cohort: str) -> bool:
        retry_at = self.retry_at_s(cohort)
        return retry_at is not None and self.clock.now() >= retry_at

    def record_death(self, cohort: str) -> str:
        """Fold one worker death in; returns the cohort's new state."""
        self.watch(cohort)
        if self._state[cohort] == WORKER_QUARANTINED:
            return WORKER_QUARANTINED
        now = self.clock.now()
        deaths = self._deaths[cohort]
        horizon = now - self.config.restart_window_s
        while deaths and deaths[0] < horizon:
            deaths.popleft()
        deaths.append(now)
        if len(deaths) > self.config.max_restarts:
            self._state[cohort] = WORKER_QUARANTINED
            return WORKER_QUARANTINED
        failures = self._consecutive[cohort] = self._consecutive[cohort] + 1
        backoff = min(
            self.config.backoff_max_s,
            self.config.backoff_initial_s
            * self.config.backoff_factor ** (failures - 1),
        )
        jitter = backoff * self.config.jitter_fraction * self._rng[cohort].random()
        self._retry_at[cohort] = now + backoff + jitter
        self._state[cohort] = WORKER_RESPAWNING
        return WORKER_RESPAWNING

    def record_respawn_success(self, cohort: str) -> None:
        self.watch(cohort)
        self._state[cohort] = WORKER_RUNNING
        self._consecutive[cohort] = 0
        self._restarts[cohort] += 1

    def deaths_in_window(self, cohort: str) -> int:
        return len(self._deaths.get(cohort, ()))


class _BoundMixin:
    """Shared bind-once bookkeeping for the concrete executors."""

    def __init__(self) -> None:
        self._classifiers: Optional[Dict[str, EEGClassifier]] = None
        self._clock: Clock = SYSTEM_CLOCK

    @property
    def bound(self) -> bool:
        return self._classifiers is not None

    def _check_bind(self, classifiers: Mapping[str, EEGClassifier]) -> None:
        if self.bound:
            raise RuntimeError(
                "executor is already bound to a scheduler; build one executor "
                "per scheduler"
            )
        if not classifiers:
            raise ValueError("bind() needs at least one cohort classifier")

    def _classifier_for(self, cohort: str) -> EEGClassifier:
        if self._classifiers is None:
            raise RuntimeError("executor is not bound; call bind() first")
        try:
            return self._classifiers[cohort]
        except KeyError:
            raise KeyError(f"executor has no cohort {cohort!r}") from None

    def swap_classifier(self, cohort: str, classifier: EEGClassifier) -> None:
        """Replace a cohort's classifier between flushes (plan hot-swap).

        Local executors serve the shared classifier object directly, so the
        swap is a dictionary write; the caller (the scheduler) is
        responsible for never swapping while that cohort has a flush in
        flight.
        """
        if self._classifiers is None:
            raise RuntimeError("executor is not bound; call bind() first")
        if cohort not in self._classifiers:
            raise KeyError(f"executor has no cohort {cohort!r}")
        self._classifiers[cohort] = classifier


class SerialExecutor(_BoundMixin):
    """Inline execution on the caller's thread — today's behaviour, exactly.

    Uses the scheduler's injected clock for service timing, so virtual-clock
    tests stay exact, and returns already-completed tickets, so the
    scheduler's flush path is synchronous end to end.  ``label`` names the
    execution lane in telemetry — the scheduler's degraded-cohort fallback
    uses ``"degraded:<cohort>"`` so healed traffic is distinguishable.
    """

    serializes_flushes = True
    remote_execution = False

    def __init__(self, label: str = "serial") -> None:
        super().__init__()
        self.label = label

    def bind(self, classifiers: Mapping[str, EEGClassifier], clock: Clock) -> None:
        self._check_bind(classifiers)
        self._classifiers = dict(classifiers)
        self._clock = clock

    def submit_flush(self, cohort: str, prepared: PreparedBatch) -> CompletedTicket:
        classifier = self._classifier_for(cohort)
        return CompletedTicket(
            execute_windows(
                classifier,
                prepared.windows,
                prepared.chunk_size,
                self._clock,
                worker=self.label,
            )
        )

    def shutdown(self) -> None:
        self._classifiers = None


class _FutureTicket:
    """Adapter from ``concurrent.futures.Future`` to :class:`FlushTicket`."""

    def __init__(self, future) -> None:
        self._future = future

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: Optional[float] = None) -> ExecutionResult:
        try:
            return self._future.result(timeout=timeout)
        except (TimeoutError, _FutureTimeoutError):
            # distinct classes on Python 3.10; aliases from 3.11 on
            raise TimeoutError(f"flush did not complete within {timeout}s")
        except Exception as exc:  # normalise backend failures
            raise FlushExecutionError(f"flush failed in worker thread: {exc}") from exc


class ThreadPoolFlushExecutor(_BoundMixin):
    """Overlap cohort flushes on a shared thread pool.

    The pool defaults to one worker per cohort, the natural shard width:
    the scheduler never runs two flushes of one cohort concurrently, so
    extra threads would idle.  NumPy kernels release the GIL inside BLAS,
    which is where the overlap pays off.
    """

    serializes_flushes = False
    remote_execution = False

    def __init__(self, max_workers: Optional[int] = None) -> None:
        super().__init__()
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self._max_workers = max_workers
        self._pool: Optional[_ThreadPool] = None

    def bind(self, classifiers: Mapping[str, EEGClassifier], clock: Clock) -> None:
        self._check_bind(classifiers)
        self._classifiers = dict(classifiers)
        self._clock = clock
        self._pool = _ThreadPool(
            max_workers=self._max_workers or len(classifiers),
            thread_name_prefix="flush-worker",
        )

    def submit_flush(self, cohort: str, prepared: PreparedBatch) -> _FutureTicket:
        classifier = self._classifier_for(cohort)
        assert self._pool is not None

        def run() -> ExecutionResult:
            return execute_windows(
                classifier,
                prepared.windows,
                prepared.chunk_size,
                self._clock,
                worker=threading.current_thread().name,
            )

        return _FutureTicket(self._pool.submit(run))

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._classifiers = None


# ---------------------------------------------------------------------- #
# Process sharding
# ---------------------------------------------------------------------- #
def _shard_worker_main(
    conn, cohort: str, payload: bytes, plan_version: int = 1
) -> None:
    """Entry point of one shard worker: pin a plan replica, serve flushes.

    Runs in a child process.  Reconstructs the cohort's compiled classifier
    from its transport payload once, acknowledges readiness, then answers
    tagged pipe messages until the ``None`` sentinel arrives:

    - ``("flush", windows, chunk_size)`` → ``("ok", probabilities,
      batch_sizes, service_s, worker, specialized, plan_version)`` or
      ``("error", message)``;
    - ``("swap", version, payload)`` → the worker builds the *new* replica
      fully (double-buffered — the old one keeps serving if the build
      fails) and flips to it atomically between flushes, acking
      ``("swapped", version)`` or ``("swap-error", version, message)``;
    - ``("stall", duration_s)`` → sleeps (fault injection for slow-worker
      scenarios), acking ``("stalled", duration_s)``.

    The loop is single-threaded, so a flip between flushes *is* atomic: no
    flush can ever observe a half-updated plan.  Service time is measured
    with the worker's own monotonic clock.
    """
    try:
        from repro.models.compiled import CompiledClassifier

        replica = CompiledClassifier.from_payload(payload)
        # The worker owns this replica outright: let its plan pre-bind
        # zero-allocation arenas for the cohort's dominant flush sizes.
        replica.enable_auto_specialization()
    except Exception as exc:  # noqa: BLE001 — report, do not crash silently
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
        conn.close()
        return
    worker_id = f"shard:{cohort}"
    version = int(plan_version)
    conn.send(("ready", worker_id))
    while True:
        try:
            message = conn.recv()
        except EOFError:  # parent went away
            break
        if message is None:
            break
        tag = message[0]
        if tag == "swap":
            _, new_version, new_payload = message
            try:
                fresh = CompiledClassifier.from_payload(new_payload)
                fresh.enable_auto_specialization()
            except Exception as exc:  # noqa: BLE001 — keep serving the old plan
                conn.send(
                    ("swap-error", new_version, f"{type(exc).__name__}: {exc}")
                )
                continue
            replica = fresh
            version = int(new_version)
            conn.send(("swapped", version))
            continue
        if tag == "stall":
            time.sleep(float(message[1]))
            conn.send(("stalled", float(message[1])))
            continue
        if tag != "flush":
            conn.send(("error", f"unknown message tag {tag!r}"))
            continue
        _, windows, chunk_size = message
        try:
            execution = execute_windows(
                replica, windows, chunk_size, worker=worker_id
            )
            conn.send(
                (
                    "ok",
                    execution.probabilities,
                    execution.batch_sizes,
                    execution.service_s,
                    execution.worker,
                    execution.specialized,
                    version,
                )
            )
        except Exception as exc:  # noqa: BLE001
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
    conn.close()


class _ShardTicket:
    """Pending response from one shard worker's pipe."""

    def __init__(
        self,
        shard: "_Shard",
        timeout_s: Optional[float],
        executor: Optional["ProcessShardExecutor"] = None,
    ) -> None:
        self._shard = shard
        self._timeout_s = timeout_s
        self._executor = executor
        self._execution: Optional[ExecutionResult] = None

    def _died(self, detail: str) -> WorkerDiedError:
        self._shard.busy = False
        if self._executor is not None:
            self._executor._note_worker_death(self._shard)
        return WorkerDiedError(self._shard.cohort, pending=(self,), detail=detail)

    def done(self) -> bool:
        return self._execution is not None or self._shard.conn.poll(0)

    def result(self, timeout: Optional[float] = None) -> ExecutionResult:
        if self._execution is not None:
            return self._execution
        timeout = self._timeout_s if timeout is None else timeout
        while True:
            try:
                answered = self._shard.conn.poll(timeout)
            except (EOFError, BrokenPipeError, OSError):
                raise self._died("pipe closed") from None
            if not answered:
                if not self._shard.process.is_alive():
                    # The worker died mid-flush: the request will never be
                    # answered, so waiting longer only wedges the cohort.
                    raise self._died(
                        f"exitcode {self._shard.process.exitcode}"
                    )
                raise TimeoutError(
                    f"shard worker {self._shard.cohort!r} did not answer within "
                    f"{timeout}s"
                )
            try:
                message = self._shard.conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                raise self._died("pipe closed") from None
            # Control acks (swap/stall issued while this flush was in
            # flight) arrive in pipe order ahead of or behind the flush
            # reply; fold them into parent-side state and keep reading.
            if self._shard.absorb_control(message):
                continue
            break
        self._shard.busy = False
        if message[0] == "error":
            raise FlushExecutionError(
                f"shard worker {self._shard.cohort!r} failed: {message[1]}"
            )
        (
            _,
            probabilities,
            batch_sizes,
            service_s,
            worker,
            specialized,
            plan_version,
        ) = message
        self._execution = ExecutionResult(
            probabilities=probabilities,
            batch_sizes=list(batch_sizes),
            service_s=float(service_s),
            worker=str(worker),
            specialized=bool(specialized),
            plan_version=int(plan_version),
        )
        return self._execution


class _Shard:
    """Parent-side handle on one cohort's worker process."""

    def __init__(self, cohort: str, process, conn, plan_version: int = 1) -> None:
        self.cohort = cohort
        self.process = process
        self.conn = conn
        self.busy = False
        #: Most recent ticket handed out; carried by :class:`WorkerDiedError`
        #: so a caller can recover the in-flight flush it maps to.
        self.ticket: Optional[_ShardTicket] = None
        #: Plan version the worker last acknowledged serving.
        self.plan_version = plan_version
        #: Version of a swap shipped while the worker was busy, until acked.
        self.pending_swap: Optional[int] = None
        #: Most recent worker-side swap failure (the old plan kept serving).
        self.swap_error: Optional[str] = None

    def absorb_control(self, message) -> bool:
        """Fold a control ack into parent state; True if it was one."""
        tag = message[0]
        if tag == "swapped":
            self.plan_version = int(message[1])
            if self.pending_swap == self.plan_version:
                self.pending_swap = None
            return True
        if tag == "swap-error":
            self.swap_error = str(message[2])
            if self.pending_swap == int(message[1]):
                self.pending_swap = None
            return True
        if tag == "stalled":
            return True
        return False


class ProcessShardExecutor(_BoundMixin):
    """One supervised worker process per cohort, each pinning a plan replica.

    Requires every cohort classifier to be transportable: a
    :class:`~repro.models.compiled.CompiledClassifier`, or a neural
    classifier whose ``ensure_compiled()`` yields one with a prepare spec.
    Workers never see the Module tree or autograd — they rebuild the fused
    kernels from the payload and serve those.

    Worker death is a recoverable event: the :class:`ShardSupervisor`
    schedules a respawn from the cohort's cached payload (capped
    exponential backoff + jitter), the executor re-runs the ready handshake
    on the next submit once the backoff elapses, and the in-flight flush is
    carried on the raised :class:`WorkerDiedError` so the scheduler can
    requeue it with a fresh deadline.  Past ``max_restarts`` deaths in the
    sliding window the cohort is quarantined
    (:class:`CohortQuarantinedError`) and the scheduler degrades it to an
    inline serial fallback.

    Parameters
    ----------
    mp_context:
        ``multiprocessing`` start method.  Defaults to ``"spawn"``: slower
        to start but immune to fork-after-threads hazards (the thread
        executor may have run in the same process) and identical across
        platforms.
    request_timeout_s:
        Default timeout a ticket waits for its worker before raising; the
        per-call ``result(timeout=...)`` overrides it.  ``None`` waits
        forever.
    start_timeout_s:
        How long :meth:`bind` (and every respawn) waits for a worker to
        reconstruct its plan and report ready.
    supervisor_config:
        Respawn/quarantine policy; defaults to :class:`SupervisorConfig`.
    """

    serializes_flushes = False
    remote_execution = True

    def __init__(
        self,
        mp_context: str = "spawn",
        request_timeout_s: Optional[float] = 60.0,
        start_timeout_s: float = 120.0,
        supervisor_config: Optional[SupervisorConfig] = None,
    ) -> None:
        super().__init__()
        self._ctx = multiprocessing.get_context(mp_context)
        self.request_timeout_s = request_timeout_s
        self.start_timeout_s = start_timeout_s
        self.supervisor_config = supervisor_config or SupervisorConfig()
        self.supervisor = ShardSupervisor(self.supervisor_config)
        self._shards: Dict[str, _Shard] = {}
        self._payloads: Dict[str, bytes] = {}
        self._versions: Dict[str, int] = {}
        self.closed = False

    @staticmethod
    def _payload_for(cohort: str, classifier: EEGClassifier) -> bytes:
        from repro.models.compiled import CompiledClassifier

        compiled: Optional[CompiledClassifier]
        if isinstance(classifier, CompiledClassifier):
            compiled = classifier
        else:
            ensure = getattr(classifier, "ensure_compiled", None)
            compiled = ensure() if ensure is not None else None
        if compiled is None:
            raise ValueError(
                f"cohort {cohort!r}: process sharding needs a compiled "
                "inference plan (a CompiledClassifier or a neural classifier "
                f"with a compilable network); got {type(classifier).__name__}"
            )
        return compiled.to_payload()

    def bind(self, classifiers: Mapping[str, EEGClassifier], clock: Clock) -> None:
        if self.closed:
            raise ExecutorClosedError(
                "executor was shut down; build a fresh one instead of rebinding"
            )
        self._check_bind(classifiers)
        payloads = {
            cohort: self._payload_for(cohort, classifier)
            for cohort, classifier in classifiers.items()
        }
        self._classifiers = dict(classifiers)
        self._clock = clock  # supervisor timing; worker service uses its own
        self.supervisor = ShardSupervisor(self.supervisor_config, clock)
        self._payloads = payloads
        self._versions = {cohort: 1 for cohort in payloads}
        try:
            for cohort in payloads:
                self._shards[cohort] = self._spawn_process(cohort)
            deadline = time.monotonic() + self.start_timeout_s
            for shard in self._shards.values():
                self._await_ready(shard, deadline)
            for cohort in payloads:
                self.supervisor.watch(cohort)
        except Exception:
            self.shutdown()
            raise

    # ------------------------------------------------------------------ #
    # spawn / respawn machinery
    # ------------------------------------------------------------------ #
    def _spawn_process(self, cohort: str) -> _Shard:
        version = self._versions[cohort]
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, cohort, self._payloads[cohort], version),
            name=f"shard-{cohort}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Shard(cohort, process, parent_conn, plan_version=version)

    def _await_ready(self, shard: _Shard, deadline: float) -> None:
        remaining = max(0.0, deadline - time.monotonic())
        if not shard.conn.poll(remaining):
            raise FlushExecutionError(
                f"shard worker {shard.cohort!r} did not start within "
                f"{self.start_timeout_s}s"
            )
        message = shard.conn.recv()
        if message[0] != "ready":
            raise FlushExecutionError(
                f"shard worker {shard.cohort!r} failed to build its "
                f"plan replica: {message[1]}"
            )

    def _note_worker_death(self, shard: _Shard) -> str:
        """Record one death with the supervisor; returns the new state."""
        shard.busy = False
        return self.supervisor.record_death(shard.cohort)

    def _reap(self, shard: _Shard) -> None:
        """Release a dead shard's process/pipe resources, quietly."""
        try:
            shard.conn.close()
        except OSError:
            pass
        if shard.process.is_alive():
            shard.process.terminate()
        shard.process.join(timeout=5.0)

    def _respawn(self, cohort: str) -> None:
        """Respawn a cohort's worker from its cached payload (handshake too)."""
        old = self._shards.get(cohort)
        if old is not None:
            self._reap(old)
        try:
            shard = self._spawn_process(cohort)
            self._await_ready(shard, time.monotonic() + self.start_timeout_s)
        except FlushExecutionError as exc:
            state = self.supervisor.record_death(cohort)
            if state == WORKER_QUARANTINED:
                raise CohortQuarantinedError(
                    cohort,
                    deaths=self.supervisor.deaths_in_window(cohort),
                    window_s=self.supervisor_config.restart_window_s,
                ) from exc
            raise WorkerDiedError(
                cohort, detail=f"respawn failed: {exc}"
            ) from exc
        self._shards[cohort] = shard
        self.supervisor.record_respawn_success(cohort)

    # ------------------------------------------------------------------ #
    # supervision surface (the scheduler keys healing decisions off this)
    # ------------------------------------------------------------------ #
    def worker_state(self, cohort: str) -> str:
        """Supervisor state of the cohort lane (running/respawning/quarantined)."""
        return self.supervisor.state(cohort)

    def fleet_states(self) -> Dict[str, str]:
        return self.supervisor.states()

    def respawn_due_s(self, cohort: str) -> Optional[float]:
        """When the cohort's pending respawn becomes due (None if not pending)."""
        return self.supervisor.retry_at_s(cohort)

    def restart_count(self, cohort: str) -> int:
        return self.supervisor.restart_count(cohort)

    def plan_version(self, cohort: str) -> int:
        """Latest plan version shipped to (or cached for) the cohort."""
        return self._versions.get(cohort, 0)

    # ------------------------------------------------------------------ #
    # flush path
    # ------------------------------------------------------------------ #
    def submit_flush(self, cohort: str, prepared: PreparedBatch) -> _ShardTicket:
        if self.closed:
            raise ExecutorClosedError(
                f"cannot flush cohort {cohort!r}: executor was shut down"
            )
        self._classifier_for(cohort)  # raises on unknown cohort / unbound
        state = self.supervisor.state(cohort)
        if state == WORKER_QUARANTINED:
            raise CohortQuarantinedError(
                cohort,
                deaths=self.supervisor.deaths_in_window(cohort),
                window_s=self.supervisor_config.restart_window_s,
            )
        if state == WORKER_RESPAWNING:
            retry_at = self.supervisor.retry_at_s(cohort)
            assert retry_at is not None
            if self._clock.now() < retry_at:
                raise WorkerRespawnPending(cohort, retry_at)
            self._respawn(cohort)
        shard = self._shards[cohort]
        if shard.busy:
            raise FlushExecutionError(
                f"shard worker {cohort!r} already has a flush in flight; the "
                "scheduler must not double-flush a cohort"
            )
        if not shard.process.is_alive():
            # Idle death, detected at submit: any ticket the worker never
            # answered rides on the error so the caller can requeue it.
            unanswered = shard.ticket is not None and shard.ticket._execution is None
            self._note_worker_death(shard)
            raise WorkerDiedError(
                cohort,
                pending=(shard.ticket,) if unanswered else (),
                detail=f"exitcode {shard.process.exitcode}",
            )
        try:
            shard.conn.send(("flush", prepared.windows, prepared.chunk_size))
        except (BrokenPipeError, OSError):
            self._note_worker_death(shard)
            raise WorkerDiedError(cohort, detail="pipe closed") from None
        shard.busy = True
        shard.ticket = _ShardTicket(shard, self.request_timeout_s, executor=self)
        return shard.ticket

    # ------------------------------------------------------------------ #
    # plan hot-swap
    # ------------------------------------------------------------------ #
    def swap_plan(self, cohort: str, payload: bytes) -> int:
        """Ship a new plan payload to the cohort's worker; returns its version.

        The worker double-buffers: it builds the new replica completely,
        then flips between flushes, so no flush ever observes a
        half-updated plan — a failed build keeps the old plan serving and
        surfaces as a :class:`FlushExecutionError` (idle worker) or on
        :meth:`last_swap_error` (swap shipped behind an in-flight flush).
        The payload also becomes the respawn image, so a worker that dies
        after the swap comes back on the *new* plan.
        """
        if self.closed:
            raise ExecutorClosedError(
                f"cannot swap cohort {cohort!r}: executor was shut down"
            )
        self._classifier_for(cohort)
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            # A classifier object: lower it to its transport payload here so
            # callers can hand either form to any swap-capable executor.
            payload = self._payload_for(cohort, payload)
        version = self._versions[cohort] + 1
        self._versions[cohort] = version
        self._payloads[cohort] = bytes(payload)
        shard = self._shards.get(cohort)
        if (
            shard is None
            or self.supervisor.state(cohort) != WORKER_RUNNING
            or not shard.process.is_alive()
        ):
            # Lane is down or respawning: the respawn serves the new image.
            return version
        try:
            shard.conn.send(("swap", version, self._payloads[cohort]))
        except (BrokenPipeError, OSError):
            self._note_worker_death(shard)
            return version
        if shard.busy:
            # In-order pipe: the worker answers the in-flight flush on the
            # old plan first, then flips; the ack folds in at harvest.
            shard.pending_swap = version
            return version
        self._await_swap_ack(shard, version)
        return version

    def _await_swap_ack(self, shard: _Shard, version: int) -> None:
        deadline = (
            None
            if self.request_timeout_s is None
            else time.monotonic() + self.request_timeout_s
        )
        while shard.plan_version < version:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            try:
                if not shard.conn.poll(remaining):
                    raise TimeoutError(
                        f"shard worker {shard.cohort!r} did not ack plan "
                        f"swap v{version} within {self.request_timeout_s}s"
                    )
                message = shard.conn.recv()
            except (EOFError, BrokenPipeError, OSError):
                self._note_worker_death(shard)
                raise WorkerDiedError(
                    shard.cohort, detail="pipe closed during plan swap"
                ) from None
            if not shard.absorb_control(message):
                raise FlushExecutionError(
                    f"shard worker {shard.cohort!r} sent unexpected reply "
                    f"{message[0]!r} during plan swap"
                )
            if shard.swap_error is not None and shard.plan_version < version:
                error, shard.swap_error = shard.swap_error, None
                raise FlushExecutionError(
                    f"shard worker {shard.cohort!r} rejected plan swap "
                    f"v{version}: {error} (old plan keeps serving)"
                )

    def acked_plan_version(self, cohort: str) -> int:
        """Plan version the cohort's worker last acknowledged serving."""
        shard = self._shards.get(cohort)
        return shard.plan_version if shard is not None else 0

    def last_swap_error(self, cohort: str) -> Optional[str]:
        """Worker-side failure of a deferred swap, if one has surfaced."""
        shard = self._shards.get(cohort)
        return shard.swap_error if shard is not None else None

    # ------------------------------------------------------------------ #
    # fault injection surface (chaos harness)
    # ------------------------------------------------------------------ #
    def inject_kill(self, cohort: str, phase: str = "idle") -> None:
        """SIGKILL the cohort's worker (``phase`` is advisory for parity
        with the simulated backend — a real kill lands wherever the worker
        happens to be)."""
        shard = self._shards.get(cohort)
        if shard is None or not shard.process.is_alive():
            return
        os.kill(shard.process.pid, signal.SIGKILL)
        shard.process.join(timeout=10.0)

    def inject_pipe_close(self, cohort: str) -> None:
        """Close the parent end of the cohort's pipe (transport loss)."""
        shard = self._shards.get(cohort)
        if shard is None:
            return
        try:
            shard.conn.close()
        except OSError:
            pass

    def inject_stall(self, cohort: str, duration_s: float) -> None:
        """Make the cohort's worker sleep before its next reply."""
        shard = self._shards.get(cohort)
        if shard is None:
            return
        try:
            shard.conn.send(("stall", float(duration_s)))
        except (BrokenPipeError, OSError):
            pass

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        """Stop every worker; idempotent, and terminal for this executor."""
        self.closed = True
        shards, self._shards = self._shards, {}
        for shard in shards.values():
            try:
                shard.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            try:
                shard.conn.close()
            except OSError:
                pass
        for shard in shards.values():
            shard.process.join(timeout=10.0)
            if shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=5.0)
        self._payloads = {}
        self._versions = {}
        self._classifiers = None
