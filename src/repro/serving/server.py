"""The fleet server: N concurrent sessions, one shared classifier.

``FleetServer`` clocks every attached :class:`ServingSession` at the label
rate.  Each fleet tick runs the two-phase protocol: phase one asks every
session for its prepared window (sessions advance their boards in lock-step
simulated time), phase two classifies all prepared windows in one
micro-batched ``predict_proba`` call and routes each probability row back to
the session that produced the window.

Sessions may join and leave between ticks — mid-run churn is the normal
case, not an error — and fleets may mix heterogeneous participant profiles.
When a session stalls (produces no window), the server degrades gracefully:
that tick's batch simply shrinks, the other sessions are served on time, and
the stalled session's backlog is tracked in telemetry until it recovers.

Neural classifiers are served from their compiled inference plan — the
:class:`MicroBatcher` warms it at fleet construction, so every batched
``predict_proba`` on the hot path runs the fused float32 kernels, never the
autograd graph (see :mod:`repro.nn.inference`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import CognitiveArmConfig
from repro.core.realtime import InferenceTick
from repro.models.base import EEGClassifier
from repro.serving.batcher import MicroBatcher
from repro.serving.session import ServingSession, next_session_id
from repro.serving.telemetry import (
    FleetTelemetry,
    FleetTickRecord,
    SessionStats,
    session_stats,
)
from repro.signals.synthetic import ParticipantProfile
from repro.utils.timing import SYSTEM_CLOCK, Clock


@dataclass
class FleetReport:
    """End-of-run summary: fleet aggregates plus per-session roll-ups.

    ``cohorts`` and ``workers`` break the aggregate down by model cohort
    (queue wait vs service time) and execution lane (utilisation); they are
    only populated by flush records that carry those labels — i.e. by the
    asynchronous scheduler — and stay empty for pure lock-step runs.
    """

    ticks: int
    fleet: Dict[str, float]
    sessions: List[SessionStats] = field(default_factory=list)
    cohorts: Dict[str, Dict[str, float]] = field(default_factory=dict)
    workers: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Per-cohort plan-specialisation counters (arena hit rate, held scratch
    #: bytes); keyed ``"default"`` for the single-cohort lock-step server.
    specialization: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def session(self, session_id: str) -> SessionStats:
        for stats in self.sessions:
            if stats.session_id == session_id:
                return stats
        raise KeyError(session_id)


class FleetServer:
    """Schedules N serving sessions against one shared classifier."""

    def __init__(
        self,
        classifier: EEGClassifier,
        config: Optional[CognitiveArmConfig] = None,
        max_batch_size: Optional[int] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.classifier = classifier
        self.config = config or CognitiveArmConfig()
        self.clock = clock or SYSTEM_CLOCK
        self.batcher = MicroBatcher(classifier, max_batch_size, clock=self.clock)
        self.telemetry = FleetTelemetry()
        self._sessions: Dict[str, ServingSession] = {}
        self._departed: List[ServingSession] = []
        self._tick_index = 0

    # ------------------------------------------------------------------ #
    # fleet membership (callable between any two ticks)
    # ------------------------------------------------------------------ #
    @property
    def n_sessions(self) -> int:
        return len(self._sessions)

    @property
    def sessions(self) -> List[ServingSession]:
        return list(self._sessions.values())

    def get_session(self, session_id: str) -> ServingSession:
        return self._sessions[session_id]

    def add_session(
        self,
        session: Optional[ServingSession] = None,
        *,
        session_id: Optional[str] = None,
        profile: Optional[ParticipantProfile] = None,
        **session_kwargs,
    ) -> ServingSession:
        """Attach a session (building one from ``profile`` if not given).

        The session's board is started and warmed up immediately, so it is
        eligible for the very next fleet tick.
        """
        if session is None:
            if session_id is None:
                taken = set(self._sessions)
                taken.update(s.session_id for s in self._departed)
                session_id = next_session_id(taken)
            session = ServingSession(
                session_id,
                profile=profile,
                config=self.config,
                clock=self.clock,
                **session_kwargs,
            )
        if session.session_id in self._sessions:
            raise ValueError(f"session {session.session_id!r} already attached")
        if (
            session.config.n_channels != self.config.n_channels
            or session.config.window_size != self.config.window_size
        ):
            raise ValueError(
                "session window/channel shape does not match the fleet; "
                "windows from all sessions must stack into one batch"
            )
        if (
            session.config.label_rate_hz != self.config.label_rate_hz
            or session.config.sampling_rate_hz != self.config.sampling_rate_hz
        ):
            raise ValueError(
                "session clock does not match the fleet; all boards advance "
                "in lock-step simulated time at the fleet's label rate"
            )
        session.start()
        self._sessions[session.session_id] = session
        return session

    def remove_session(self, session_id: str) -> ServingSession:
        """Detach a session mid-run; its stats remain in the final report."""
        session = self._sessions.pop(session_id)
        session.stop()
        self._departed.append(session)
        return session

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def tick(self) -> Dict[str, InferenceTick]:
        """Run one fleet tick; returns each served session's new tick."""
        sessions = list(self._sessions.values())
        stalled = 0
        for session in sessions:
            window = session.prepare_window()
            if window is None:
                stalled += 1
                continue
            self.batcher.submit(session.session_id, window)
        result = self.batcher.flush()
        per_window = result.per_window_latency_s()
        ticks: Dict[str, InferenceTick] = {}
        for session_id, probabilities in result.results.items():
            ticks[session_id] = self._sessions[session_id].apply_result(
                probabilities, per_window
            )
        self.telemetry.record(
            FleetTickRecord(
                tick_index=self._tick_index,
                n_sessions=len(sessions),
                batch_size=len(result),
                stalled_sessions=stalled,
                batch_latency_s=result.latency_s,
                backlog_depth=sum(s.backlog_depth for s in sessions),
                specialized=result.specialized,
            )
        )
        self._tick_index += 1
        return ticks

    def run(self, duration_s: float) -> FleetReport:
        """Serve the whole fleet for ``duration_s`` of simulated time."""
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        n_ticks = int(round(duration_s * self.config.label_rate_hz))
        for _ in range(n_ticks):
            self.tick()
        return self.report()

    def shutdown(self) -> None:
        """Stop every attached session's board stream."""
        for session_id in list(self._sessions):
            self.remove_session(session_id)

    def report(self) -> FleetReport:
        """Current fleet summary, covering attached and departed sessions."""
        everyone = list(self._sessions.values()) + self._departed
        stats = self.batcher.specialization_stats()
        return FleetReport(
            ticks=self._tick_index,
            fleet=self.telemetry.summary(),
            sessions=session_stats(everyone),
            cohorts=self.telemetry.cohort_breakdown(),
            workers=self.telemetry.worker_breakdown(),
            specialization={} if stats is None else {"default": stats},
        )
