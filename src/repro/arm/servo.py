"""Servo motor model and calibration (paper §IV-A6).

The prototype uses five hobby servos (one per finger group plus elbow and
wrist rotation) calibrated with a CCPM 3-channel servo tester.  The model
captures what matters to the control loop: commanded angle vs. actual angle
with a finite slew rate, pulse-width-to-angle mapping, and per-servo
calibration offsets/scales discovered by the calibration routine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np


@dataclass
class ServoSpec:
    """Static characteristics of one servo."""

    name: str
    min_angle_deg: float = 0.0
    max_angle_deg: float = 180.0
    #: Maximum rotation speed, degrees per second (typical hobby servo ~400).
    slew_rate_dps: float = 400.0
    min_pulse_us: float = 1000.0
    max_pulse_us: float = 2000.0

    def __post_init__(self) -> None:
        if self.max_angle_deg <= self.min_angle_deg:
            raise ValueError("max_angle_deg must exceed min_angle_deg")
        if self.slew_rate_dps <= 0:
            raise ValueError("slew_rate_dps must be positive")
        if self.max_pulse_us <= self.min_pulse_us:
            raise ValueError("max_pulse_us must exceed min_pulse_us")


@dataclass
class ServoCalibration:
    """Per-servo correction: actual = scale * commanded + offset."""

    offset_deg: float = 0.0
    scale: float = 1.0

    def apply(self, angle_deg: float) -> float:
        return self.scale * angle_deg + self.offset_deg

    def invert(self, desired_deg: float) -> float:
        """Commanded angle that produces ``desired_deg`` after the distortion."""
        if self.scale == 0:
            raise ValueError("Calibration scale must be non-zero")
        return (desired_deg - self.offset_deg) / self.scale


class ServoMotor:
    """A slew-rate-limited servo with optional mechanical distortion.

    ``distortion`` models an uncalibrated linkage (e.g. horn misalignment):
    the physical angle is ``distortion.apply(commanded)``.  The calibration
    routine estimates the inverse mapping so the controller can command true
    angles.
    """

    def __init__(
        self,
        spec: ServoSpec,
        distortion: Optional[ServoCalibration] = None,
        initial_angle_deg: Optional[float] = None,
    ) -> None:
        self.spec = spec
        self.distortion = distortion or ServoCalibration()
        mid = 0.5 * (spec.min_angle_deg + spec.max_angle_deg)
        self._target_deg = float(initial_angle_deg if initial_angle_deg is not None else mid)
        self._angle_deg = self._target_deg
        self.calibration = ServoCalibration()

    # ------------------------------------------------------------------ #
    @property
    def angle_deg(self) -> float:
        """Current physical angle (after distortion)."""
        return self.distortion.apply(self._angle_deg)

    @property
    def commanded_angle_deg(self) -> float:
        return self._target_deg

    def command(self, angle_deg: float) -> float:
        """Set a new target angle (clamped to the servo's range)."""
        clamped = float(np.clip(angle_deg, self.spec.min_angle_deg, self.spec.max_angle_deg))
        self._target_deg = clamped
        return clamped

    def command_pulse(self, pulse_us: float) -> float:
        """Command via PWM pulse width, as the Arduino firmware would."""
        spec = self.spec
        fraction = (pulse_us - spec.min_pulse_us) / (spec.max_pulse_us - spec.min_pulse_us)
        fraction = float(np.clip(fraction, 0.0, 1.0))
        angle = spec.min_angle_deg + fraction * (spec.max_angle_deg - spec.min_angle_deg)
        return self.command(angle)

    def step(self, dt_s: float) -> float:
        """Advance the servo towards its target; returns the new raw angle."""
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        max_step = self.spec.slew_rate_dps * dt_s
        error = self._target_deg - self._angle_deg
        self._angle_deg += float(np.clip(error, -max_step, max_step))
        return self._angle_deg

    def settle(self, timeout_s: float = 2.0, dt_s: float = 0.01) -> float:
        """Step until the servo reaches its target (or the timeout expires)."""
        elapsed = 0.0
        while abs(self._target_deg - self._angle_deg) > 1e-6 and elapsed < timeout_s:
            self.step(dt_s)
            elapsed += dt_s
        return self.angle_deg

    # ------------------------------------------------------------------ #
    def calibrate(self, probe_angles: Tuple[float, ...] = (30.0, 90.0, 150.0)) -> ServoCalibration:
        """Estimate the inverse of the mechanical distortion (CCPM-tester style).

        Commands a few probe angles, lets the servo settle, measures the
        physical angle and fits a linear correction by least squares.  The
        resulting calibration is stored on the servo and used by
        :meth:`command_calibrated`.
        """
        commanded = []
        measured = []
        for angle in probe_angles:
            self.command(angle)
            self.settle()
            commanded.append(self.commanded_angle_deg)
            measured.append(self.angle_deg)
        commanded_arr = np.array(commanded)
        measured_arr = np.array(measured)
        design = np.vstack([measured_arr, np.ones_like(measured_arr)]).T
        scale, offset = np.linalg.lstsq(design, commanded_arr, rcond=None)[0]
        self.calibration = ServoCalibration(offset_deg=float(offset), scale=float(scale))
        return self.calibration

    def command_calibrated(self, desired_deg: float) -> float:
        """Command a *physical* angle using the stored calibration."""
        return self.command(self.calibration.apply(desired_deg))
