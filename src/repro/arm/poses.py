"""Pose and task library (paper Fig. 6 and abstract: handshake, cup picking).

A :class:`Pose` is a named joint configuration; a :class:`TaskScript` is an
ordered sequence of poses with dwell times that together perform an everyday
task.  The real-time examples replay these scripts through the controller to
demonstrate multiplexed, variable movement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.arm.kinematics import JointState


@dataclass(frozen=True)
class Pose:
    """A named joint-space configuration of the arm."""

    name: str
    state: JointState

    def blend(self, other: "Pose", fraction: float) -> JointState:
        """Linear interpolation between two poses (0 = self, 1 = other)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        a, b = self.state, other.state
        return JointState(
            elbow_deg=a.elbow_deg + fraction * (b.elbow_deg - a.elbow_deg),
            wrist_rotation_deg=a.wrist_rotation_deg
            + fraction * (b.wrist_rotation_deg - a.wrist_rotation_deg),
            grip_percent=a.grip_percent + fraction * (b.grip_percent - a.grip_percent),
        )


#: Canonical poses used by the demonstration tasks.
POSE_LIBRARY: Dict[str, Pose] = {
    "rest": Pose("rest", JointState(elbow_deg=20.0, wrist_rotation_deg=0.0, grip_percent=0.0)),
    "raised": Pose("raised", JointState(elbow_deg=110.0, wrist_rotation_deg=0.0, grip_percent=0.0)),
    "open_hand": Pose("open_hand", JointState(elbow_deg=90.0, wrist_rotation_deg=0.0, grip_percent=0.0)),
    "closed_grip": Pose("closed_grip", JointState(elbow_deg=90.0, wrist_rotation_deg=0.0, grip_percent=85.0)),
    "handshake_ready": Pose(
        "handshake_ready", JointState(elbow_deg=95.0, wrist_rotation_deg=-20.0, grip_percent=15.0)
    ),
    "handshake_grip": Pose(
        "handshake_grip", JointState(elbow_deg=95.0, wrist_rotation_deg=-20.0, grip_percent=55.0)
    ),
    "cup_approach": Pose(
        "cup_approach", JointState(elbow_deg=70.0, wrist_rotation_deg=0.0, grip_percent=10.0)
    ),
    "cup_grip": Pose("cup_grip", JointState(elbow_deg=70.0, wrist_rotation_deg=0.0, grip_percent=70.0)),
    "cup_lift": Pose("cup_lift", JointState(elbow_deg=110.0, wrist_rotation_deg=0.0, grip_percent=70.0)),
    "catch_ready": Pose(
        "catch_ready", JointState(elbow_deg=100.0, wrist_rotation_deg=30.0, grip_percent=5.0)
    ),
    "catch_close": Pose(
        "catch_close", JointState(elbow_deg=100.0, wrist_rotation_deg=30.0, grip_percent=90.0)
    ),
}


@dataclass
class TaskScript:
    """An everyday task as a sequence of (pose, dwell seconds) steps."""

    name: str
    steps: Tuple[Tuple[Pose, float], ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("A task script needs at least one step")
        if any(dwell <= 0 for _, dwell in self.steps):
            raise ValueError("Dwell times must be positive")

    @property
    def duration_s(self) -> float:
        return sum(dwell for _, dwell in self.steps)

    def pose_at(self, time_s: float) -> JointState:
        """Joint state at ``time_s``, blending linearly between steps."""
        if time_s <= 0:
            return self.steps[0][0].state
        elapsed = 0.0
        for index, (pose, dwell) in enumerate(self.steps):
            if time_s <= elapsed + dwell:
                if index + 1 < len(self.steps):
                    next_pose = self.steps[index + 1][0]
                else:
                    next_pose = pose
                fraction = (time_s - elapsed) / dwell
                return pose.blend(next_pose, min(1.0, fraction))
            elapsed += dwell
        return self.steps[-1][0].state


def task_library() -> Dict[str, TaskScript]:
    """The everyday tasks demonstrated by the paper."""
    poses = POSE_LIBRARY
    return {
        "handshake": TaskScript(
            "handshake",
            (
                (poses["rest"], 1.0),
                (poses["handshake_ready"], 1.5),
                (poses["handshake_grip"], 2.0),
                (poses["handshake_ready"], 1.0),
                (poses["rest"], 1.0),
            ),
        ),
        "cup_picking": TaskScript(
            "cup_picking",
            (
                (poses["rest"], 1.0),
                (poses["cup_approach"], 1.5),
                (poses["cup_grip"], 1.5),
                (poses["cup_lift"], 2.0),
                (poses["cup_grip"], 1.5),
                (poses["rest"], 1.0),
            ),
        ),
        "ball_catch": TaskScript(
            "ball_catch",
            (
                (poses["rest"], 0.5),
                (poses["catch_ready"], 1.0),
                (poses["catch_close"], 0.5),
                (poses["rest"], 1.0),
            ),
        ),
    }
