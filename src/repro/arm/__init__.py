"""Prosthetic-arm substrate: servos, serial protocol, kinematics and control.

Stands in for the paper's in-house 3-D-printed arm (3 DoF, five servos driven
by an Arduino over a serial link from the Jetson).  The simulation covers the
pieces the control loop exercises: slew-rate-limited servo dynamics, CCPM-style
calibration, serial command framing, forward kinematics of the 3-DoF linkage,
a pose/task library (grip, handshake, cup-pick) and the controller that maps
EEG action labels plus the active voice mode onto joint commands.
"""

from repro.arm.servo import ServoCalibration, ServoMotor, ServoSpec
from repro.arm.arduino import ArduinoLink, ServoCommand, decode_frame, encode_frame
from repro.arm.kinematics import ArmGeometry, ArmKinematics, JointLimits, JointState
from repro.arm.poses import POSE_LIBRARY, Pose, TaskScript, task_library
from repro.arm.controller import ActionMapping, ArmController, ProstheticArm

__all__ = [
    "ServoCalibration",
    "ServoMotor",
    "ServoSpec",
    "ArduinoLink",
    "ServoCommand",
    "encode_frame",
    "decode_frame",
    "ArmGeometry",
    "ArmKinematics",
    "JointLimits",
    "JointState",
    "POSE_LIBRARY",
    "Pose",
    "TaskScript",
    "task_library",
    "ActionMapping",
    "ArmController",
    "ProstheticArm",
]
