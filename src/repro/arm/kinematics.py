"""3-DoF arm kinematics (paper §IV-A).

The prototype arm has three degrees of freedom: elbow flexion/extension,
wrist/forearm rotation and finger grip.  The kinematic model here computes
the wrist and fingertip positions of the planar-elbow + rotating-forearm
linkage, which the examples and tests use to check that EEG-commanded motions
move the end effector in the intended direction and stay inside joint limits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np


@dataclass
class JointLimits:
    """Allowed range of one joint in degrees."""

    min_deg: float
    max_deg: float

    def __post_init__(self) -> None:
        if self.max_deg <= self.min_deg:
            raise ValueError("max_deg must exceed min_deg")

    def clamp(self, value_deg: float) -> float:
        return float(np.clip(value_deg, self.min_deg, self.max_deg))

    def contains(self, value_deg: float) -> bool:
        return self.min_deg <= value_deg <= self.max_deg

    def normalised(self, value_deg: float) -> float:
        """Map the joint range onto [0, 1]."""
        return (self.clamp(value_deg) - self.min_deg) / (self.max_deg - self.min_deg)


@dataclass
class ArmGeometry:
    """Link lengths of the prosthetic arm in centimetres."""

    upper_arm_cm: float = 28.0
    forearm_cm: float = 26.0
    hand_cm: float = 18.0

    def __post_init__(self) -> None:
        if min(self.upper_arm_cm, self.forearm_cm, self.hand_cm) <= 0:
            raise ValueError("Link lengths must be positive")


@dataclass
class JointState:
    """The arm's three controlled joints plus the grip aperture."""

    elbow_deg: float = 90.0
    wrist_rotation_deg: float = 0.0
    #: 0 = fully open hand, 100 = fully closed grip.
    grip_percent: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "elbow_deg": self.elbow_deg,
            "wrist_rotation_deg": self.wrist_rotation_deg,
            "grip_percent": self.grip_percent,
        }


#: Default joint limits of the printed arm.
DEFAULT_LIMITS: Dict[str, JointLimits] = {
    "elbow_deg": JointLimits(10.0, 160.0),
    "wrist_rotation_deg": JointLimits(-90.0, 90.0),
    "grip_percent": JointLimits(0.0, 100.0),
}


class ArmKinematics:
    """Forward kinematics and joint-limit handling of the 3-DoF arm."""

    def __init__(
        self,
        geometry: ArmGeometry = None,
        limits: Dict[str, JointLimits] = None,
    ) -> None:
        self.geometry = geometry or ArmGeometry()
        self.limits = dict(DEFAULT_LIMITS if limits is None else limits)
        missing = {"elbow_deg", "wrist_rotation_deg", "grip_percent"} - set(self.limits)
        if missing:
            raise ValueError(f"Joint limits missing for: {sorted(missing)}")

    def clamp(self, state: JointState) -> JointState:
        """Clamp every joint of a state into its limits."""
        return JointState(
            elbow_deg=self.limits["elbow_deg"].clamp(state.elbow_deg),
            wrist_rotation_deg=self.limits["wrist_rotation_deg"].clamp(state.wrist_rotation_deg),
            grip_percent=self.limits["grip_percent"].clamp(state.grip_percent),
        )

    def within_limits(self, state: JointState) -> bool:
        return (
            self.limits["elbow_deg"].contains(state.elbow_deg)
            and self.limits["wrist_rotation_deg"].contains(state.wrist_rotation_deg)
            and self.limits["grip_percent"].contains(state.grip_percent)
        )

    def wrist_position_cm(self, state: JointState) -> Tuple[float, float, float]:
        """Wrist position with the shoulder at the origin.

        The upper arm hangs along -z; elbow flexion rotates the forearm in
        the x-z (sagittal) plane: 0 deg = fully extended (straight down),
        90 deg = forearm horizontal, pointing forward (+x).
        """
        geom = self.geometry
        elbow = math.radians(state.elbow_deg)
        elbow_point = np.array([0.0, 0.0, -geom.upper_arm_cm])
        forearm_direction = np.array([math.sin(elbow), 0.0, -math.cos(elbow)])
        wrist = elbow_point + geom.forearm_cm * forearm_direction
        return float(wrist[0]), float(wrist[1]), float(wrist[2])

    def fingertip_position_cm(self, state: JointState) -> Tuple[float, float, float]:
        """Fingertip position; wrist rotation swings the hand out of the sagittal plane.

        The grip closes the hand, shortening its effective reach by up to 40 %.
        """
        geom = self.geometry
        wrist = np.array(self.wrist_position_cm(state))
        elbow = math.radians(state.elbow_deg)
        rotation = math.radians(state.wrist_rotation_deg)
        forearm_direction = np.array([math.sin(elbow), 0.0, -math.cos(elbow)])
        # Hand direction: start along the forearm, rotate about the forearm
        # axis so that wrist rotation moves the fingertip laterally (y).
        lateral = np.array([0.0, 1.0, 0.0])
        hand_direction = (
            math.cos(rotation) * forearm_direction + math.sin(rotation) * lateral
        )
        grip_factor = 1.0 - 0.4 * (state.grip_percent / 100.0)
        fingertip = wrist + geom.hand_cm * grip_factor * hand_direction
        return float(fingertip[0]), float(fingertip[1]), float(fingertip[2])

    def reach_cm(self, state: JointState) -> float:
        """Distance from shoulder to fingertip."""
        return float(np.linalg.norm(self.fingertip_position_cm(state)))

    def max_reach_cm(self) -> float:
        geom = self.geometry
        return geom.upper_arm_cm + geom.forearm_cm + geom.hand_cm

    def servo_targets(self, state: JointState) -> Dict[str, float]:
        """Map a joint state onto the five physical servo angles (0-180 deg).

        Three finger servos share the grip command (the printed hand gangs
        them mechanically), one servo drives the elbow and one the wrist.
        """
        clamped = self.clamp(state)
        elbow_angle = 180.0 * self.limits["elbow_deg"].normalised(clamped.elbow_deg)
        wrist_angle = 180.0 * self.limits["wrist_rotation_deg"].normalised(
            clamped.wrist_rotation_deg
        )
        grip_angle = 180.0 * self.limits["grip_percent"].normalised(clamped.grip_percent)
        return {
            "elbow": elbow_angle,
            "wrist": wrist_angle,
            "finger_thumb": grip_angle,
            "finger_index": grip_angle,
            "finger_rest": grip_angle,
        }
