"""Arm controller: EEG action labels + voice mode -> joint motion.

Implements the multiplexed control scheme of Fig. 6: the three EEG classes
(*left*, *right*, *idle*) produce a variable amount of change in whichever
degree of freedom the active voice mode selects —

=============  ======================  ======================
voice mode      "right" action          "left" action
=============  ======================  ======================
``arm``         raise hand (elbow up)   lower hand (elbow down)
``elbow``       rotate clockwise        rotate anti-clockwise
``fingers``     close fingers           open fingers
=============  ======================  ======================

*idle* leaves the arm where it is.  The controller converts the resulting
joint state into per-servo commands, ships them over the (simulated) Arduino
serial link and steps the servo dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arm.arduino import ArduinoLink, ServoCommand
from repro.arm.kinematics import ArmKinematics, JointState
from repro.arm.servo import ServoMotor, ServoSpec
from repro.asr.commands import CONTROL_MODES, MODE_ARM, MODE_ELBOW, MODE_FINGERS
from repro.signals.synthetic import ACTION_IDLE, ACTION_LEFT, ACTION_RIGHT

#: Fixed servo channel assignment used by the firmware.
SERVO_CHANNELS: Dict[str, int] = {
    "elbow": 0,
    "wrist": 1,
    "finger_thumb": 2,
    "finger_index": 3,
    "finger_rest": 4,
}


@dataclass
class ActionMapping:
    """Per-action increments applied to the active degree of freedom."""

    elbow_step_deg: float = 8.0
    wrist_step_deg: float = 10.0
    grip_step_percent: float = 12.0

    def __post_init__(self) -> None:
        if min(self.elbow_step_deg, self.wrist_step_deg, self.grip_step_percent) <= 0:
            raise ValueError("Step sizes must be positive")


def build_default_servos(seed: int = 0) -> Dict[int, ServoMotor]:
    """The five servos of the printed arm, keyed by serial channel."""
    rng = np.random.default_rng(seed)
    servos: Dict[int, ServoMotor] = {}
    for name, channel in SERVO_CHANNELS.items():
        spec = ServoSpec(name=name, slew_rate_dps=float(rng.uniform(300, 500)))
        servos[channel] = ServoMotor(spec)
    return servos


class ProstheticArm:
    """The physical arm: servos, serial link and kinematic model."""

    def __init__(
        self,
        link: Optional[ArduinoLink] = None,
        kinematics: Optional[ArmKinematics] = None,
        seed: int = 0,
    ) -> None:
        self.kinematics = kinematics or ArmKinematics()
        self.link = link or ArduinoLink(build_default_servos(seed))
        self.joint_state = JointState()
        self._trajectory: List[JointState] = [self.joint_state]

    def move_to(self, state: JointState, settle_s: float = 0.2, dt_s: float = 0.02) -> float:
        """Command a joint state; returns the serial + settling latency in seconds."""
        clamped = self.kinematics.clamp(state)
        targets = self.kinematics.servo_targets(clamped)
        commands = [
            ServoCommand(channel=SERVO_CHANNELS[name], angle_deg=angle)
            for name, angle in targets.items()
        ]
        latency = self.link.send(commands)
        steps = max(1, int(round(settle_s / dt_s)))
        for _ in range(steps):
            self.link.step(dt_s)
        self.joint_state = clamped
        self._trajectory.append(clamped)
        return latency + settle_s

    @property
    def trajectory(self) -> List[JointState]:
        return list(self._trajectory)

    def fingertip_position_cm(self) -> Tuple[float, float, float]:
        return self.kinematics.fingertip_position_cm(self.joint_state)


class ArmController:
    """Maps (EEG action, active mode) onto incremental arm motion."""

    def __init__(
        self,
        arm: Optional[ProstheticArm] = None,
        mapping: Optional[ActionMapping] = None,
        initial_mode: str = MODE_ARM,
    ) -> None:
        self.arm = arm or ProstheticArm()
        self.mapping = mapping or ActionMapping()
        if initial_mode not in CONTROL_MODES:
            raise ValueError(f"Unknown control mode {initial_mode!r}")
        self.mode = initial_mode
        self.action_log: List[Tuple[str, str]] = []

    def set_mode(self, mode: str) -> None:
        """Switch the active degree-of-freedom group (voice command)."""
        if mode not in CONTROL_MODES:
            raise ValueError(f"Unknown control mode {mode!r}")
        self.mode = mode

    def apply_action(self, action: str, confidence: float = 1.0) -> JointState:
        """Apply one EEG action label; returns the new joint state.

        ``confidence`` scales the increment (the paper's "variable amount of
        change in the position of the arm"), so low-confidence predictions
        nudge the arm less than confident ones.
        """
        if action not in (ACTION_LEFT, ACTION_RIGHT, ACTION_IDLE):
            raise ValueError(f"Unknown action {action!r}")
        if not 0.0 <= confidence <= 1.0:
            raise ValueError("confidence must be in [0, 1]")
        self.action_log.append((self.mode, action))
        state = self.arm.joint_state
        if action == ACTION_IDLE or confidence == 0.0:
            return state
        direction = 1.0 if action == ACTION_RIGHT else -1.0
        scale = direction * confidence
        new_state = JointState(
            elbow_deg=state.elbow_deg,
            wrist_rotation_deg=state.wrist_rotation_deg,
            grip_percent=state.grip_percent,
        )
        if self.mode == MODE_ARM:
            new_state.elbow_deg += scale * self.mapping.elbow_step_deg
        elif self.mode == MODE_ELBOW:
            new_state.wrist_rotation_deg += scale * self.mapping.wrist_step_deg
        elif self.mode == MODE_FINGERS:
            new_state.grip_percent += scale * self.mapping.grip_step_percent
        self.arm.move_to(new_state)
        return self.arm.joint_state

    def joint_state(self) -> JointState:
        return self.arm.joint_state
