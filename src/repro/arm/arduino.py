"""Serial protocol between the edge device and the Arduino (paper §IV-A7).

The Jetson sends servo set-points to an Arduino microcontroller over a serial
link; the Arduino translates them into PWM pulses.  The protocol modelled
here is a small framed binary format with a checksum — enough structure to
test framing, corruption detection and round-trip latency of the motor-control
path without the physical UART.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arm.servo import ServoMotor

#: Frame start byte.
FRAME_HEADER = 0xAA


class ProtocolError(ValueError):
    """Raised on malformed or corrupted serial frames."""


@dataclass(frozen=True)
class ServoCommand:
    """A set-point for one servo channel."""

    channel: int
    angle_deg: float

    def __post_init__(self) -> None:
        if not 0 <= self.channel <= 15:
            raise ValueError("channel must be in [0, 15]")
        if not 0.0 <= self.angle_deg <= 180.0:
            raise ValueError("angle_deg must be in [0, 180]")


def encode_frame(commands: Sequence[ServoCommand]) -> bytes:
    """Encode servo commands into one serial frame.

    Layout: ``[header, count, (channel, angle_hi, angle_lo) * count, checksum]``
    where the angle is transmitted in centidegrees and the checksum is the
    low byte of the sum of all preceding bytes.
    """
    if not commands:
        raise ProtocolError("A frame must contain at least one command")
    if len(commands) > 255:
        raise ProtocolError("Too many commands for one frame")
    payload = bytearray([FRAME_HEADER, len(commands)])
    for command in commands:
        centideg = int(round(command.angle_deg * 100))
        payload.append(command.channel)
        payload.append((centideg >> 8) & 0xFF)
        payload.append(centideg & 0xFF)
    payload.append(sum(payload) & 0xFF)
    return bytes(payload)


def decode_frame(frame: bytes) -> List[ServoCommand]:
    """Decode and validate one serial frame."""
    if len(frame) < 6:
        raise ProtocolError("Frame too short")
    if frame[0] != FRAME_HEADER:
        raise ProtocolError("Bad frame header")
    count = frame[1]
    expected_length = 2 + 3 * count + 1
    if len(frame) != expected_length:
        raise ProtocolError("Frame length does not match command count")
    if sum(frame[:-1]) & 0xFF != frame[-1]:
        raise ProtocolError("Checksum mismatch")
    commands = []
    for i in range(count):
        offset = 2 + 3 * i
        channel = frame[offset]
        centideg = (frame[offset + 1] << 8) | frame[offset + 2]
        commands.append(ServoCommand(channel=channel, angle_deg=centideg / 100.0))
    return commands


class ArduinoLink:
    """A simulated serial link plus the Arduino-side servo driver.

    ``send`` encodes and 'transmits' commands (with optional byte corruption
    to exercise the checksum), the virtual Arduino decodes them and applies
    the set-points to its attached servos.
    """

    def __init__(
        self,
        servos: Dict[int, ServoMotor],
        baud_rate: int = 115200,
        corruption_probability: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not servos:
            raise ValueError("ArduinoLink requires at least one attached servo")
        if baud_rate <= 0:
            raise ValueError("baud_rate must be positive")
        if not 0.0 <= corruption_probability <= 1.0:
            raise ValueError("corruption_probability must be in [0, 1]")
        self.servos = dict(servos)
        self.baud_rate = baud_rate
        self.corruption_probability = corruption_probability
        self._rng = np.random.default_rng(seed)
        self.frames_sent = 0
        self.frames_rejected = 0
        self.bytes_sent = 0

    def transmission_time_s(self, frame: bytes) -> float:
        """Serial transmission time: 10 bits per byte at the configured baud rate."""
        return len(frame) * 10.0 / self.baud_rate

    def send(self, commands: Sequence[ServoCommand]) -> float:
        """Encode, transmit and apply commands; returns the link latency in seconds.

        Corrupted frames are detected by the checksum and dropped (the
        Arduino keeps its previous set-points), mirroring how the firmware
        ignores malformed packets.
        """
        frame = bytearray(encode_frame(commands))
        self.frames_sent += 1
        self.bytes_sent += len(frame)
        latency = self.transmission_time_s(bytes(frame))
        if self.corruption_probability and self._rng.random() < self.corruption_probability:
            index = int(self._rng.integers(0, len(frame)))
            frame[index] ^= 0xFF
        try:
            decoded = decode_frame(bytes(frame))
        except ProtocolError:
            self.frames_rejected += 1
            return latency
        for command in decoded:
            servo = self.servos.get(command.channel)
            if servo is not None:
                servo.command(command.angle_deg)
        return latency

    def step(self, dt_s: float) -> Dict[int, float]:
        """Advance all attached servos and return their physical angles."""
        return {channel: servo.step(dt_s) for channel, servo in self.servos.items()}

    @property
    def rejection_rate(self) -> float:
        if self.frames_sent == 0:
            return 0.0
        return self.frames_rejected / self.frames_sent
