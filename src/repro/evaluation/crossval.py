"""Leave-one-subject-out cross-validation runner (paper §III-D1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dataset.splits import leave_one_subject_out
from repro.dataset.windows import WindowDataset
from repro.evaluation.metrics import confidence_interval, confusion_matrix, mean_and_std
from repro.models.base import EEGClassifier

#: A zero-argument factory producing a fresh, untrained classifier per fold.
ClassifierFactory = Callable[[], EEGClassifier]


@dataclass
class FoldResult:
    """Outcome of one LOSO fold."""

    test_participant: str
    test_accuracy: float
    validation_accuracy: float
    confusion: np.ndarray
    parameters: int


@dataclass
class CrossValidationReport:
    """Aggregated LOSO results for one model family/configuration."""

    model_name: str
    folds: List[FoldResult] = field(default_factory=list)

    @property
    def per_subject_accuracies(self) -> List[float]:
        return [fold.test_accuracy for fold in self.folds]

    @property
    def mean_accuracy(self) -> float:
        return mean_and_std(self.per_subject_accuracies)[0]

    @property
    def std_accuracy(self) -> float:
        return mean_and_std(self.per_subject_accuracies)[1]

    def confidence_interval(self, confidence: float = 0.91) -> Tuple[float, float]:
        return confidence_interval(self.per_subject_accuracies, confidence)

    def total_confusion(self) -> np.ndarray:
        if not self.folds:
            return np.zeros((0, 0), dtype=int)
        return np.sum([fold.confusion for fold in self.folds], axis=0)


def run_loso_evaluation(
    factory: ClassifierFactory,
    dataset: WindowDataset,
    model_name: str = "model",
    validation_fraction: float = 0.2,
    max_folds: Optional[int] = None,
    seed: int = 0,
) -> CrossValidationReport:
    """Train and test a fresh classifier on every leave-one-subject-out fold.

    ``max_folds`` limits the number of folds evaluated (useful for the
    reduced-scale benchmarks); the full evaluation uses every participant.
    """
    report = CrossValidationReport(model_name=model_name)
    for index, fold in enumerate(leave_one_subject_out(dataset, validation_fraction, seed)):
        if max_folds is not None and index >= max_folds:
            break
        classifier = factory()
        history = classifier.fit(fold.train, fold.validation)
        predictions = classifier.predict(fold.test.windows)
        test_accuracy = float(np.mean(predictions == fold.test.labels)) if len(fold.test) else 0.0
        confusion = confusion_matrix(predictions, fold.test.labels, fold.test.n_classes)
        report.folds.append(
            FoldResult(
                test_participant=fold.test_participant,
                test_accuracy=test_accuracy,
                validation_accuracy=history.best_val_accuracy,
                confusion=confusion,
                parameters=classifier.parameter_count(),
            )
        )
    return report
