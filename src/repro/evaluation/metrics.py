"""Classification metrics and the statistical analyses of §V-A.

The paper reports mean accuracy and standard deviation across test subjects,
paired t-tests between model families, 91 % confidence intervals on test
accuracy, and a variance-reduction analysis showing that the ensemble is more
robust to user-specific noise than its members.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np
from scipy import stats


def accuracy_score(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of predictions equal to the targets."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.shape != targets.shape:
        raise ValueError("predictions and targets must have the same shape")
    if predictions.size == 0:
        return 0.0
    return float(np.mean(predictions == targets))


def confusion_matrix(
    predictions: np.ndarray, targets: np.ndarray, n_classes: int
) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = count of true class i predicted as j."""
    predictions = np.asarray(predictions, dtype=int)
    targets = np.asarray(targets, dtype=int)
    if predictions.shape != targets.shape:
        raise ValueError("predictions and targets must have the same shape")
    if n_classes < 1:
        raise ValueError("n_classes must be positive")
    matrix = np.zeros((n_classes, n_classes), dtype=int)
    for true, predicted in zip(targets, predictions):
        if not (0 <= true < n_classes and 0 <= predicted < n_classes):
            raise ValueError("class index out of range")
        matrix[true, predicted] += 1
    return matrix


def per_class_accuracy(
    predictions: np.ndarray, targets: np.ndarray, n_classes: int
) -> np.ndarray:
    """Recall of each class (diagonal of the row-normalised confusion matrix)."""
    matrix = confusion_matrix(predictions, targets, n_classes).astype(float)
    totals = matrix.sum(axis=1)
    accuracies = np.zeros(n_classes)
    nonzero = totals > 0
    accuracies[nonzero] = np.diag(matrix)[nonzero] / totals[nonzero]
    return accuracies


def mean_and_std(values: Sequence[float]) -> Tuple[float, float]:
    """Mean and (sample) standard deviation of per-subject accuracies."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 0.0, 0.0
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return float(arr.mean()), std


def confidence_interval(
    values: Sequence[float], confidence: float = 0.91
) -> Tuple[float, float]:
    """Student-t confidence interval for the mean of per-subject accuracies.

    The paper reports 91 % confidence intervals; that is the default here.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("Cannot compute a confidence interval of no values")
    mean = float(arr.mean())
    if arr.size == 1:
        return mean, mean
    sem = float(arr.std(ddof=1) / np.sqrt(arr.size))
    t_value = float(stats.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1))
    return mean - t_value * sem, mean + t_value * sem


def paired_t_test(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Paired t-test between two models' per-subject accuracies.

    Returns ``(t_statistic, p_value)``.
    """
    a_arr = np.asarray(list(a), dtype=float)
    b_arr = np.asarray(list(b), dtype=float)
    if a_arr.shape != b_arr.shape or a_arr.size < 2:
        raise ValueError("paired_t_test requires two equal-length sequences (n >= 2)")
    if np.allclose(a_arr - b_arr, (a_arr - b_arr)[0]):
        # Degenerate case: constant difference; t-test is undefined for zero
        # variance, so report an exact tie or an infinite statistic.
        diff = float((a_arr - b_arr)[0])
        if diff == 0.0:
            return 0.0, 1.0
        return float(np.inf if diff > 0 else -np.inf), 0.0
    t_stat, p_value = stats.ttest_rel(a_arr, b_arr)
    return float(t_stat), float(p_value)


def variance_reduction(
    member_accuracies: Dict[str, Sequence[float]],
    ensemble_accuracies: Sequence[float],
) -> float:
    """How much lower the ensemble's across-subject variance is vs. its members.

    Returns ``1 - var(ensemble) / mean(var(members))``; positive values mean
    the ensemble is more robust to user-specific noise (paper §V-A).
    """
    if not member_accuracies:
        raise ValueError("member_accuracies must not be empty")
    member_variances = []
    for values in member_accuracies.values():
        arr = np.asarray(list(values), dtype=float)
        if arr.size < 2:
            raise ValueError("Each member needs at least two per-subject accuracies")
        member_variances.append(arr.var(ddof=1))
    ensemble_arr = np.asarray(list(ensemble_accuracies), dtype=float)
    if ensemble_arr.size < 2:
        raise ValueError("Ensemble needs at least two per-subject accuracies")
    mean_member_variance = float(np.mean(member_variances))
    if mean_member_variance == 0.0:
        return 0.0
    return float(1.0 - ensemble_arr.var(ddof=1) / mean_member_variance)
