"""Evaluation: classification metrics, statistics and LOSO cross-validation."""

from repro.evaluation.metrics import (
    accuracy_score,
    confidence_interval,
    confusion_matrix,
    mean_and_std,
    paired_t_test,
    per_class_accuracy,
    variance_reduction,
)
from repro.evaluation.crossval import CrossValidationReport, FoldResult, run_loso_evaluation

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "per_class_accuracy",
    "mean_and_std",
    "confidence_interval",
    "paired_t_test",
    "variance_reduction",
    "CrossValidationReport",
    "FoldResult",
    "run_loso_evaluation",
]
