"""Legacy-environment shim.

All metadata lives in ``pyproject.toml``; modern pip installs this package
editable via PEP 660 (``pip install -e .``).  This file only exists so
environments with an old setuptools or no ``wheel`` package can still get an
editable install with ``python setup.py develop``.
"""

from setuptools import setup

setup()
