"""Tests for the ring buffer, including hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acquisition.ringbuffer import RingBuffer


class TestRingBufferBasics:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RingBuffer(0, 10)
        with pytest.raises(ValueError):
            RingBuffer(4, 0)

    def test_append_single_sample(self):
        buf = RingBuffer(3, 10)
        buf.append(np.array([1.0, 2.0, 3.0]))
        data, ts = buf.latest(1)
        np.testing.assert_allclose(data[:, 0], [1.0, 2.0, 3.0])
        assert np.isnan(ts[0])

    def test_append_block_with_timestamps(self):
        buf = RingBuffer(2, 10)
        block = np.arange(8).reshape(2, 4).astype(float)
        buf.append(block, timestamps=np.array([0.1, 0.2, 0.3, 0.4]))
        data, ts = buf.latest(4)
        np.testing.assert_allclose(data, block)
        np.testing.assert_allclose(ts, [0.1, 0.2, 0.3, 0.4])

    def test_channel_mismatch_raises(self):
        buf = RingBuffer(3, 10)
        with pytest.raises(ValueError):
            buf.append(np.zeros((2, 5)))

    def test_timestamp_length_mismatch_raises(self):
        buf = RingBuffer(2, 10)
        with pytest.raises(ValueError):
            buf.append(np.zeros((2, 3)), timestamps=np.zeros(2))

    def test_latest_more_than_available_raises(self):
        buf = RingBuffer(2, 10)
        buf.append(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            buf.latest(4)

    def test_latest_zero_raises(self):
        buf = RingBuffer(2, 10)
        buf.append(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            buf.latest(0)

    def test_overwrite_keeps_most_recent(self):
        buf = RingBuffer(1, 5)
        buf.append(np.arange(8, dtype=float)[None, :])
        data, _ = buf.latest(5)
        np.testing.assert_allclose(data[0], [3, 4, 5, 6, 7])

    def test_wraparound_ordering(self):
        buf = RingBuffer(1, 4)
        buf.append(np.array([[0.0, 1.0, 2.0]]))
        buf.append(np.array([[3.0, 4.0]]))
        data, _ = buf.latest(4)
        np.testing.assert_allclose(data[0], [1, 2, 3, 4])

    def test_clear_resets_count_not_capacity(self):
        buf = RingBuffer(2, 6)
        buf.append(np.zeros((2, 4)))
        buf.clear()
        assert len(buf) == 0
        buf.append(np.ones((2, 2)))
        assert len(buf) == 2

    def test_total_appended_counts_overwritten(self):
        buf = RingBuffer(1, 3)
        buf.append(np.zeros((1, 5)))
        assert buf.total_appended == 5
        assert len(buf) == 3
        assert buf.is_full


class TestRingBufferProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        chunks=st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=12),
        capacity=st.integers(min_value=1, max_value=20),
    )
    def test_property_latest_matches_tail_of_history(self, chunks, capacity):
        """The buffer always holds exactly the tail of everything appended."""
        buf = RingBuffer(1, capacity)
        history = []
        value = 0.0
        for size in chunks:
            block = np.arange(value, value + size, dtype=float)[None, :]
            value += size
            history.extend(block[0].tolist())
            buf.append(block)
        expected_count = min(capacity, len(history))
        assert len(buf) == expected_count
        data, _ = buf.latest(expected_count)
        np.testing.assert_allclose(data[0], history[-expected_count:])

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=30),
        capacity=st.integers(min_value=1, max_value=30),
    )
    def test_property_count_never_exceeds_capacity(self, n, capacity):
        buf = RingBuffer(2, capacity)
        buf.append(np.zeros((2, n)))
        assert len(buf) <= capacity
