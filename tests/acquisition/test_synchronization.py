"""Tests for clock synchronisation and timestamp dejittering."""

import numpy as np
import pytest

from repro.acquisition.synchronization import (
    ClockSynchronizer,
    TimestampCorrector,
    jitter_statistics,
)


class TestClockSynchronizer:
    def test_no_observations_gives_zero_offset(self):
        assert ClockSynchronizer().offset_s() == 0.0

    def test_recovers_constant_offset(self):
        sync = ClockSynchronizer()
        true_offset = 0.25
        for i in range(20):
            local_send = i * 0.1
            local_recv = local_send + 0.004
            remote = 0.5 * (local_send + local_recv) + true_offset
            sync.add_probe(local_send, remote, local_recv)
        assert sync.offset_s() == pytest.approx(true_offset, abs=1e-9)

    def test_robust_to_outlier_probes(self):
        sync = ClockSynchronizer()
        for i in range(30):
            local_send = i * 0.1
            local_recv = local_send + 0.004
            remote = 0.5 * (local_send + local_recv) + 0.1
            sync.add_probe(local_send, remote, local_recv)
        # One wildly delayed probe should barely move the median.
        sync.add_probe(5.0, 5.1 + 3.0, 5.01)
        assert sync.offset_s() == pytest.approx(0.1, abs=0.01)

    def test_to_local_inverts_offset(self):
        sync = ClockSynchronizer()
        sync.add_probe(0.0, 1.0, 0.0)
        assert sync.to_local(2.0) == pytest.approx(1.0)

    def test_invalid_probe_rejected(self):
        with pytest.raises(ValueError):
            ClockSynchronizer().add_probe(1.0, 1.0, 0.5)

    def test_history_is_bounded(self):
        sync = ClockSynchronizer(history_size=5)
        for i in range(20):
            sync.add_probe(i, i + 0.1, i)
        assert sync.n_observations == 5


class TestTimestampCorrector:
    def test_reduces_jitter(self):
        fs = 125.0
        rng = np.random.default_rng(0)
        true_times = np.arange(500) / fs
        noisy = true_times + rng.normal(0, 0.002, size=500)
        corrector = TimestampCorrector(fs)
        corrected = corrector.correct_block(noisy)
        _, raw_std = jitter_statistics(noisy, fs)
        _, corr_std = jitter_statistics(corrected, fs)
        assert corr_std < 0.5 * raw_std

    def test_first_timestamp_passthrough(self):
        corrector = TimestampCorrector(125.0)
        assert corrector.correct(3.0) == 3.0

    def test_tracks_slow_drift(self):
        fs = 100.0
        corrector = TimestampCorrector(fs, learning_rate=0.2)
        # Clock running 0.1% fast.
        raw = [i * (1.001 / fs) for i in range(1000)]
        corrected = corrector.correct_block(raw)
        assert abs(corrected[-1] - raw[-1]) < 0.05

    def test_reset_clears_state(self):
        corrector = TimestampCorrector(125.0)
        corrector.correct(1.0)
        corrector.reset()
        assert corrector.correct(10.0) == 10.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            TimestampCorrector(0.0)


class TestJitterStatistics:
    def test_perfect_grid_has_zero_jitter(self):
        ts = np.arange(100) / 125.0
        mad, std = jitter_statistics(ts, 125.0)
        assert mad == pytest.approx(0.0, abs=1e-9)
        assert std == pytest.approx(0.0, abs=1e-9)

    def test_short_input_returns_zeros(self):
        assert jitter_statistics([1.0], 125.0) == (0.0, 0.0)
