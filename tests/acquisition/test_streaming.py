"""Tests for the LSL-like and UDP-like stream transports (Fig. 4 substrate)."""

import numpy as np
import pytest

from repro.acquisition.streaming import (
    LSLStream,
    StreamMetrics,
    UDPStream,
    compare_transports,
)


class TestLSLStream:
    def test_delivers_every_sample_in_order(self):
        stream = LSLStream(n_channels=4, seed=1)
        for i in range(100):
            stream.send(np.full(4, float(i)), source_time_s=i * 0.008)
        delivered = stream.receive_all()
        assert len(delivered) == 100
        assert [s.sequence for s in delivered] == list(range(100))

    def test_timestamps_are_corrected_for_clock_offset(self):
        stream = LSLStream(n_channels=2, seed=2, clock_offset_s=0.5)
        stream.send(np.zeros(2), source_time_s=1.0)
        sample = stream.receive_all()[0]
        assert abs(sample.source_timestamp_s - 1.0) < 0.01

    def test_without_correction_offset_remains(self):
        stream = LSLStream(
            n_channels=2, seed=2, clock_offset_s=0.5, apply_time_correction=False
        )
        stream.send(np.zeros(2), source_time_s=1.0)
        sample = stream.receive_all()[0]
        assert abs(sample.source_timestamp_s - 1.5) < 0.01

    def test_wrong_channel_count_rejected(self):
        stream = LSLStream(n_channels=4)
        with pytest.raises(ValueError):
            stream.send(np.zeros(3), 0.0)


class TestUDPStream:
    def test_some_packets_dropped(self):
        stream = UDPStream(n_channels=2, seed=3, drop_probability=0.2)
        for i in range(500):
            stream.send(np.zeros(2), source_time_s=i * 0.008)
        assert 0 < len(stream.receive_all()) < 500

    def test_no_source_timestamps(self):
        stream = UDPStream(n_channels=2, seed=4, drop_probability=0.0)
        stream.send(np.zeros(2), 0.0)
        assert stream.receive_all()[0].source_timestamp_s is None

    def test_zero_drop_delivers_all(self):
        stream = UDPStream(n_channels=2, seed=5, drop_probability=0.0)
        for i in range(50):
            stream.send(np.zeros(2), i * 0.008)
        assert len(stream.receive_all()) == 50

    def test_bandwidth_efficiency_better_than_lsl(self):
        udp = UDPStream(n_channels=16, seed=6)
        lsl = LSLStream(n_channels=16, seed=6)
        for i in range(10):
            udp.send(np.zeros(16), i * 0.008)
            lsl.send(np.zeros(16), i * 0.008)
        assert udp.bandwidth_efficiency > lsl.bandwidth_efficiency


class TestCompareTransports:
    @pytest.fixture(scope="class")
    def results(self):
        return compare_transports(n_samples=1000, seed=0)

    def test_returns_both_transports(self, results):
        assert set(results) == {"lsl", "udp"}
        assert all(isinstance(m, StreamMetrics) for m in results.values())

    def test_lsl_wins_on_sync_latency_reliability_jitter(self, results):
        lsl, udp = results["lsl"], results["udp"]
        assert lsl.sync_error_ms < udp.sync_error_ms
        assert lsl.jitter_ms < udp.jitter_ms
        assert lsl.delivery_ratio > udp.delivery_ratio
        assert lsl.ordered_ratio >= udp.ordered_ratio

    def test_udp_wins_only_on_bandwidth(self, results):
        lsl, udp = results["lsl"], results["udp"]
        assert udp.bandwidth_efficiency > lsl.bandwidth_efficiency

    def test_scores_in_valid_range(self, results):
        for metrics in results.values():
            for value in metrics.as_scores().values():
                assert 0.0 <= value <= 10.0
