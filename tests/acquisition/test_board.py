"""Tests for the simulated Cyton + Daisy board."""

import numpy as np
import pytest

from repro.acquisition.board import BoardConfig, BoardError, SimulatedCytonDaisyBoard
from repro.signals.synthetic import ACTION_LEFT, ACTION_RIGHT


@pytest.fixture()
def board():
    b = SimulatedCytonDaisyBoard()
    b.prepare_session()
    b.start_stream()
    return b


class TestSessionLifecycle:
    def test_cannot_start_before_prepare(self):
        board = SimulatedCytonDaisyBoard()
        with pytest.raises(BoardError):
            board.start_stream()

    def test_double_prepare_rejected(self):
        board = SimulatedCytonDaisyBoard()
        board.prepare_session()
        with pytest.raises(BoardError):
            board.prepare_session()

    def test_stop_without_start_rejected(self):
        board = SimulatedCytonDaisyBoard()
        board.prepare_session()
        with pytest.raises(BoardError):
            board.stop_stream()

    def test_release_stops_stream_and_clears(self, board):
        board.advance(1.0)
        board.release_session()
        assert not board.is_streaming
        with pytest.raises(BoardError):
            board.get_current_board_data(10)

    def test_advance_requires_streaming(self):
        board = SimulatedCytonDaisyBoard()
        board.prepare_session()
        with pytest.raises(BoardError):
            board.advance(1.0)


class TestDataFlow:
    def test_advance_produces_expected_sample_count(self, board):
        block = board.advance(2.0)
        assert block.shape == (16, 250)
        assert board.available_samples() == 250

    def test_get_current_board_data_is_non_destructive(self, board):
        board.advance(1.0)
        board.get_current_board_data(50)
        assert board.available_samples() == 125

    def test_get_board_data_drains_buffer(self, board):
        board.advance(1.0)
        data, ts = board.get_board_data()
        assert data.shape[1] == 125
        assert ts.shape[0] == 125
        assert board.available_samples() == 0

    def test_get_board_data_when_empty(self, board):
        data, ts = board.get_board_data()
        assert data.shape == (16, 0)
        assert ts.shape == (0,)

    def test_timestamps_increase_monotonically_on_average(self, board):
        board.advance(2.0)
        _, ts = board.get_current_board_data(250)
        # Jitter may locally reorder but the overall trend must be increasing.
        assert ts[-1] > ts[0]
        assert np.median(np.diff(ts)) == pytest.approx(1.0 / 125.0, rel=0.2)

    def test_sim_time_advances(self, board):
        board.advance(1.5)
        assert board.sim_time_s == pytest.approx(1.5, abs=0.02)

    def test_invalid_advance_duration(self, board):
        with pytest.raises(ValueError):
            board.advance(0.0)


class TestActionsAndMarkers:
    def test_set_action_changes_generated_statistics(self, board):
        c3 = board.montage.index_of("C3")
        from repro.signals.quality import band_power

        board.set_action(ACTION_RIGHT)
        right = np.mean(
            [band_power(board.advance(2.0)[c3], (8, 30), 125.0) for _ in range(4)]
        )
        board.set_action(ACTION_LEFT)
        left = np.mean(
            [band_power(board.advance(2.0)[c3], (8, 30), 125.0) for _ in range(4)]
        )
        assert right < left

    def test_invalid_action_rejected(self, board):
        with pytest.raises(ValueError):
            board.set_action("fly")

    def test_markers_record_time_and_label(self, board):
        board.advance(1.0)
        board.insert_marker("cue:right")
        assert board.markers == [(pytest.approx(1.0, abs=0.02), "cue:right")]

    def test_montage_board_channel_mismatch_rejected(self):
        from repro.signals.montage import Montage

        with pytest.raises(ValueError):
            SimulatedCytonDaisyBoard(
                config=BoardConfig(n_channels=8), montage=Montage()
            )
