"""Tests for the Fig. 4, Fig. 5 and Fig. 7 experiment harnesses."""

import pytest

from repro.experiments import fig04_lsl_vs_udp, fig05_filtering, fig07_asr_pareto


class TestFig04:
    @pytest.fixture(scope="class")
    def result(self):
        return fig04_lsl_vs_udp.run(n_samples=1500, seed=0)

    def test_shape_matches_paper(self, result):
        """LSL wins every axis except bandwidth efficiency."""
        assert result.lsl_wins_everything_but_bandwidth()

    def test_scores_cover_all_axes(self, result):
        for scores in result.scores.values():
            assert {
                "synchronisation", "latency", "reliability", "jitter_handling",
                "bandwidth_efficiency", "ordering",
            } == set(scores)

    def test_report_mentions_both_transports(self, result):
        report = fig04_lsl_vs_udp.format_report(result)
        assert "LSL" in report and "UDP" in report


class TestFig05:
    @pytest.fixture(scope="class")
    def result(self):
        return fig05_filtering.run(duration_s=6.0, seed=1)

    def test_line_noise_strongly_reduced(self, result):
        assert result.line_noise_reduction > 10.0

    def test_snr_improves(self, result):
        assert result.snr_improvement_db > 0.0

    def test_segments_have_equal_length(self, result):
        assert result.raw_segment.shape == result.filtered_segment.shape

    def test_report_contains_metrics(self, result):
        report = fig05_filtering.format_report(result)
        assert "line-noise" in report
        assert "SNR" in report


class TestFig07:
    @pytest.fixture(scope="class")
    def result(self):
        return fig07_asr_pareto.run(n_train_per_word=10, n_eval_per_word=5, seed=0)

    def test_family_fully_evaluated(self, result):
        assert len(result.points) == 5
        names = {p.name for p in result.points}
        assert "kws-small" in names and "kws-large" in names

    def test_pareto_front_nonempty(self, result):
        assert any(p.on_pareto_front for p in result.points)

    def test_selected_model_is_not_the_largest(self, result):
        """The knee selection should avoid the largest, slowest member."""
        selected = result.point(result.selected)
        largest = max(result.points, key=lambda p: p.vram_mb)
        assert selected.latency_s <= largest.latency_s

    def test_selected_accuracy_close_to_best(self, result):
        best = max(p.accuracy for p in result.points)
        assert result.point(result.selected).accuracy >= best - 0.05

    def test_report_flags_selected_model(self, result):
        report = fig07_asr_pareto.format_report(result)
        assert "selected" in report
