"""Tests for the table experiment harnesses (Tables I-III)."""

import pytest

from repro.experiments import table1_conditions, table2_comparison, table3_search_space


class TestTable1:
    def test_has_five_conditions(self):
        rows = table1_conditions.run()
        assert len(rows) == 5
        assert {r.condition for r in rows} == {
            "ALS", "Spinal Cord Injury", "Brainstem Stroke", "Multiple Sclerosis",
            "Muscular Dystrophies",
        }

    def test_report_renders_every_row(self):
        report = table1_conditions.format_report()
        for row in table1_conditions.run():
            assert row.condition in report


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return table2_comparison.run(epochs=1)

    def test_includes_literature_and_our_system(self, rows):
        solutions = [r.solution for r in rows]
        assert "MindArm [28]" in solutions
        assert any("CognitiveArm" in s for s in solutions)

    def test_cognitive_arm_row_has_measured_accuracy(self, rows):
        our_row = [r for r in rows if "CognitiveArm" in r.solution][0]
        assert our_row.accuracy.endswith("%")
        assert our_row.cost == "$500"
        assert our_row.method == "EEG-based"

    def test_report_renders(self, rows):
        report = table2_comparison.format_report(rows)
        assert "Solution | Method" in report
        assert "CognitiveArm" in report


class TestTable3:
    def test_four_model_families(self):
        rows = table3_search_space.run()
        assert [r["model"] for r in rows] == ["cnn", "lstm", "transformer", "rf"]

    def test_hyperparameters_match_paper_ranges(self):
        rows = {r["model"]: r for r in table3_search_space.run()}
        assert rows["lstm"]["hyperparameters"]["hidden_size"] == (64, 128, 256, 512)
        assert rows["transformer"]["hyperparameters"]["n_heads"] == (2, 4, 8)
        assert rows["rf"]["hyperparameters"]["n_estimators"] == (100, 200, 300, 400, 500)

    def test_report_renders(self):
        report = table3_search_space.format_report()
        assert "cnn" in report and "Optimizers" in report
