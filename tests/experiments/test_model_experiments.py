"""Tests for the Fig. 8-12 and results-summary experiment harnesses.

These run the harnesses at their smallest useful scale; the benchmarks run
them larger.  Module-scoped fixtures keep the total cost down by reusing the
expensive search results across assertions.
"""

import pytest

from repro.experiments import (
    fig08_evolutionary,
    fig09_pareto_front,
    fig10_rf_search,
    fig11_ensemble,
    fig12_compression,
    results_summary,
)


@pytest.fixture(scope="module")
def fig08_result():
    return fig08_evolutionary.run(population_size=3, generations=1, training_epochs=2,
                                  model_scale=0.05, seed=0)


class TestFig08:
    def test_every_family_searched(self, fig08_result):
        assert set(fig08_result.per_family) == {"cnn", "lstm", "transformer"}

    def test_candidates_have_valid_objectives(self, fig08_result):
        for family in fig08_result.per_family:
            for candidate in fig08_result.scatter(family):
                assert 0.0 <= candidate.accuracy <= 1.0
                assert candidate.parameters > 0

    def test_best_candidate_on_family_pareto_front(self, fig08_result):
        for family, result in fig08_result.per_family.items():
            assert result.best is not None
            assert result.best in result.pareto

    def test_report_renders_all_families(self, fig08_result):
        report = fig08_evolutionary.format_report(fig08_result)
        for family in ("cnn", "lstm", "transformer"):
            assert family in report


class TestFig09:
    @pytest.fixture(scope="class")
    def result(self, fig08_result):
        return fig09_pareto_front.run(fig08_result=fig08_result,
                                      rf_estimator_counts=(5,), seed=0)

    def test_points_include_all_four_families(self, result):
        families = {p.family for p in result.points}
        assert families == {"cnn", "lstm", "transformer", "rf"}

    def test_front_is_non_dominated(self, result):
        for a in result.front:
            for b in result.front:
                if a is b:
                    continue
                assert not (b.accuracy > a.accuracy and b.parameters <= a.parameters)

    def test_best_selected_from_front(self, result):
        assert result.best is not None
        assert result.best in result.front

    def test_report_renders(self, result):
        assert "Pareto" in fig09_pareto_front.format_report(result)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10_rf_search.run(estimator_counts=(4, 8), depths=(5, 10), seed=0)

    def test_grid_covers_every_combination(self, result):
        assert len(result.grid) == 4
        combos = {(p.n_estimators, p.max_depth) for p in result.grid}
        assert combos == {(4, 5), (4, 10), (8, 5), (8, 10)}

    def test_node_count_grows_with_forest_size(self, result):
        small = [p for p in result.grid if p.n_estimators == 4 and p.max_depth == 10][0]
        large = [p for p in result.grid if p.n_estimators == 8 and p.max_depth == 10][0]
        assert large.total_nodes > small.total_nodes

    def test_best_is_grid_member_with_top_accuracy(self, result):
        assert result.best in result.grid
        assert result.best.accuracy == max(result.accuracies())

    def test_report_lists_selection(self, result):
        assert "selected:" in fig10_rf_search.format_report(result)


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_ensemble.run(epochs=2, latency_repeats=2, seed=0)

    def test_four_singles_and_six_pairs(self, result):
        assert len(result.singles) == 4
        assert len(result.ensembles) == 6

    def test_best_ensemble_accuracy_not_below_near_best(self, result):
        best_accuracy = max(p.accuracy for p in result.ensembles)
        assert result.best_ensemble.accuracy >= best_accuracy - 0.02

    def test_ensemble_parameters_sum_members(self, result):
        singles = {p.name: p for p in result.singles}
        for ensemble in result.ensembles:
            expected = sum(singles[m].parameters for m in ensemble.members)
            assert ensemble.parameters == expected

    def test_report_marks_best(self, result):
        assert "best ensemble" in fig11_ensemble.format_report(result)


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_compression.run(epochs=3, seed=0)

    def test_sweep_covers_paper_levels_and_quantization(self, result):
        labels = {p.label for p in result.points}
        assert {"pruning 0%", "pruning 30%", "pruning 50%", "pruning 70%",
                "pruning 90%", "8-bit quantization"} == labels

    def test_70_percent_pruning_nearly_free(self, result):
        """The paper's headline: 70 % pruning keeps accuracy within a small margin."""
        assert result.selected.accuracy >= result.baseline.accuracy - 0.15

    def test_pruning_reduces_effective_parameters_monotonically(self, result):
        pruned = sorted(
            (p for p in result.points if p.kind in ("baseline", "pruned")),
            key=lambda p: p.effective_parameters,
        )
        assert pruned[0].label == "pruning 90%"
        assert pruned[-1].label == "pruning 0%"

    def test_quantization_faster_than_uncompressed_baseline(self, result):
        """Int8 execution shortens the estimated edge latency relative to the
        float32 baseline (at paper scale it is the fastest configuration;
        at this reduced scale the fixed dispatch overhead dominates, so only
        the ordering against the baseline is asserted)."""
        assert result.quantized.estimated_latency_s <= result.baseline.estimated_latency_s

    def test_quantization_loses_more_accuracy_than_selected_pruning(self, result):
        """Shape of Fig. 12: naive 8-bit quantization costs more accuracy than
        the 70 % pruned configuration."""
        assert result.quantized.accuracy <= result.selected.accuracy + 0.05

    def test_report_renders(self, result):
        report = fig12_compression.format_report(result)
        assert "selected (70% pruning)" in report


class TestResultsSummary:
    @pytest.fixture(scope="class")
    def summary(self):
        return results_summary.run(epochs=2, loso_max_folds=1, validation_sessions=2, seed=0)

    def test_all_headline_metrics_present(self, summary):
        rows = summary.as_rows()
        metrics = {row["metric"] for row in rows}
        assert "ensemble accuracy" in metrics
        assert "70% pruned accuracy" in metrics
        assert "real-world validation" in metrics

    def test_accuracies_are_fractions(self, summary):
        assert 0.0 <= summary.ensemble_accuracy <= 1.0
        assert 0.0 <= summary.pruned_accuracy <= 1.0
        assert 0.0 <= summary.quantized_accuracy <= 1.0
        assert 0.0 <= summary.loso_mean_accuracy <= 1.0

    def test_ensemble_beats_chance(self, summary):
        assert summary.ensemble_accuracy > 0.4

    def test_validation_campaign_counts(self, summary):
        assert 0 <= summary.validation_successes <= summary.validation_sessions == 2

    def test_latencies_positive(self, summary):
        assert summary.ensemble_latency_s > 0
        assert summary.pruned_latency_s > 0
        assert summary.quantized_latency_s > 0
        assert summary.mean_pipeline_latency_s > 0

    def test_report_renders_paper_vs_measured(self, summary):
        report = results_summary.format_report(summary)
        assert "Paper" in report and "Measured" in report
