"""Tests for the shared wall-clock timing helper and the Clock protocol."""

import pytest

from repro.utils.timing import (
    SYSTEM_CLOCK,
    Clock,
    MonotonicClock,
    median_call_time_s,
    time_calls,
)
from tests.helpers import FakeClock


class TestTimeCalls:
    def test_returns_one_timing_per_repeat(self):
        calls = []
        timings = time_calls(lambda: calls.append(1), repeats=4)
        assert len(timings) == 4
        assert len(calls) == 4
        assert all(t >= 0 for t in timings)

    def test_always_calls_at_least_once(self):
        calls = []
        timings = time_calls(lambda: calls.append(1), repeats=0)
        assert len(timings) == 1
        assert len(calls) == 1


class TestClockProtocol:
    def test_monotonic_clock_satisfies_the_protocol(self):
        assert isinstance(MonotonicClock(), Clock)
        assert isinstance(SYSTEM_CLOCK, Clock)
        before = SYSTEM_CLOCK.now()
        SYSTEM_CLOCK.sleep(0)  # zero sleep must not block or raise
        assert SYSTEM_CLOCK.now() >= before

    def test_fake_clock_satisfies_the_protocol(self):
        clock = FakeClock(start=5.0)
        assert isinstance(clock, Clock)
        assert clock.now() == 5.0
        clock.sleep(2.5)  # advances virtual time instead of blocking
        assert clock.now() == 7.5
        clock.advance_to(10.0)
        assert clock.now() == 10.0
        with pytest.raises(ValueError):
            clock.advance_to(1.0)  # never rewinds

    def test_time_calls_through_an_injected_clock_is_exact(self):
        clock = FakeClock()
        timings = time_calls(lambda: clock.advance(0.25), repeats=4, clock=clock)
        assert timings == [0.25] * 4  # 0.25 is exact in binary floating point
        median = median_call_time_s(lambda: clock.advance(0.1), clock=clock)
        assert median == pytest.approx(0.1)


class TestMedianCallTime:
    def test_median_within_observed_range(self):
        import time

        median = median_call_time_s(lambda: time.sleep(0.001), repeats=3)
        assert median >= 0.001

    def test_shared_by_classifier_and_profiler(self):
        """The three former copies of the timing loop all route through here."""
        import inspect

        from repro.deployment import profiler
        from repro.models import base
        from repro.serving import telemetry

        for module in (base, profiler):
            assert "median_call_time_s" in inspect.getsource(module)
        # Serving calibration delegates to the classifier's own latency
        # method, which itself uses the shared helper.
        assert "inference_latency_s" in inspect.getsource(telemetry)
