"""Tests for the shared wall-clock timing helper."""

from repro.utils.timing import median_call_time_s, time_calls


class TestTimeCalls:
    def test_returns_one_timing_per_repeat(self):
        calls = []
        timings = time_calls(lambda: calls.append(1), repeats=4)
        assert len(timings) == 4
        assert len(calls) == 4
        assert all(t >= 0 for t in timings)

    def test_always_calls_at_least_once(self):
        calls = []
        timings = time_calls(lambda: calls.append(1), repeats=0)
        assert len(timings) == 1
        assert len(calls) == 1


class TestMedianCallTime:
    def test_median_within_observed_range(self):
        import time

        median = median_call_time_s(lambda: time.sleep(0.001), repeats=3)
        assert median >= 0.001

    def test_shared_by_classifier_and_profiler(self):
        """The three former copies of the timing loop all route through here."""
        import inspect

        from repro.deployment import profiler
        from repro.models import base
        from repro.serving import telemetry

        for module in (base, profiler):
            assert "median_call_time_s" in inspect.getsource(module)
        # Serving calibration delegates to the classifier's own latency
        # method, which itself uses the shared helper.
        assert "inference_latency_s" in inspect.getsource(telemetry)
