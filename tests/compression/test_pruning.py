"""Tests for global magnitude pruning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.pruning import (
    PAPER_PRUNING_LEVELS,
    apply_global_magnitude_pruning,
    effective_parameter_count,
    prune_classifier,
    sparsity,
)
from repro.models.base import TrainingConfig
from repro.models.cnn import CNNConfig, EEGCNN
from repro.nn.layers import Dense
from repro.nn.module import Sequential
from tests.helpers import make_toy_dataset


def _mlp(seed=0):
    return Sequential(Dense(10, 20, seed=seed), Dense(20, 5, seed=seed + 1))


class TestGlobalPruning:
    def test_zero_ratio_changes_nothing(self):
        model = _mlp()
        before = [p.data.copy() for p in model.parameters()]
        report = apply_global_magnitude_pruning(model, 0.0)
        assert report.pruned_weights == 0
        for original, param in zip(before, model.parameters()):
            np.testing.assert_allclose(original, param.data)

    def test_achieved_sparsity_close_to_requested(self):
        for ratio in (0.3, 0.5, 0.7, 0.9):
            model = _mlp()
            report = apply_global_magnitude_pruning(model, ratio)
            assert report.achieved_sparsity == pytest.approx(ratio, abs=0.05)

    def test_biases_are_not_pruned(self):
        model = _mlp()
        # Give the biases non-zero values so "still non-zero" is meaningful.
        for layer in model.layers:
            layer.bias.data[:] = 0.001
        apply_global_magnitude_pruning(model, 0.9)
        for layer in model.layers:
            assert (layer.bias.data != 0).all()

    def test_pruning_removes_smallest_weights_first(self):
        model = Sequential(Dense(4, 4, seed=3))
        weight = model.layers[0].weight
        weight.data = np.arange(1, 17, dtype=float).reshape(4, 4)
        apply_global_magnitude_pruning(model, 0.5)
        # Magnitudes 1..8 should be gone, 9..16 kept (threshold inclusive behaviour aside).
        assert (weight.data[weight.data != 0] >= 8).all()

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            apply_global_magnitude_pruning(_mlp(), 1.0)
        with pytest.raises(ValueError):
            apply_global_magnitude_pruning(_mlp(), -0.1)

    def test_module_without_matrices_rejected(self):
        from repro.nn.layers import LayerNorm

        with pytest.raises(ValueError):
            apply_global_magnitude_pruning(Sequential(LayerNorm(4)), 0.5)

    def test_paper_levels_constant(self):
        assert PAPER_PRUNING_LEVELS == (0.0, 0.3, 0.5, 0.7, 0.9)

    @settings(max_examples=20, deadline=None)
    @given(ratio=st.floats(min_value=0.05, max_value=0.95))
    def test_property_sparsity_monotone_in_ratio(self, ratio):
        model = _mlp(seed=7)
        report = apply_global_magnitude_pruning(model, ratio)
        assert report.achieved_sparsity <= ratio + 0.1
        assert sparsity(model) == pytest.approx(report.achieved_sparsity, abs=1e-9)
        assert report.effective_parameters == report.total_weights - report.pruned_weights


class TestPruneClassifier:
    @pytest.fixture(scope="class")
    def fitted_cnn(self):
        dataset = make_toy_dataset(n_per_class=12, window_size=40)
        model = EEGCNN(
            CNNConfig(filters=(8,), kernel_size=3, stride=2, hidden_units=16),
            training=TrainingConfig(epochs=8, batch_size=16, learning_rate=1e-2),
            seed=0,
        )
        model.fit(dataset, dataset)
        return model, dataset

    def test_original_untouched(self, fitted_cnn):
        model, _ = fitted_cnn
        before = model.network.state_dict()
        pruned, _ = prune_classifier(model, 0.7)
        after = model.network.state_dict()
        for key in before:
            np.testing.assert_allclose(before[key], after[key])
        assert pruned is not model

    def test_moderate_pruning_preserves_accuracy(self, fitted_cnn):
        model, dataset = fitted_cnn
        baseline = model.evaluate(dataset)
        pruned, report = prune_classifier(model, 0.3)
        assert report.achieved_sparsity == pytest.approx(0.3, abs=0.05)
        assert pruned.evaluate(dataset) >= baseline - 0.15

    def test_aggressive_pruning_hurts_more_than_moderate(self, fitted_cnn):
        model, dataset = fitted_cnn
        moderate, _ = prune_classifier(model, 0.3)
        extreme, _ = prune_classifier(model, 0.9)
        assert extreme.evaluate(dataset) <= moderate.evaluate(dataset) + 0.1

    def test_effective_parameter_count_decreases(self, fitted_cnn):
        model, _ = fitted_cnn
        pruned, _ = prune_classifier(model, 0.7)
        assert effective_parameter_count(pruned) < effective_parameter_count(model)

    def test_unfitted_classifier_rejected(self):
        with pytest.raises(ValueError):
            prune_classifier(EEGCNN(), 0.5)
        with pytest.raises(ValueError):
            effective_parameter_count(EEGCNN())


class TestInplacePruning:
    def _classifier(self):
        from repro.models.lstm_model import EEGLSTM, LSTMConfig

        classifier = EEGLSTM(LSTMConfig(hidden_size=16), seed=0)
        classifier.ensure_network(4, 50)
        return classifier

    def test_inplace_prune_matches_copy_semantics(self):
        import numpy as np

        from repro.compression.pruning import (
            prune_classifier,
            prune_classifier_inplace,
        )

        copied_source = self._classifier()
        pruned_copy, copy_report = prune_classifier(copied_source, 0.7)
        inplace = self._classifier()
        inplace_report = prune_classifier_inplace(inplace, 0.7)
        assert inplace_report.achieved_sparsity == copy_report.achieved_sparsity
        for (_, a), (_, b) in zip(
            pruned_copy.network.named_parameters(),
            inplace.network.named_parameters(),
        ):
            np.testing.assert_array_equal(a.data, b.data)

    def test_inplace_prune_invalidates_the_cached_plan(self):
        import numpy as np

        from repro.compression.pruning import prune_classifier_inplace

        classifier = self._classifier()
        windows = np.random.default_rng(0).standard_normal((2, 4, 50))
        classifier.predict_proba(windows)
        stale = classifier.ensure_compiled()
        prune_classifier_inplace(classifier, 0.5)
        assert classifier._compiled is None
        classifier.predict_proba(windows)
        assert classifier.ensure_compiled() is not stale

    def test_inplace_prune_requires_built_network(self):
        import pytest

        from repro.compression.pruning import prune_classifier_inplace
        from repro.models.lstm_model import EEGLSTM, LSTMConfig

        with pytest.raises(ValueError):
            prune_classifier_inplace(EEGLSTM(LSTMConfig(hidden_size=8)), 0.5)


class TestBlockPruning:
    def _block_mlp(self, seed=0):
        # Shapes every default tile divides, so occupancy is exact.
        return Sequential(Dense(32, 16, seed=seed), Dense(16, 8, seed=seed + 1))

    def test_achieved_sparsity_close_to_requested(self):
        from repro.compression.pruning import apply_block_magnitude_pruning

        for ratio in (0.3, 0.5, 0.7, 0.9):
            model = self._block_mlp()
            report = apply_block_magnitude_pruning(model, ratio, tile=(8, 8))
            # Tile granularity: one (8, 8) tile is 64/640 of this model.
            assert report.achieved_sparsity == pytest.approx(ratio, abs=0.11)
            assert sparsity(model) == pytest.approx(report.achieved_sparsity, abs=1e-9)

    def test_zeros_land_on_the_tile_grid(self):
        from repro.compression.pruning import apply_block_magnitude_pruning

        model = self._block_mlp(seed=2)
        before = [layer.weight.data.copy() for layer in model.layers]
        apply_block_magnitude_pruning(model, 0.7, tile=(8, 8))
        for original, layer in zip(before, model.layers):
            matrix = layer.weight.data
            tiles = matrix.reshape(matrix.shape[0] // 8, 8, matrix.shape[1] // 8, 8)
            zeroed = (matrix == 0) & (original != 0)
            zeroed_tiles = zeroed.reshape(tiles.shape).any(axis=(1, 3))
            dead_tiles = ~np.any(tiles != 0, axis=(1, 3))
            # Pruning only ever kills whole tiles: any tile it touched is
            # entirely zero afterwards.
            assert (zeroed_tiles <= dead_tiles).all()

    def test_structured_sparsity_matches_unstructured_after_block_pruning(self):
        from repro.compression.pruning import apply_block_magnitude_pruning

        model = self._block_mlp(seed=3)
        apply_block_magnitude_pruning(model, 0.7, tile=(8, 8))
        # Block pruning: every zero lives in an all-zero tile, so the
        # structured measure equals the element-wise one.
        assert sparsity(model, tile=(8, 8)) == pytest.approx(sparsity(model), abs=1e-9)

    def test_elementwise_pruning_reports_no_structured_sparsity(self):
        model = self._block_mlp(seed=4)
        apply_global_magnitude_pruning(model, 0.7)
        # The honesty check: unstructured zeros are invisible to a block
        # kernel, and sparsity(tile=) says so.
        assert sparsity(model, tile=(8, 8)) < 0.2 < sparsity(model)

    def test_report_carries_block_occupancy(self):
        from repro.compression.pruning import apply_block_magnitude_pruning

        model = self._block_mlp(seed=5)
        report = apply_block_magnitude_pruning(model, 0.5, tile=(8, 8))
        names = dict(model.named_parameters()).keys()
        weight_names = [n for n in names if n.endswith("weight")]
        assert set(report.block_occupancy) == set(weight_names)
        occ = report.block_occupancy[weight_names[0]]
        assert occ.tile == (8, 8)
        assert 0 <= occ.tiles_kept <= occ.tiles_total
        assert occ.block_sparsity == pytest.approx(
            1.0 - occ.tiles_kept / occ.tiles_total
        )

    def test_elementwise_report_has_no_occupancy(self):
        report = apply_global_magnitude_pruning(self._block_mlp(seed=6), 0.5)
        assert report.block_occupancy == {}

    def test_lstm_projections_use_the_gate_coupled_grid(self):
        from repro.compression.pruning import (
            LSTM_TILE_MENU,
            apply_block_magnitude_pruning,
            pruning_grid,
        )
        from repro.nn.lstm import LSTM

        lstm = LSTM(input_size=16, hidden_size=32, seed=0)
        report = apply_block_magnitude_pruning(Sequential(lstm), 0.7)
        ih = next(k for k in report.block_occupancy if k.endswith("weight_ih"))
        hh = next(k for k in report.block_occupancy if k.endswith("weight_hh"))
        grid = pruning_grid(LSTM_TILE_MENU)
        assert grid == (32, 8)  # per-axis LCM of the menu
        # Gate-coupled: the scoring tile spans the matching column slice of
        # all four gate panels, so occupancy reports (th, 4*tw) — clamped to
        # the matrix (weight_ih here has only 16 rows).
        assert report.block_occupancy[ih].tile == (16, grid[1] * 4)
        assert report.block_occupancy[hh].tile == (grid[0], grid[1] * 4)
        assert report.block_occupancy[ih].gate_coupled is True
        assert report.block_occupancy[hh].gate_coupled is True

    def test_pruning_grid_is_the_menu_lcm(self):
        from repro.compression.pruning import pruning_grid

        assert pruning_grid(((8, 8), (16, 1), (32, 1))) == (32, 8)
        assert pruning_grid((8, 8)) == (8, 8)  # single tile passes through
        assert pruning_grid(((4, 2), (6, 3))) == (12, 6)

    def test_gate_coupled_zero_patterns_match_across_gates(self):
        """The four gate panels of a pruned projection share one zero mask.

        This is the invariant that makes fused-gate slabs free: the fused
        union keeps a column slab iff every gate's slice at that position
        was kept, so fusing never re-admits pruned weights.
        """
        from repro.compression.pruning import apply_block_magnitude_pruning
        from repro.nn.lstm import LSTM

        lstm = LSTM(input_size=32, hidden_size=64, seed=3)
        apply_block_magnitude_pruning(Sequential(lstm), 0.9)
        for name, param in Sequential(lstm).named_parameters():
            if not (name.endswith("weight_ih") or name.endswith("weight_hh")):
                continue
            rows, cols = param.data.shape
            gates = (param.data == 0).reshape(rows, 4, cols // 4)
            for gate in range(1, 4):
                np.testing.assert_array_equal(
                    gates[:, gate, :],
                    gates[:, 0, :],
                    err_msg=f"{name}: gate {gate} zero mask diverges from gate 0",
                )

    def test_menu_zeros_land_on_every_menu_tile(self):
        """LCM-grid pruning aligns zeros for ALL menu tiles at once.

        Each gate panel must present whole-tile zeros at (8, 8), (16, 1) and
        (32, 1) simultaneously — that is what lets the autotuner race every
        layout instead of committing to one at pruning time.
        """
        from repro.compression.pruning import (
            LSTM_TILE_MENU,
            apply_block_magnitude_pruning,
        )
        from repro.nn.lstm import LSTM

        lstm = LSTM(input_size=32, hidden_size=64, seed=4)
        before = {
            name: param.data.copy()
            for name, param in Sequential(lstm).named_parameters()
        }
        apply_block_magnitude_pruning(Sequential(lstm), 0.9)
        for name, param in Sequential(lstm).named_parameters():
            if not name.endswith("weight_hh"):
                continue
            matrix, original = param.data, before[name]
            zeroed = (matrix == 0) & (original != 0)
            for th, tw in LSTM_TILE_MENU:
                tiles = matrix.reshape(
                    matrix.shape[0] // th, th, matrix.shape[1] // tw, tw
                )
                zeroed_tiles = zeroed.reshape(tiles.shape).any(axis=(1, 3))
                dead_tiles = ~np.any(tiles != 0, axis=(1, 3))
                assert (zeroed_tiles <= dead_tiles).all(), (
                    f"{name}: pruning left a partially-zero ({th}, {tw}) tile"
                )

    def test_gate_coupled_sparsity_still_tracks_the_request(self):
        from repro.compression.pruning import apply_block_magnitude_pruning
        from repro.nn.lstm import LSTM

        for ratio in (0.5, 0.7, 0.9):
            lstm = LSTM(input_size=32, hidden_size=64, seed=5)
            report = apply_block_magnitude_pruning(Sequential(lstm), ratio)
            # Super-tile granularity on small matrices is coarse; the LCM
            # grid must still land within a tile of the request.
            assert report.achieved_sparsity == pytest.approx(ratio, abs=0.12)

    def test_oversized_tile_is_clamped_to_the_matrix(self):
        from repro.compression.pruning import apply_block_magnitude_pruning

        model = Sequential(Dense(4, 3, seed=7))
        report = apply_block_magnitude_pruning(model, 0.5, tile=(8, 8))
        assert report.block_occupancy["layers.0.weight"].tile == (4, 3)

    def test_edge_tiles_compete_fairly_on_indivisible_shapes(self):
        from repro.compression.pruning import apply_block_magnitude_pruning

        # (10, 7) with (8, 8) tiles: clipped edge tiles must not crash and
        # the achieved ratio must still track the request.
        model = Sequential(Dense(10, 7, seed=8))
        report = apply_block_magnitude_pruning(model, 0.5, tile=(8, 8))
        assert 0.0 < report.achieved_sparsity < 1.0
        assert sparsity(model) == pytest.approx(report.achieved_sparsity, abs=1e-9)

    def test_never_prunes_every_tile(self):
        from repro.compression.pruning import apply_block_magnitude_pruning

        model = Sequential(Dense(8, 8, seed=9))
        apply_block_magnitude_pruning(model, 0.99, tile=(4, 4))
        assert np.count_nonzero(model.layers[0].weight.data) > 0

    def test_prune_classifier_tile_dispatches_to_block_pruning(self):
        from repro.models.lstm_model import EEGLSTM, LSTMConfig

        classifier = EEGLSTM(LSTMConfig(hidden_size=32), seed=1)
        classifier.ensure_network(16, 50)
        pruned, report = prune_classifier(classifier, 0.7, tile=(8, 8))
        assert report.block_occupancy  # block path ran
        assert pruned is not classifier

    def test_inplace_tile_dispatch_and_plan_invalidation(self):
        from repro.compression.pruning import prune_classifier_inplace
        from repro.models.lstm_model import EEGLSTM, LSTMConfig

        classifier = EEGLSTM(LSTMConfig(hidden_size=32), seed=2)
        classifier.ensure_network(16, 50)
        windows = np.random.default_rng(1).standard_normal((2, 16, 50))
        classifier.predict_proba(windows)
        report = prune_classifier_inplace(classifier, 0.7, tile=(8, 8))
        assert report.block_occupancy
        assert classifier._compiled is None
