"""Tests for global magnitude pruning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.pruning import (
    PAPER_PRUNING_LEVELS,
    apply_global_magnitude_pruning,
    effective_parameter_count,
    prune_classifier,
    sparsity,
)
from repro.models.base import TrainingConfig
from repro.models.cnn import CNNConfig, EEGCNN
from repro.nn.layers import Dense
from repro.nn.module import Sequential
from tests.helpers import make_toy_dataset


def _mlp(seed=0):
    return Sequential(Dense(10, 20, seed=seed), Dense(20, 5, seed=seed + 1))


class TestGlobalPruning:
    def test_zero_ratio_changes_nothing(self):
        model = _mlp()
        before = [p.data.copy() for p in model.parameters()]
        report = apply_global_magnitude_pruning(model, 0.0)
        assert report.pruned_weights == 0
        for original, param in zip(before, model.parameters()):
            np.testing.assert_allclose(original, param.data)

    def test_achieved_sparsity_close_to_requested(self):
        for ratio in (0.3, 0.5, 0.7, 0.9):
            model = _mlp()
            report = apply_global_magnitude_pruning(model, ratio)
            assert report.achieved_sparsity == pytest.approx(ratio, abs=0.05)

    def test_biases_are_not_pruned(self):
        model = _mlp()
        # Give the biases non-zero values so "still non-zero" is meaningful.
        for layer in model.layers:
            layer.bias.data[:] = 0.001
        apply_global_magnitude_pruning(model, 0.9)
        for layer in model.layers:
            assert (layer.bias.data != 0).all()

    def test_pruning_removes_smallest_weights_first(self):
        model = Sequential(Dense(4, 4, seed=3))
        weight = model.layers[0].weight
        weight.data = np.arange(1, 17, dtype=float).reshape(4, 4)
        apply_global_magnitude_pruning(model, 0.5)
        # Magnitudes 1..8 should be gone, 9..16 kept (threshold inclusive behaviour aside).
        assert (weight.data[weight.data != 0] >= 8).all()

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ValueError):
            apply_global_magnitude_pruning(_mlp(), 1.0)
        with pytest.raises(ValueError):
            apply_global_magnitude_pruning(_mlp(), -0.1)

    def test_module_without_matrices_rejected(self):
        from repro.nn.layers import LayerNorm

        with pytest.raises(ValueError):
            apply_global_magnitude_pruning(Sequential(LayerNorm(4)), 0.5)

    def test_paper_levels_constant(self):
        assert PAPER_PRUNING_LEVELS == (0.0, 0.3, 0.5, 0.7, 0.9)

    @settings(max_examples=20, deadline=None)
    @given(ratio=st.floats(min_value=0.05, max_value=0.95))
    def test_property_sparsity_monotone_in_ratio(self, ratio):
        model = _mlp(seed=7)
        report = apply_global_magnitude_pruning(model, ratio)
        assert report.achieved_sparsity <= ratio + 0.1
        assert sparsity(model) == pytest.approx(report.achieved_sparsity, abs=1e-9)
        assert report.effective_parameters == report.total_weights - report.pruned_weights


class TestPruneClassifier:
    @pytest.fixture(scope="class")
    def fitted_cnn(self):
        dataset = make_toy_dataset(n_per_class=12, window_size=40)
        model = EEGCNN(
            CNNConfig(filters=(8,), kernel_size=3, stride=2, hidden_units=16),
            training=TrainingConfig(epochs=8, batch_size=16, learning_rate=1e-2),
            seed=0,
        )
        model.fit(dataset, dataset)
        return model, dataset

    def test_original_untouched(self, fitted_cnn):
        model, _ = fitted_cnn
        before = model.network.state_dict()
        pruned, _ = prune_classifier(model, 0.7)
        after = model.network.state_dict()
        for key in before:
            np.testing.assert_allclose(before[key], after[key])
        assert pruned is not model

    def test_moderate_pruning_preserves_accuracy(self, fitted_cnn):
        model, dataset = fitted_cnn
        baseline = model.evaluate(dataset)
        pruned, report = prune_classifier(model, 0.3)
        assert report.achieved_sparsity == pytest.approx(0.3, abs=0.05)
        assert pruned.evaluate(dataset) >= baseline - 0.15

    def test_aggressive_pruning_hurts_more_than_moderate(self, fitted_cnn):
        model, dataset = fitted_cnn
        moderate, _ = prune_classifier(model, 0.3)
        extreme, _ = prune_classifier(model, 0.9)
        assert extreme.evaluate(dataset) <= moderate.evaluate(dataset) + 0.1

    def test_effective_parameter_count_decreases(self, fitted_cnn):
        model, _ = fitted_cnn
        pruned, _ = prune_classifier(model, 0.7)
        assert effective_parameter_count(pruned) < effective_parameter_count(model)

    def test_unfitted_classifier_rejected(self):
        with pytest.raises(ValueError):
            prune_classifier(EEGCNN(), 0.5)
        with pytest.raises(ValueError):
            effective_parameter_count(EEGCNN())


class TestInplacePruning:
    def _classifier(self):
        from repro.models.lstm_model import EEGLSTM, LSTMConfig

        classifier = EEGLSTM(LSTMConfig(hidden_size=16), seed=0)
        classifier.ensure_network(4, 50)
        return classifier

    def test_inplace_prune_matches_copy_semantics(self):
        import numpy as np

        from repro.compression.pruning import (
            prune_classifier,
            prune_classifier_inplace,
        )

        copied_source = self._classifier()
        pruned_copy, copy_report = prune_classifier(copied_source, 0.7)
        inplace = self._classifier()
        inplace_report = prune_classifier_inplace(inplace, 0.7)
        assert inplace_report.achieved_sparsity == copy_report.achieved_sparsity
        for (_, a), (_, b) in zip(
            pruned_copy.network.named_parameters(),
            inplace.network.named_parameters(),
        ):
            np.testing.assert_array_equal(a.data, b.data)

    def test_inplace_prune_invalidates_the_cached_plan(self):
        import numpy as np

        from repro.compression.pruning import prune_classifier_inplace

        classifier = self._classifier()
        windows = np.random.default_rng(0).standard_normal((2, 4, 50))
        classifier.predict_proba(windows)
        stale = classifier.ensure_compiled()
        prune_classifier_inplace(classifier, 0.5)
        assert classifier._compiled is None
        classifier.predict_proba(windows)
        assert classifier.ensure_compiled() is not stale

    def test_inplace_prune_requires_built_network(self):
        import pytest

        from repro.compression.pruning import prune_classifier_inplace
        from repro.models.lstm_model import EEGLSTM, LSTMConfig

        with pytest.raises(ValueError):
            prune_classifier_inplace(EEGLSTM(LSTMConfig(hidden_size=8)), 0.5)
