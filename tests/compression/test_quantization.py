"""Tests for post-training quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.quantization import (
    dequantize,
    quantize_classifier,
    quantize_module,
    quantize_tensor,
)
from repro.models.base import TrainingConfig
from repro.models.cnn import CNNConfig, EEGCNN
from repro.nn.layers import Dense
from repro.nn.module import Sequential
from tests.helpers import make_toy_dataset


class TestQuantizeTensor:
    def test_round_trip_error_bounded_by_half_scale(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal((20, 20))
        q = quantize_tensor(values, bits=8)
        restored = dequantize(q)
        assert np.abs(restored - values).max() <= q.scale / 2 + 1e-12

    def test_lower_bits_larger_error(self):
        rng = np.random.default_rng(1)
        values = rng.standard_normal(500)
        err8 = np.abs(dequantize(quantize_tensor(values, 8)) - values).mean()
        err4 = np.abs(dequantize(quantize_tensor(values, 4)) - values).mean()
        assert err4 > err8

    def test_zero_tensor_handled(self):
        q = quantize_tensor(np.zeros(10), bits=8)
        np.testing.assert_allclose(dequantize(q), np.zeros(10))

    def test_storage_size_accounts_for_bits(self):
        q8 = quantize_tensor(np.ones(100), bits=8)
        q4 = quantize_tensor(np.ones(100), bits=4)
        assert q8.nbytes == 100
        assert q4.nbytes == 50

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            quantize_tensor(np.ones(4), bits=1)
        with pytest.raises(ValueError):
            quantize_tensor(np.ones(4), bits=32)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        bits=st.integers(min_value=4, max_value=12),
    )
    def test_property_quantized_values_within_range(self, seed, bits):
        rng = np.random.default_rng(seed)
        values = rng.standard_normal(64) * rng.uniform(0.01, 100)
        q = quantize_tensor(values, bits=bits)
        q_max = 2 ** (bits - 1) - 1
        assert q.values.max() <= q_max
        assert q.values.min() >= -q_max - 1


class TestQuantizeModule:
    def test_per_tensor_report_compression_ratio(self):
        model = Sequential(Dense(16, 16, seed=0), Dense(16, 4, seed=1))
        report = quantize_module(model, bits=8)
        # float64 -> int8 is an 8x storage reduction.
        assert report.compression_ratio == pytest.approx(8.0, rel=0.01)
        assert report.mean_absolute_error >= 0.0

    def test_global_scheme_produces_larger_error(self):
        model_a = Sequential(Dense(16, 16, seed=2), Dense(16, 4, seed=3))
        model_b = Sequential(Dense(16, 16, seed=2), Dense(16, 4, seed=3))
        # Give the two layers very different weight scales.
        for model in (model_a, model_b):
            model.layers[0].weight.data *= 100.0
        per_tensor = quantize_module(model_a, bits=8, scheme="per_tensor")
        global_scale = quantize_module(model_b, bits=8, scheme="global")
        assert global_scale.mean_absolute_error > per_tensor.mean_absolute_error

    def test_invalid_scheme_rejected(self):
        with pytest.raises(ValueError):
            quantize_module(Sequential(Dense(4, 4)), scheme="per_channel")


class TestQuantizeClassifier:
    @pytest.fixture(scope="class")
    def fitted_cnn(self):
        dataset = make_toy_dataset(n_per_class=12, window_size=40)
        model = EEGCNN(
            CNNConfig(filters=(8,), kernel_size=3, stride=2, hidden_units=16),
            training=TrainingConfig(epochs=8, batch_size=16, learning_rate=1e-2),
            seed=0,
        )
        model.fit(dataset, dataset)
        return model, dataset

    def test_returns_copy(self, fitted_cnn):
        model, _ = fitted_cnn
        quantized, report = quantize_classifier(model, bits=8)
        assert quantized is not model
        assert report.bits == 8

    def test_8bit_per_tensor_accuracy_close_to_original(self, fitted_cnn):
        model, dataset = fitted_cnn
        quantized, _ = quantize_classifier(model, bits=8, scheme="per_tensor")
        assert quantized.evaluate(dataset) >= model.evaluate(dataset) - 0.2

    def test_2bit_quantization_degrades_accuracy_more_than_8bit(self, fitted_cnn):
        model, dataset = fitted_cnn
        q8, _ = quantize_classifier(model, bits=8)
        q2, _ = quantize_classifier(model, bits=2)
        assert q2.evaluate(dataset) <= q8.evaluate(dataset) + 0.05

    def test_unfitted_classifier_rejected(self):
        with pytest.raises(ValueError):
            quantize_classifier(EEGCNN(), bits=8)
