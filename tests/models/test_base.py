"""Tests for the shared classifier interface and training loop."""

import numpy as np
import pytest

from repro.models.base import TrainingConfig, TrainingHistory, normalize_windows
from repro.models.cnn import CNNConfig, EEGCNN
from tests.helpers import make_toy_dataset


class TestNormalizeWindows:
    def test_zero_mean_unit_std_per_window(self):
        rng = np.random.default_rng(0)
        windows = rng.standard_normal((5, 3, 40)) * 7 + 2
        normalized = normalize_windows(windows)
        np.testing.assert_allclose(normalized.mean(axis=(1, 2)), 0.0, atol=1e-9)
        np.testing.assert_allclose(normalized.std(axis=(1, 2)), 1.0, atol=1e-9)

    def test_between_channel_power_ratio_preserved(self):
        rng = np.random.default_rng(1)
        window = np.stack([3.0 * rng.standard_normal(100), rng.standard_normal(100)])
        normalized = normalize_windows(window[None])[0]
        ratio_before = window[0].std() / window[1].std()
        ratio_after = normalized[0].std() / normalized[1].std()
        assert ratio_after == pytest.approx(ratio_before, rel=1e-9)

    def test_constant_channel_does_not_divide_by_zero(self):
        windows = np.ones((1, 2, 10))
        normalized = normalize_windows(windows)
        assert np.isfinite(normalized).all()

    def test_wrong_rank_rejected(self):
        with pytest.raises(ValueError):
            normalize_windows(np.zeros((3, 4)))

    def test_float32_input_stays_float32(self):
        windows = np.random.default_rng(2).standard_normal((4, 3, 20)).astype(np.float32)
        normalized = normalize_windows(windows)
        assert normalized.dtype == np.float32
        np.testing.assert_allclose(normalized.mean(axis=(1, 2)), 0.0, atol=1e-6)

    def test_float64_input_stays_float64(self):
        windows = np.random.default_rng(3).standard_normal((2, 3, 20))
        assert normalize_windows(windows).dtype == np.float64

    def test_integer_input_promoted_to_float64(self):
        windows = np.arange(60, dtype=np.int64).reshape(1, 3, 20)
        normalized = normalize_windows(windows)
        assert normalized.dtype == np.float64
        np.testing.assert_allclose(normalized.mean(), 0.0, atol=1e-12)

    def test_explicit_dtype_parameter(self):
        windows = np.random.default_rng(4).standard_normal((2, 3, 20))
        assert normalize_windows(windows, dtype=np.float32).dtype == np.float32

    def test_float32_statistics_match_float64_closely(self):
        windows = np.random.default_rng(5).standard_normal((3, 4, 50)) * 5 + 1
        reference = normalize_windows(windows)
        low_precision = normalize_windows(windows.astype(np.float32))
        np.testing.assert_allclose(low_precision, reference, atol=1e-5)


class TestTrainingHistory:
    def test_best_val_accuracy_empty_is_zero(self):
        assert TrainingHistory().best_val_accuracy == 0.0

    def test_diverged_detects_rising_validation_loss(self):
        history = TrainingHistory(val_loss=[1.0, 0.5, 0.9, 1.2])
        assert history.diverged()

    def test_not_diverged_when_improving(self):
        history = TrainingHistory(val_loss=[1.0, 0.8, 0.6, 0.55])
        assert not history.diverged()

    def test_short_history_not_diverged(self):
        assert not TrainingHistory(val_loss=[1.0]).diverged()


class TestNeuralClassifierContract:
    @pytest.fixture(scope="class")
    def trained_cnn(self):
        dataset = make_toy_dataset(n_per_class=15, window_size=40)
        model = EEGCNN(
            CNNConfig(filters=(4,), kernel_size=3, stride=2, hidden_units=8),
            training=TrainingConfig(epochs=6, batch_size=16, learning_rate=5e-3),
            seed=0,
        )
        model.fit(dataset, dataset)
        return model, dataset

    def test_fit_populates_history(self, trained_cnn):
        model, _ = trained_cnn
        assert len(model.history.train_loss) >= 1
        assert len(model.history.val_accuracy) >= 1

    def test_predict_proba_rows_sum_to_one(self, trained_cnn):
        model, dataset = trained_cnn
        probs = model.predict_proba(dataset.windows[:5])
        assert probs.shape == (5, 3)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), atol=1e-9)

    def test_predict_single_window_2d_input(self, trained_cnn):
        model, dataset = trained_cnn
        probs = model.predict_proba(dataset.windows[0])
        assert probs.shape == (1, 3)

    def test_evaluate_returns_fraction(self, trained_cnn):
        model, dataset = trained_cnn
        acc = model.evaluate(dataset)
        assert 0.0 <= acc <= 1.0

    def test_inference_latency_positive(self, trained_cnn):
        model, dataset = trained_cnn
        assert model.inference_latency_s(dataset.windows[:2], repeats=2) > 0.0

    def test_parameter_count_positive(self, trained_cnn):
        model, _ = trained_cnn
        assert model.parameter_count() > 0

    def test_predict_before_fit_raises(self):
        model = EEGCNN()
        with pytest.raises(RuntimeError):
            model.predict_proba(np.zeros((1, 4, 40)))

    def test_fit_empty_dataset_rejected(self):
        dataset = make_toy_dataset(n_per_class=2).subset([])
        with pytest.raises(ValueError):
            EEGCNN().fit(dataset)

    def test_describe_reports_family_and_parameters(self, trained_cnn):
        model, _ = trained_cnn
        info = model.describe()
        assert info["family"] == "cnn"
        assert info["parameters"] == model.parameter_count()

    def test_invalid_class_count_rejected(self):
        with pytest.raises(ValueError):
            EEGCNN(n_classes=1)
