"""Tests for the from-scratch decision tree and random forest."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.features import STATISTICAL_FEATURES, extract_features, feature_names
from repro.models.random_forest import (
    DecisionTreeClassifier,
    RandomForestClassifier,
    RandomForestConfig,
)
from tests.helpers import make_toy_dataset


class TestFeatures:
    def test_feature_matrix_shape_without_band_power(self):
        windows = np.random.default_rng(0).standard_normal((6, 4, 30))
        features = extract_features(windows, include_band_power=False)
        assert features.shape == (6, 4 * len(STATISTICAL_FEATURES))

    def test_feature_matrix_shape_with_band_power(self):
        windows = np.random.default_rng(0).standard_normal((3, 2, 64))
        features = extract_features(windows, include_band_power=True)
        assert features.shape == (3, 2 * 5 + 2 * 5)

    def test_single_window_promoted(self):
        features = extract_features(np.zeros((2, 30)), include_band_power=False)
        assert features.shape == (1, 10)

    def test_wrong_rank_rejected(self):
        with pytest.raises(ValueError):
            extract_features(np.zeros(10))

    def test_feature_names_match_column_count(self):
        windows = np.random.default_rng(0).standard_normal((2, 3, 32))
        features = extract_features(windows, include_band_power=True)
        assert len(feature_names(3, include_band_power=True)) == features.shape[1]

    def test_statistics_computed_correctly(self):
        window = np.array([[[1.0, 2.0, 3.0, 4.0]]])
        features = extract_features(window, include_band_power=False)[0]
        assert features[0] == pytest.approx(2.5)  # mean
        assert features[2] == pytest.approx(1.0)  # min
        assert features[3] == pytest.approx(4.0)  # max


class TestDecisionTree:
    def test_fits_separable_data_perfectly(self):
        rng = np.random.default_rng(0)
        x = np.vstack([rng.normal(-2, 0.3, (30, 2)), rng.normal(2, 0.3, (30, 2))])
        y = np.array([0] * 30 + [1] * 30)
        tree = DecisionTreeClassifier(seed=0)
        tree.fit(x, y)
        assert (tree.predict(x) == y).mean() == pytest.approx(1.0)

    def test_max_depth_limits_tree(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((100, 3))
        y = (x[:, 0] * x[:, 1] > 0).astype(int)
        shallow = DecisionTreeClassifier(max_depth=2, seed=0).fit(x, y)
        deep = DecisionTreeClassifier(max_depth=10, seed=0).fit(x, y)
        assert shallow.depth() <= 2
        assert deep.node_count() >= shallow.node_count()

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_invalid_inputs_rejected(self):
        tree = DecisionTreeClassifier()
        with pytest.raises(ValueError):
            tree.fit(np.zeros((3,)), np.zeros(3))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((3, 2)), np.zeros(2))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((0, 2)), np.zeros(0))

    def test_pure_node_becomes_leaf(self):
        x = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTreeClassifier().fit(x, y)
        assert tree.node_count() == 1

    def test_probabilities_sum_to_one(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((50, 4))
        y = rng.integers(0, 3, 50)
        tree = DecisionTreeClassifier(max_depth=4, seed=1).fit(x, y)
        probs = tree.predict_proba(x)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(50))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_property_training_accuracy_not_worse_than_majority(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((40, 3))
        y = rng.integers(0, 2, 40)
        tree = DecisionTreeClassifier(max_depth=6, seed=seed).fit(x, y)
        majority = max(np.bincount(y)) / 40
        assert (tree.predict(x) == y).mean() >= majority - 1e-9


class TestRandomForestConfig:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            RandomForestConfig(n_estimators=0)
        with pytest.raises(ValueError):
            RandomForestConfig(max_depth=0)
        with pytest.raises(ValueError):
            RandomForestConfig(min_samples_split=1)
        with pytest.raises(ValueError):
            RandomForestConfig(min_samples_leaf=0)


class TestRandomForest:
    @pytest.fixture(scope="class")
    def trained(self):
        dataset = make_toy_dataset(n_per_class=20, window_size=40)
        model = RandomForestClassifier(
            RandomForestConfig(n_estimators=12, max_depth=8, include_band_power=True),
            seed=0,
        )
        model.fit(dataset, dataset)
        return model, dataset

    def test_learns_toy_problem(self, trained):
        model, dataset = trained
        assert model.evaluate(dataset) > 0.8

    def test_parameter_count_counts_nodes(self, trained):
        model, _ = trained
        assert model.parameter_count() == sum(t.node_count() for t in model.trees)
        assert model.parameter_count() > 0

    def test_predict_proba_shape_and_normalisation(self, trained):
        model, dataset = trained
        probs = model.predict_proba(dataset.windows[:4])
        assert probs.shape == (4, 3)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4), atol=1e-9)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict_proba(np.zeros((1, 4, 40)))

    def test_describe_reports_forest_shape(self, trained):
        model, _ = trained
        info = model.describe()
        assert info["n_estimators"] == 12
        assert info["family"] == "rf"

    def test_more_trees_never_decreases_training_accuracy_much(self):
        dataset = make_toy_dataset(n_per_class=15, window_size=40, seed=3)
        small = RandomForestClassifier(RandomForestConfig(n_estimators=2, max_depth=6), seed=1)
        big = RandomForestClassifier(RandomForestConfig(n_estimators=16, max_depth=6), seed=1)
        small.fit(dataset)
        big.fit(dataset)
        assert big.evaluate(dataset) >= small.evaluate(dataset) - 0.1
