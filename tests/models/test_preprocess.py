"""Tests for the zero-allocation preprocessing chain (models.preprocess).

The contract under test: the ``out=`` paths of ``normalize_windows`` and
``prepare_windows`` and the :class:`PreprocessArena` that composes them are
**bit-for-bit** the allocating implementations — not merely close — while
performing zero window-sized allocations in steady state.
"""

import gc
import tracemalloc

import numpy as np
import pytest

from repro.models.base import normalize_windows
from repro.models.preprocess import (
    LAYOUTS,
    PreprocessArena,
    prepare_windows,
    prepared_window_shape,
    validate_prepare_spec,
)


def _raw(n=7, channels=8, samples=130, seed=0, dtype=np.float32):
    return (
        np.random.default_rng(seed)
        .standard_normal((n, channels, samples))
        .astype(dtype)
    )


def _steady_peak(call, warm=3):
    """Tracemalloc peak of one steady-state ``call``."""
    for _ in range(warm):
        call()
    gc.collect()
    tracemalloc.start()
    try:
        call()
        call()
        tracemalloc.reset_peak()
        before = tracemalloc.get_traced_memory()[0]
        call()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak - before


class TestPreparedWindowShape:
    def test_matches_prepare_windows_for_every_geometry(self):
        for pool in (1, 5):
            for layout in LAYOUTS:
                raw = _raw(n=3, samples=23)
                expected = prepare_windows(raw, pool=pool, layout=layout).shape
                assert prepared_window_shape(raw.shape, pool, layout) == expected

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            prepared_window_shape((3, 4), 1, "time-major")
        with pytest.raises(ValueError):
            prepared_window_shape((3, 4, 10), 0, "time-major")
        with pytest.raises(ValueError):
            prepared_window_shape((3, 4, 10), 1, "row-major")


class TestNormalizeWindowsOutPath:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("batch", [1, 7, 64])
    def test_out_path_is_bit_for_bit_the_allocating_path(self, dtype, batch):
        raw = _raw(n=batch, dtype=dtype, seed=batch)
        out = np.empty(raw.shape, dtype=dtype)
        result = normalize_windows(raw, out=out)
        assert result is out
        assert np.array_equal(out, normalize_windows(raw))

    def test_constant_channel_guard_matches(self):
        raw = _raw(n=2, seed=5)
        raw[0] = 3.25  # zero variance: the 1e-12 floor engages
        out = np.empty(raw.shape, dtype=raw.dtype)
        normalize_windows(raw, out=out)
        assert np.array_equal(out, normalize_windows(raw))

    def test_out_shape_and_dtype_validated(self):
        raw = _raw(n=2)
        with pytest.raises(ValueError):
            normalize_windows(raw, out=np.empty((3,) + raw.shape[1:], np.float32))
        with pytest.raises(ValueError):
            normalize_windows(raw, out=np.empty(raw.shape, np.float64))

    def test_scratch_shape_validated(self):
        raw = _raw(n=2)
        out = np.empty(raw.shape, dtype=raw.dtype)
        with pytest.raises(ValueError):
            normalize_windows(
                raw, out=out, scratch=np.empty(raw.shape, np.float32)
            )


class TestPrepareWindowsOutPath:
    @pytest.mark.parametrize("pool", [1, 5])
    @pytest.mark.parametrize("layout", LAYOUTS)
    @pytest.mark.parametrize("batch", [1, 7, 64])
    def test_out_path_is_bit_for_bit_the_allocating_path(self, pool, layout, batch):
        raw = _raw(n=batch, seed=batch + pool)
        out = np.empty(
            prepared_window_shape(raw.shape, pool, layout), dtype=raw.dtype
        )
        result = prepare_windows(raw, pool=pool, layout=layout, out=out)
        assert result is out
        assert np.array_equal(out, prepare_windows(raw, pool=pool, layout=layout))

    def test_integer_input_rejected_on_the_out_path(self):
        raw = np.ones((2, 4, 10), dtype=np.int64)
        out = np.empty((2, 10, 4), dtype=np.float64)
        with pytest.raises(ValueError, match="floating"):
            prepare_windows(raw, out=out)

    def test_wrong_out_geometry_rejected(self):
        raw = _raw(n=2)
        with pytest.raises(ValueError):
            prepare_windows(raw, out=np.empty((2, 4, 4), dtype=raw.dtype))


class TestPreprocessArena:
    @pytest.mark.parametrize("pool", [1, 5])
    @pytest.mark.parametrize("layout", LAYOUTS)
    @pytest.mark.parametrize("batch", [1, 7, 64])
    def test_prepare_is_bit_for_bit_the_generic_chain(self, pool, layout, batch):
        raw = _raw(n=batch, seed=batch * 3 + pool)
        arena = PreprocessArena(raw.shape, pool=pool, layout=layout)
        prepared = arena.prepare(raw)
        generic = prepare_windows(normalize_windows(raw), pool=pool, layout=layout)
        assert np.array_equal(np.asarray(prepared), generic)
        assert arena.calls == 1

    @pytest.mark.parametrize("pool", [1, 5])
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_steady_state_prepares_with_no_window_sized_allocations(
        self, pool, layout
    ):
        raw = _raw(n=32, seed=9)  # the raw batch alone is >1 MB
        arena = PreprocessArena(raw.shape, pool=pool, layout=layout)
        peak = _steady_peak(lambda: arena.prepare(raw))
        assert peak < 16 * 1024, f"arena prepare peaked at {peak}B"

    def test_shape_and_dtype_are_enforced(self):
        arena = PreprocessArena((4, 8, 130))
        with pytest.raises(ValueError):
            arena.prepare(_raw(n=5))
        with pytest.raises(ValueError):
            arena.prepare(_raw(n=4, dtype=np.float64))

    def test_non_floating_dtype_rejected(self):
        with pytest.raises(ValueError):
            PreprocessArena((4, 8, 130), dtype=np.int32)

    def test_scratch_bytes_counts_held_buffers_once(self):
        pooled = PreprocessArena((4, 8, 130), pool=5)
        plain = PreprocessArena((4, 8, 130), pool=1)
        # pool=1 standardises straight into the prepared base; pool>1 holds
        # an extra full-resolution normalised buffer (its square scratch is
        # an aliased view, never counted).
        assert plain.scratch_nbytes < pooled.scratch_nbytes
        assert pooled.scratch_nbytes == (
            pooled.prepared.nbytes
            + pooled._stats64.nbytes
            + pooled._normalized.nbytes
        )

    def test_prepared_is_arena_owned_and_overwritten(self):
        raw_a = _raw(n=3, seed=10)
        raw_b = _raw(n=3, seed=11)
        arena = PreprocessArena(raw_a.shape, pool=5)
        first = arena.prepare(raw_a)
        held = np.asarray(first).copy()
        second = arena.prepare(raw_b)
        assert second is first  # same buffer...
        assert not np.array_equal(np.asarray(first), held)  # ...new contents


class TestValidatePrepareSpec:
    def test_normalizes_defaults(self):
        assert validate_prepare_spec({}) == {"pool": 1, "layout": "time-major"}

    def test_rejects_unknown_keys_and_bad_values(self):
        with pytest.raises(ValueError):
            validate_prepare_spec({"pool": 1, "stride": 2})
        with pytest.raises(ValueError):
            validate_prepare_spec({"pool": 0})
        with pytest.raises(ValueError):
            validate_prepare_spec({"layout": "row-major"})
        with pytest.raises(ValueError):
            validate_prepare_spec([("pool", 1)])
