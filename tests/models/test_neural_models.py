"""Tests for the CNN, LSTM and Transformer EEG classifiers."""

import numpy as np
import pytest

from repro.models.base import TrainingConfig
from repro.models.cnn import CNNConfig, EEGCNN
from repro.models.lstm_model import EEGLSTM, LSTMConfig
from repro.models.transformer_model import EEGTransformer, TransformerConfig
from tests.helpers import make_toy_dataset

FAST_TRAINING = TrainingConfig(epochs=6, batch_size=16, learning_rate=5e-3)


@pytest.fixture(scope="module")
def dataset():
    return make_toy_dataset(n_per_class=15, window_size=40)


class TestCNNConfig:
    def test_defaults_match_paper_selection(self):
        cfg = CNNConfig()
        assert cfg.n_conv_layers == 1
        assert cfg.filters[0] == 32
        assert cfg.kernel_size == 5
        assert cfg.stride == 2

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            CNNConfig(n_conv_layers=0)
        with pytest.raises(ValueError):
            CNNConfig(n_conv_layers=2, filters=(8,))
        with pytest.raises(ValueError):
            CNNConfig(pooling="median")
        with pytest.raises(ValueError):
            CNNConfig(kernel_size=7)
        with pytest.raises(ValueError):
            CNNConfig(stride=3)


class TestCNN:
    def test_learns_toy_problem(self, dataset):
        model = EEGCNN(
            CNNConfig(filters=(8,), kernel_size=3, stride=2, hidden_units=16),
            training=TrainingConfig(epochs=12, batch_size=16, learning_rate=1e-2),
            seed=1,
        )
        model.fit(dataset, dataset)
        assert model.evaluate(dataset) > 0.7

    def test_multi_layer_with_pooling_builds(self, dataset):
        model = EEGCNN(
            CNNConfig(
                n_conv_layers=2,
                filters=(4, 8),
                kernel_size=3,
                stride=1,
                pooling="max",
                hidden_units=8,
            ),
            training=TrainingConfig(epochs=1, batch_size=16),
            seed=2,
        )
        model.fit(dataset)
        assert model.predict(dataset.windows[:3]).shape == (3,)

    def test_avg_pooling_variant(self, dataset):
        model = EEGCNN(
            CNNConfig(filters=(4,), kernel_size=3, stride=1, pooling="avg", hidden_units=8),
            training=TrainingConfig(epochs=1, batch_size=16),
        )
        model.fit(dataset)
        assert model.parameter_count() > 0

    def test_describe_includes_architecture(self):
        model = EEGCNN(CNNConfig(filters=(16,), kernel_size=3))
        model.ensure_network(4, 40)
        info = model.describe()
        assert info["kernel_size"] == 3
        assert info["filters"] == (16,)


class TestLSTM:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            LSTMConfig(hidden_size=0)
        with pytest.raises(ValueError):
            LSTMConfig(num_layers=4)
        with pytest.raises(ValueError):
            LSTMConfig(dropout=1.0)
        with pytest.raises(ValueError):
            LSTMConfig(temporal_pool=0)

    def test_learns_toy_problem(self, dataset):
        model = EEGLSTM(
            LSTMConfig(hidden_size=16, num_layers=1, temporal_pool=5),
            training=TrainingConfig(epochs=8, batch_size=16, learning_rate=1e-2),
            seed=3,
        )
        model.fit(dataset, dataset)
        assert model.evaluate(dataset) > 0.6

    def test_temporal_pool_shortens_sequence(self):
        model = EEGLSTM(LSTMConfig(hidden_size=8, temporal_pool=10))
        prepared = model.prepare_input(np.zeros((2, 4, 45)))
        assert prepared.shape == (2, 4, 4)

    def test_parameter_count_grows_with_hidden_size(self):
        small = EEGLSTM(LSTMConfig(hidden_size=8))
        big = EEGLSTM(LSTMConfig(hidden_size=32))
        small.ensure_network(4, 40)
        big.ensure_network(4, 40)
        assert big.parameter_count() > small.parameter_count()

    def test_describe_includes_hidden_size(self):
        model = EEGLSTM(LSTMConfig(hidden_size=8))
        model.ensure_network(4, 40)
        assert model.describe()["hidden_size"] == 8


class TestTransformer:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TransformerConfig(num_layers=0)
        with pytest.raises(ValueError):
            TransformerConfig(d_model=10, n_heads=3)
        with pytest.raises(ValueError):
            TransformerConfig(dropout=1.2)
        with pytest.raises(ValueError):
            TransformerConfig(temporal_pool=0)

    def test_default_optimizer_is_adamw(self):
        model = EEGTransformer()
        assert model.training_config.optimizer == "adamw"

    def test_learns_toy_problem(self, dataset):
        model = EEGTransformer(
            TransformerConfig(num_layers=1, n_heads=2, d_model=16, dim_feedforward=32,
                              dropout=0.0, temporal_pool=5),
            training=TrainingConfig(epochs=8, batch_size=16, learning_rate=5e-3,
                                    optimizer="adamw"),
            seed=4,
        )
        model.fit(dataset, dataset)
        assert model.evaluate(dataset) > 0.6

    def test_prepared_input_has_token_layout(self):
        model = EEGTransformer(TransformerConfig(d_model=16, n_heads=2, temporal_pool=5))
        prepared = model.prepare_input(np.zeros((3, 4, 50)))
        assert prepared.shape == (3, 10, 4)

    def test_describe_includes_architecture(self):
        model = EEGTransformer(TransformerConfig(num_layers=2, n_heads=2, d_model=16,
                                                 dim_feedforward=32))
        model.ensure_network(4, 40)
        info = model.describe()
        assert info["num_layers"] == 2
        assert info["d_model"] == 16
