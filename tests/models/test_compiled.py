"""Compiled-vs-autograd equivalence and plan lifecycle for the model zoo."""

import numpy as np
import pytest

from repro.compression.quantization import (
    compile_quantized_plan,
    quantize_classifier,
)
from repro.models.base import TrainingConfig
from repro.models.cnn import CNNConfig, EEGCNN
from repro.models.compiled import CompiledClassifier, compile_classifier
from repro.models.lstm_model import EEGLSTM, LSTMConfig
from repro.models.transformer_model import EEGTransformer, TransformerConfig
from tests.helpers import make_toy_dataset

N_CHANNELS = 4
WINDOW = 50


def _families():
    return [
        (
            "cnn",
            EEGCNN(
                CNNConfig(
                    n_conv_layers=2,
                    filters=(6, 8),
                    kernel_size=3,
                    stride=1,
                    pooling="max",
                    hidden_units=12,
                ),
                seed=1,
            ),
        ),
        ("lstm", EEGLSTM(LSTMConfig(hidden_size=24, num_layers=2), seed=2)),
        (
            "transformer",
            EEGTransformer(
                TransformerConfig(
                    num_layers=2, n_heads=2, d_model=16, dim_feedforward=32
                ),
                seed=3,
            ),
        ),
    ]


@pytest.fixture(params=_families(), ids=lambda p: p[0])
def built_classifier(request):
    _, classifier = request.param
    classifier.ensure_network(N_CHANNELS, WINDOW)
    return classifier


class TestEquivalence:
    @pytest.mark.parametrize("batch", [1, 7, 64])
    def test_compiled_matches_autograd_random_weights(self, built_classifier, batch):
        windows = np.random.default_rng(batch).standard_normal(
            (batch, N_CHANNELS, WINDOW)
        )
        compiled = built_classifier.predict_proba(windows)
        assert built_classifier.ensure_compiled() is not None  # plan path taken
        oracle = built_classifier.predict_proba_autograd(windows)
        assert compiled.shape == oracle.shape == (batch, built_classifier.n_classes)
        np.testing.assert_allclose(compiled, oracle, atol=1e-5)

    def test_single_2d_window_accepted(self, built_classifier):
        window = np.random.default_rng(0).standard_normal((N_CHANNELS, WINDOW))
        probs = built_classifier.predict_proba(window)
        assert probs.shape == (1, built_classifier.n_classes)

    def test_rows_sum_to_one_at_float64_resolution(self, built_classifier):
        windows = np.random.default_rng(1).standard_normal((9, N_CHANNELS, WINDOW))
        probs = built_classifier.predict_proba(windows)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(9), atol=1e-9)

    def test_float32_windows_accepted(self, built_classifier):
        windows = (
            np.random.default_rng(2)
            .standard_normal((3, N_CHANNELS, WINDOW))
            .astype(np.float32)
        )
        compiled = built_classifier.predict_proba(windows)
        oracle = built_classifier.predict_proba_autograd(windows)
        np.testing.assert_allclose(compiled, oracle, atol=1e-5)


class TestQuantizedPlan:
    @pytest.mark.parametrize("scheme", ["per_tensor", "global"])
    def test_int8_plan_matches_dequantized_module_oracle(
        self, built_classifier, scheme
    ):
        windows = np.random.default_rng(3).standard_normal((5, N_CHANNELS, WINDOW))
        oracle_clf, _ = quantize_classifier(built_classifier, bits=8, scheme=scheme)
        plan = compile_quantized_plan(built_classifier, bits=8, scheme=scheme)
        np.testing.assert_allclose(
            plan.predict_proba(windows),
            oracle_clf.predict_proba_autograd(windows),
            atol=1e-5,
        )

    def test_int8_plan_stores_integer_weights(self, built_classifier):
        plan = compile_quantized_plan(built_classifier, bits=8)
        float_plan = built_classifier.ensure_compiled()
        assert plan.nbytes < float_plan.nbytes / 3  # int8 vs float32 storage

    def test_quantized_copy_does_not_serve_stale_plan(self, built_classifier):
        windows = np.random.default_rng(4).standard_normal((2, N_CHANNELS, WINDOW))
        built_classifier.predict_proba(windows)  # populate the cached plan
        quantized, _ = quantize_classifier(built_classifier, bits=4)
        np.testing.assert_allclose(
            quantized.predict_proba(windows),
            quantized.predict_proba_autograd(windows),
            atol=1e-5,
        )


class TestPlanLifecycle:
    def test_fit_invalidates_cached_plan(self):
        dataset = make_toy_dataset(n_per_class=10, window_size=40)
        model = EEGCNN(
            CNNConfig(filters=(4,), kernel_size=3, stride=2, hidden_units=8),
            training=TrainingConfig(epochs=2, batch_size=16),
            seed=0,
        )
        model.ensure_network(dataset.n_channels, dataset.window_size)
        stale = model.ensure_compiled()
        model.fit(dataset, dataset)
        fresh = model.ensure_compiled()
        assert fresh is not stale
        np.testing.assert_allclose(
            model.predict_proba(dataset.windows[:4]),
            model.predict_proba_autograd(dataset.windows[:4]),
            atol=1e-5,
        )

    def test_use_compiled_inference_false_forces_autograd(self):
        model = EEGLSTM(LSTMConfig(hidden_size=8), seed=0)
        model.ensure_network(N_CHANNELS, WINDOW)
        model.use_compiled_inference = False
        assert model.ensure_compiled() is None
        windows = np.random.default_rng(5).standard_normal((2, N_CHANNELS, WINDOW))
        probs = model.predict_proba(windows)
        assert probs.shape == (2, 3)

    def test_compile_requires_built_network(self):
        model = EEGLSTM(LSTMConfig(hidden_size=8), seed=0)
        with pytest.raises(RuntimeError):
            compile_classifier(model)

    def test_compiled_classifier_describe(self):
        model = EEGLSTM(LSTMConfig(hidden_size=8), seed=0)
        model.ensure_network(N_CHANNELS, WINDOW)
        compiled = model.ensure_compiled()
        assert isinstance(compiled, CompiledClassifier)
        info = compiled.describe()
        assert info["family"] == "lstm"
        assert info["dtype"] == "float32"
        assert any(k.startswith("lstm") for k in info["kernels"])


class TestWeightSerialization:
    def test_npz_round_trip_serves_identical_probabilities(self, tmp_path):
        model = EEGLSTM(LSTMConfig(hidden_size=12), seed=4)
        model.ensure_network(N_CHANNELS, WINDOW)
        windows = np.random.default_rng(6).standard_normal((3, N_CHANNELS, WINDOW))
        expected = model.predict_proba(windows)
        path = tmp_path / "model.npz"
        model.save_weights(path)

        fresh = EEGLSTM(LSTMConfig(hidden_size=12), seed=99)
        fresh.load_weights(path)
        assert fresh._fitted
        np.testing.assert_allclose(fresh.predict_proba(windows), expected, atol=0)

    def test_load_after_fit_invalidates_plan(self, tmp_path):
        saver = EEGCNN(
            CNNConfig(filters=(4,), kernel_size=3, stride=2, hidden_units=8), seed=1
        )
        saver.ensure_network(N_CHANNELS, WINDOW)
        path = tmp_path / "cnn.npz"
        saver.save_weights(path)

        loader = EEGCNN(
            CNNConfig(filters=(4,), kernel_size=3, stride=2, hidden_units=8), seed=2
        )
        loader.ensure_network(N_CHANNELS, WINDOW)
        windows = np.random.default_rng(7).standard_normal((2, N_CHANNELS, WINDOW))
        before = loader.predict_proba(windows)  # caches a plan for seed-2 weights
        loader.load_weights(path)
        after = loader.predict_proba(windows)
        assert not np.allclose(before, after)  # plan was rebuilt, not stale
        np.testing.assert_allclose(
            after, saver.predict_proba(windows), atol=0
        )

    def test_path_without_npz_suffix_round_trips(self, tmp_path):
        # np.savez appends ".npz" on write; loading must normalise the same
        # way instead of opening the suffix-less path verbatim.
        model = EEGLSTM(LSTMConfig(hidden_size=8), seed=4)
        model.ensure_network(N_CHANNELS, WINDOW)
        model.save_weights(tmp_path / "weights")
        fresh = EEGLSTM(LSTMConfig(hidden_size=8), seed=5)
        fresh.load_weights(tmp_path / "weights")
        windows = np.random.default_rng(8).standard_normal((2, N_CHANNELS, WINDOW))
        np.testing.assert_allclose(
            fresh.predict_proba(windows), model.predict_proba(windows), atol=0
        )

    def test_archive_readable_by_io_storage_loader(self, tmp_path):
        from repro.io.storage import load_model_state

        model = EEGLSTM(LSTMConfig(hidden_size=8), seed=4)
        model.ensure_network(N_CHANNELS, WINDOW)
        path = tmp_path / "shared.npz"
        model.save_weights(path)
        other = EEGLSTM(LSTMConfig(hidden_size=8), seed=6)
        other.ensure_network(N_CHANNELS, WINDOW)
        load_model_state(other, path)  # must skip the embedded __meta__ entry
        windows = np.random.default_rng(9).standard_normal((2, N_CHANNELS, WINDOW))
        np.testing.assert_allclose(
            other.predict_proba(windows), model.predict_proba(windows), atol=0
        )

    def test_io_storage_archive_gives_clear_error(self, tmp_path):
        from repro.io.storage import save_model_state

        model = EEGLSTM(LSTMConfig(hidden_size=8), seed=4)
        model.ensure_network(N_CHANNELS, WINDOW)
        path, _ = save_model_state(model, tmp_path / "plain")
        fresh = EEGLSTM(LSTMConfig(hidden_size=8), seed=5)
        with pytest.raises(ValueError, match="load_model_state"):
            fresh.load_weights(path)

    def test_deepcopy_does_not_carry_compiled_plan(self):
        import copy

        model = EEGLSTM(LSTMConfig(hidden_size=8), seed=4)
        model.ensure_network(N_CHANNELS, WINDOW)
        windows = np.random.default_rng(10).standard_normal((2, N_CHANNELS, WINDOW))
        model.predict_proba(windows)  # cache a plan
        clone = copy.deepcopy(model)
        assert clone._compiled is None
        np.testing.assert_allclose(
            clone.predict_proba(windows), model.predict_proba(windows), atol=0
        )

    def test_family_mismatch_rejected(self, tmp_path):
        lstm = EEGLSTM(LSTMConfig(hidden_size=8), seed=0)
        lstm.ensure_network(N_CHANNELS, WINDOW)
        path = tmp_path / "lstm.npz"
        lstm.save_weights(path)
        cnn = EEGCNN(seed=0)
        with pytest.raises(ValueError):
            cnn.load_weights(path)

    def test_save_requires_network(self, tmp_path):
        model = EEGLSTM(LSTMConfig(hidden_size=8), seed=0)
        with pytest.raises(RuntimeError):
            model.save_weights(tmp_path / "nope.npz")

    def test_load_refreshes_build_geometry(self, tmp_path):
        # LSTM shapes are window-size independent, so an archive saved at
        # window 200 loads into a network built for window 100; re-saving
        # must emit the archive's geometry, not the stale build-time one.
        saver = EEGLSTM(LSTMConfig(hidden_size=8), seed=0)
        saver.ensure_network(N_CHANNELS, 200)
        path = tmp_path / "w200.npz"
        saver.save_weights(path)

        loader = EEGLSTM(LSTMConfig(hidden_size=8), seed=1)
        loader.ensure_network(N_CHANNELS, 100)
        loader.load_weights(path)
        assert loader._build_geometry == (N_CHANNELS, 200)
        resaved = tmp_path / "resaved.npz"
        loader.save_weights(resaved)
        third = EEGLSTM(LSTMConfig(hidden_size=8), seed=2)
        third.load_weights(resaved)
        assert third._build_geometry == (N_CHANNELS, 200)


class TestLegacySubclassFallback:
    def test_prepare_input_only_subclass_serves_via_autograd(self):
        from repro.models.base import NeuralEEGClassifier
        from repro.nn.autograd import Tensor
        from repro.nn.layers import Dense
        from repro.nn.module import Sequential

        class LegacyClassifier(NeuralEEGClassifier):
            """Written to the pre-plan contract: overrides prepare_input only."""

            family = "legacy"

            def build_network(self, n_channels, window_size):
                return Sequential(Dense(n_channels * window_size, 3, seed=0))

            def prepare_input(self, windows):
                arr = np.asarray(windows, dtype=np.float64)
                return Tensor(arr.reshape(arr.shape[0], -1))

        model = LegacyClassifier()
        model.ensure_network(N_CHANNELS, WINDOW)
        assert model.ensure_compiled() is None  # no prepare_array: autograd path
        windows = np.random.default_rng(11).standard_normal((3, N_CHANNELS, WINDOW))
        probs = model.predict_proba(windows)
        assert probs.shape == (3, 3)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(3), atol=1e-9)


class TestPrunedPlans:
    """Sparsity-aware compilation at the classifier level (§III-E1)."""

    def test_pruned_equivalence_at_all_paper_levels(self):
        from repro.compression.pruning import PAPER_PRUNING_LEVELS, prune_classifier
        from repro.nn.inference import SPARSE_ALWAYS

        classifier = EEGLSTM(LSTMConfig(hidden_size=24, num_layers=2), seed=2)
        classifier.ensure_network(N_CHANNELS, WINDOW)
        windows = np.random.default_rng(0).standard_normal((7, N_CHANNELS, WINDOW))
        for ratio in PAPER_PRUNING_LEVELS:
            pruned, _ = prune_classifier(classifier, ratio)
            pruned.plan_sparsity = SPARSE_ALWAYS
            np.testing.assert_allclose(
                pruned.predict_proba(windows),
                pruned.predict_proba_autograd(windows),
                atol=1e-5,
                err_msg=f"pruning ratio {ratio}",
            )

    def test_inplace_prune_invalidates_plan_and_picks_sparse_kernels(self):
        from repro.compression.pruning import prune_classifier_inplace
        from repro.nn.inference import SparsityConfig

        classifier = EEGLSTM(LSTMConfig(hidden_size=24), seed=2)
        classifier.plan_sparsity = SparsityConfig(mode="always", min_size=0)
        classifier.ensure_network(N_CHANNELS, WINDOW)
        windows = np.random.default_rng(1).standard_normal((3, N_CHANNELS, WINDOW))
        classifier.predict_proba(windows)
        dense_plan = classifier.ensure_compiled().plan
        assert not any("sparse" in k for k in dense_plan.describe())
        prune_classifier_inplace(classifier, 0.9)
        assert classifier.ensure_compiled().plan is not dense_plan
        sparse_plan = classifier.ensure_compiled().plan
        assert any("sparse" in k for k in sparse_plan.describe())
        np.testing.assert_allclose(
            classifier.predict_proba(windows),
            classifier.predict_proba_autograd(windows),
            atol=1e-5,
        )

    def test_pruned_copy_compiles_fresh_sparse_plan(self):
        from repro.compression.pruning import prune_classifier
        from repro.nn.inference import SparsityConfig

        classifier = EEGLSTM(LSTMConfig(hidden_size=24), seed=2)
        classifier.plan_sparsity = SparsityConfig(mode="always", min_size=0)
        classifier.ensure_network(N_CHANNELS, WINDOW)
        classifier.predict_proba(
            np.random.default_rng(2).standard_normal((2, N_CHANNELS, WINDOW))
        )
        pruned, _ = prune_classifier(classifier, 0.9)
        assert pruned._compiled is None  # the copy never inherits a plan
        assert any("sparse" in k for k in pruned.ensure_compiled().plan.describe())


class TestClassifierSpecialization:
    @pytest.mark.parametrize("batch", [1, 7, 64])
    def test_specialized_is_bit_for_bit_generic(self, built_classifier, batch):
        windows = np.random.default_rng(batch).standard_normal(
            (batch, N_CHANNELS, WINDOW)
        )
        generic = built_classifier.predict_proba(windows).copy()
        before = built_classifier.specialization_stats()["specialized_calls"]
        assert built_classifier.specialize(batch)
        built_classifier.predict_proba(windows)  # binds the arena
        specialized = built_classifier.predict_proba(windows)
        assert np.array_equal(generic, specialized)
        stats = built_classifier.specialization_stats()
        assert stats["specialized_calls"] == before + 2
        assert stats["scratch_bytes"] > 0

    def test_despecialize_releases_scratch(self, built_classifier):
        windows = np.random.default_rng(5).standard_normal((4, N_CHANNELS, WINDOW))
        built_classifier.despecialize()  # fixture classifiers are shared
        built_classifier.specialize(4)
        built_classifier.predict_proba(windows)
        assert built_classifier.specialization_stats()["arenas"] == 1
        built_classifier.despecialize()
        assert built_classifier.specialization_stats()["arenas"] == 0

    def test_auto_specialization_survives_plan_invalidation(self):
        classifier = EEGLSTM(LSTMConfig(hidden_size=24), seed=2)
        classifier.ensure_network(N_CHANNELS, WINDOW)
        classifier.enable_auto_specialization(streak=1)
        windows = np.random.default_rng(6).standard_normal((3, N_CHANNELS, WINDOW))
        classifier.predict_proba(windows)
        classifier.predict_proba(windows)
        assert classifier.specialization_stats()["specialized_calls"] >= 1
        classifier.invalidate_compiled()
        classifier.predict_proba(windows)
        classifier.predict_proba(windows)
        assert classifier.specialization_stats()["specialized_calls"] >= 1

    def test_specialize_returns_false_for_autograd_only_classifier(self):
        classifier = EEGLSTM(LSTMConfig(hidden_size=24), seed=2)
        classifier.use_compiled_inference = False
        classifier.ensure_network(N_CHANNELS, WINDOW)
        assert not classifier.specialize(4)


class TestPreprocessArenaIntegration:
    """The compiled classifier's raw-window arena mirrors the plan policy."""

    def _classifier(self, seed=3):
        classifier = EEGLSTM(LSTMConfig(hidden_size=24), seed=seed)
        classifier.ensure_network(N_CHANNELS, WINDOW)
        return classifier

    def _windows(self, n, seed=0):
        return (
            np.random.default_rng(seed)
            .standard_normal((n, N_CHANNELS, WINDOW))
            .astype(np.float32)
        )

    def test_arena_follows_the_plan_arena(self):
        classifier = self._classifier()
        compiled = classifier.ensure_compiled()
        windows = self._windows(5)
        classifier.predict_proba(windows)
        assert compiled.specialization_stats()["preprocess_arenas"] == 0
        classifier.specialize(5)
        classifier.predict_proba(windows)  # binds the plan arena
        classifier.predict_proba(windows)  # now the preprocess arena engages
        stats = compiled.specialization_stats()
        assert stats["preprocess_arenas"] == 1
        assert stats["preprocess_scratch_bytes"] > 0

    def test_arena_path_is_bit_for_bit_the_generic_path(self):
        windows = self._windows(6, seed=1)
        generic = self._classifier().predict_proba(windows)
        classifier = self._classifier()
        classifier.specialize(6)
        classifier.predict_proba(windows)
        classifier.predict_proba(windows)
        arena_served = classifier.predict_proba(windows)
        assert np.array_equal(np.asarray(arena_served), np.asarray(generic))

    def test_despecialize_clears_preprocess_arenas(self):
        classifier = self._classifier()
        compiled = classifier.ensure_compiled()
        windows = self._windows(4, seed=2)
        classifier.specialize(4)
        classifier.predict_proba(windows)
        classifier.predict_proba(windows)
        assert compiled.specialization_stats()["preprocess_arenas"] == 1
        classifier.despecialize()
        stats = compiled.specialization_stats()
        assert stats["preprocess_arenas"] == 0
        assert stats["preprocess_scratch_bytes"] == 0

    def test_arena_pool_is_lru_capped(self):
        classifier = self._classifier()
        compiled = classifier.ensure_compiled()
        compiled.plan.enable_auto_specialization(streak=1)
        for n in (2, 3, 4, 5):
            windows = self._windows(n, seed=n)
            for _ in range(4):
                classifier.predict_proba(windows)
        stats = compiled.specialization_stats()
        assert stats["preprocess_arenas"] <= CompiledClassifier.MAX_PREPROCESS_ARENAS

    def test_integer_windows_match_their_float_promotion(self):
        # Integer input is promoted to the plan dtype before the arena check
        # (the cast copy is unavoidable either way), so the arena path must
        # serve it identically to the promoted-float generic path.
        classifier = self._classifier()
        windows = (self._windows(3, seed=4) * 100).astype(np.int64)
        generic = self._classifier().predict_proba(windows.astype(np.float32))
        classifier.specialize(3)
        classifier.predict_proba(windows)
        classifier.predict_proba(windows)
        arena_served = classifier.predict_proba(windows)
        assert np.array_equal(np.asarray(arena_served), np.asarray(generic))
