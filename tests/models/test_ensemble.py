"""Tests for the soft-voting ensemble."""

import numpy as np
import pytest

from repro.dataset.windows import WindowDataset
from repro.models.base import EEGClassifier, TrainingHistory
from repro.models.ensemble import EnsembleClassifier, all_pairs
from tests.helpers import make_toy_dataset


class _StubClassifier(EEGClassifier):
    """Deterministic classifier used to test voting arithmetic."""

    def __init__(self, probabilities, family="stub", parameters=10):
        self._probs = np.asarray(probabilities, dtype=float)
        self.family = family
        self._parameters = parameters
        self.fit_called = False

    def fit(self, train, validation=None):
        self.fit_called = True
        history = TrainingHistory()
        history.train_accuracy.append(1.0)
        history.val_accuracy.append(1.0)
        return history

    def predict_proba(self, windows):
        n = np.asarray(windows).shape[0] if np.asarray(windows).ndim == 3 else 1
        return np.tile(self._probs, (n, 1))

    def parameter_count(self):
        return self._parameters


class TestEnsembleVoting:
    def test_equal_weight_soft_voting(self):
        a = _StubClassifier([0.8, 0.1, 0.1])
        b = _StubClassifier([0.2, 0.7, 0.1])
        ensemble = EnsembleClassifier([a, b])
        probs = ensemble.predict_proba(np.zeros((2, 4, 10)))
        np.testing.assert_allclose(probs, np.tile([0.5, 0.4, 0.1], (2, 1)), atol=1e-9)

    def test_weighted_voting_changes_winner(self):
        a = _StubClassifier([0.8, 0.2, 0.0])
        b = _StubClassifier([0.1, 0.9, 0.0])
        balanced = EnsembleClassifier([a, b])
        biased = EnsembleClassifier([a, b], weights=[0.9, 0.1])
        assert balanced.predict(np.zeros((1, 4, 10)))[0] == 1
        assert biased.predict(np.zeros((1, 4, 10)))[0] == 0

    def test_empty_member_list_rejected(self):
        with pytest.raises(ValueError):
            EnsembleClassifier([])

    def test_bad_weights_rejected(self):
        a = _StubClassifier([1.0, 0.0, 0.0])
        with pytest.raises(ValueError):
            EnsembleClassifier([a], weights=[0.5, 0.5])
        with pytest.raises(ValueError):
            EnsembleClassifier([a], weights=[-1.0])

    def test_parameter_count_sums_members(self):
        a = _StubClassifier([1, 0, 0], parameters=100)
        b = _StubClassifier([0, 1, 0], parameters=50)
        assert EnsembleClassifier([a, b]).parameter_count() == 150

    def test_fit_fits_every_member(self):
        a = _StubClassifier([1, 0, 0])
        b = _StubClassifier([0, 1, 0])
        dataset = make_toy_dataset(n_per_class=3, window_size=20)
        EnsembleClassifier([a, b]).fit(dataset, dataset)
        assert a.fit_called and b.fit_called

    def test_default_name_joins_families(self):
        a = _StubClassifier([1, 0, 0], family="cnn")
        b = _StubClassifier([0, 1, 0], family="transformer")
        assert EnsembleClassifier([a, b]).name == "cnn+transformer"

    def test_describe_lists_members(self):
        a = _StubClassifier([1, 0, 0], family="cnn")
        info = EnsembleClassifier([a], name="solo").describe()
        assert info["name"] == "solo"
        assert info["members"] == ["cnn"]


class TestAllPairs:
    def test_pair_count(self):
        models = {name: _StubClassifier([1, 0, 0], family=name) for name in
                  ("cnn", "lstm", "transformer", "rf")}
        pairs = all_pairs(models)
        assert len(pairs) == 6
        names = [name for name, _ in pairs]
        assert "cnn+lstm" in names
        assert "rf+transformer" in names or "transformer+rf" in names

    def test_pairs_are_ensembles_of_two(self):
        models = {name: _StubClassifier([1, 0, 0], family=name) for name in ("a", "b", "c")}
        for _, ensemble in all_pairs(models):
            assert len(ensemble.members) == 2
