"""Plan transport: payload round-trips, replicas, and a real shard worker.

The payload is the contract that lets ``ProcessShardExecutor`` workers serve
a cohort without the Module tree or autograd: these tests pin that a
``to_payload`` → ``from_payload`` round trip reproduces the in-process plan
to (well under) 1e-12 across every family and the int8 quantized variant,
and that a real worker process serves the same probabilities.
"""

import io

import numpy as np
import pytest

from repro.compression.quantization import compile_quantized_plan
from repro.models.cnn import CNNConfig, EEGCNN
from repro.models.compiled import (
    CompiledClassifier,
    TransportedPreprocessor,
    payload_revision,
)
from repro.models.lstm_model import EEGLSTM, LSTMConfig
from repro.models.transformer_model import EEGTransformer, TransformerConfig
from repro.nn.inference import InferencePlan, Kernel, PlanTransportError
from repro.serving.batcher import PreparedBatch
from repro.serving.executors import ProcessShardExecutor, SerialExecutor
from repro.utils.timing import SYSTEM_CLOCK
from tests.helpers import hard_timeout

N_CHANNELS = 4
WINDOW = 50


def _families():
    return [
        (
            "cnn",
            EEGCNN(
                CNNConfig(
                    n_conv_layers=2,
                    filters=(6, 8),
                    kernel_size=3,
                    stride=1,
                    pooling="max",
                    hidden_units=12,
                ),
                seed=1,
            ),
        ),
        ("lstm", EEGLSTM(LSTMConfig(hidden_size=24, num_layers=2), seed=2)),
        (
            "transformer",
            EEGTransformer(
                TransformerConfig(
                    num_layers=2, n_heads=2, d_model=16, dim_feedforward=32
                ),
                seed=3,
            ),
        ),
    ]


@pytest.fixture(params=_families(), ids=lambda p: p[0])
def built_classifier(request):
    _, classifier = request.param
    classifier.ensure_network(N_CHANNELS, WINDOW)
    return classifier


def _windows(seed=0, n=7):
    return np.random.default_rng(seed).standard_normal((n, N_CHANNELS, WINDOW))


class TestPayloadRoundTrip:
    def test_replica_matches_in_process_plan(self, built_classifier):
        compiled = built_classifier.ensure_compiled()
        replica = CompiledClassifier.from_payload(compiled.to_payload())
        windows = _windows()
        np.testing.assert_allclose(
            replica.predict_proba(windows),
            compiled.predict_proba(windows),
            atol=1e-12,
            rtol=0,
        )

    def test_int8_quantized_replica_matches(self, built_classifier):
        quantized = compile_quantized_plan(built_classifier, bits=8)
        replica = CompiledClassifier.from_payload(quantized.to_payload())
        windows = _windows(seed=1)
        np.testing.assert_allclose(
            replica.predict_proba(windows),
            quantized.predict_proba(windows),
            atol=1e-12,
            rtol=0,
        )
        # Quantized weights ship as integers, not dequantized floats.
        assert replica.nbytes == quantized.nbytes

    def test_replica_is_module_free(self, built_classifier):
        replica = CompiledClassifier.from_payload(
            built_classifier.ensure_compiled().to_payload()
        )
        assert isinstance(replica.classifier, TransportedPreprocessor)
        assert not hasattr(replica.classifier, "network")
        assert replica.classifier.family == built_classifier.family
        assert replica.describe()["kernels"] == (
            built_classifier.ensure_compiled().describe()["kernels"]
        )

    def test_second_round_trip_is_stable(self, built_classifier):
        first = CompiledClassifier.from_payload(
            built_classifier.ensure_compiled().to_payload()
        )
        second = CompiledClassifier.from_payload(first.to_payload())
        windows = _windows(seed=2, n=3)
        np.testing.assert_array_equal(
            first.predict_proba(windows), second.predict_proba(windows)
        )

    def test_payload_is_a_plain_npz_archive(self, built_classifier):
        data = built_classifier.ensure_compiled().to_payload()
        # Same geometry as the weight archives: flat arrays + __meta__, no
        # pickled objects anywhere (allow_pickle stays False).
        with np.load(io.BytesIO(data), allow_pickle=False) as archive:
            assert InferencePlan.META_KEY in archive.files


class TestPlanRevision:
    """Hot-swap correlates plans across processes by revision number: it
    must ride the payload bytes and survive repeated round trips."""

    def test_revision_survives_the_round_trip(self, built_classifier):
        compiled = built_classifier.ensure_compiled()
        stamped = CompiledClassifier(
            compiled.classifier, compiled.plan, revision=7
        )
        data = stamped.to_payload()
        assert payload_revision(data) == 7
        replica = CompiledClassifier.from_payload(data)
        assert replica.revision == 7
        # ...and again: the replica re-emits the same revision.
        assert payload_revision(replica.to_payload()) == 7

    def test_revision_defaults_to_zero(self, built_classifier):
        compiled = built_classifier.ensure_compiled()
        assert compiled.revision == 0
        data = compiled.to_payload()
        assert payload_revision(data) == 0
        assert CompiledClassifier.from_payload(data).revision == 0

    def test_payload_revision_rejects_plan_only_payloads(self):
        model = EEGLSTM(LSTMConfig(hidden_size=8), seed=0)
        model.ensure_network(N_CHANNELS, WINDOW)
        plan_only = model.ensure_compiled().plan.to_payload()
        buffer = io.BytesIO()
        np.savez(buffer, **plan_only)
        with pytest.raises(PlanTransportError, match="classifier metadata"):
            payload_revision(buffer.getvalue())


class TestTransportErrors:
    def test_plan_payload_without_classifier_meta_rejected(self):
        model = EEGLSTM(LSTMConfig(hidden_size=8), seed=0)
        model.ensure_network(N_CHANNELS, WINDOW)
        plan_only = model.ensure_compiled().plan.to_payload()
        buffer = io.BytesIO()
        np.savez(buffer, **plan_only)
        with pytest.raises(PlanTransportError, match="classifier metadata"):
            CompiledClassifier.from_payload(buffer.getvalue())

    def test_classifier_without_prepare_spec_rejected(self):
        model = EEGLSTM(LSTMConfig(hidden_size=8), seed=0)
        model.ensure_network(N_CHANNELS, WINDOW)
        compiled = model.ensure_compiled()
        compiled.classifier.prepare_spec = lambda: None
        with pytest.raises(PlanTransportError, match="prepare_spec"):
            compiled.to_payload()

    def test_unregistered_kernel_type_rejected(self):
        class CustomKernel(Kernel):
            def __call__(self, x):
                return x

        plan = InferencePlan([CustomKernel()])
        with pytest.raises(PlanTransportError, match="CustomKernel"):
            plan.to_payload()

    def test_unknown_payload_format_rejected(self):
        with pytest.raises(PlanTransportError, match="format"):
            InferencePlan.from_payload(
                {InferencePlan.META_KEY: np.asarray('{"format": "bogus"}')}
            )


class TestShardWorkerServesTheReplica:
    def test_worker_process_matches_serial_probabilities(self):
        classifier = EEGLSTM(LSTMConfig(hidden_size=16), seed=5)
        classifier.ensure_network(N_CHANNELS, WINDOW)
        quantized = compile_quantized_plan(classifier, bits=8)
        prepared = PreparedBatch(
            session_ids=["a", "b"],
            windows=_windows(seed=3, n=2),
            chunk_size=2,
        )
        serial = SerialExecutor()
        serial.bind({"float": classifier, "int8": quantized}, SYSTEM_CLOCK)
        executor = ProcessShardExecutor()
        with hard_timeout(240, what="shard-worker transport smoke"):
            executor.bind({"float": classifier, "int8": quantized}, SYSTEM_CLOCK)
            try:
                for cohort in ("float", "int8"):
                    reference = serial.submit_flush(cohort, prepared).result()
                    execution = executor.submit_flush(cohort, prepared).result()
                    np.testing.assert_allclose(
                        execution.probabilities,
                        reference.probabilities,
                        atol=1e-7,
                        rtol=0,
                    )
            finally:
                executor.shutdown()


class TestSparsePayloads:
    def test_pruned_sparse_classifier_round_trips_exactly(self):
        from repro.compression.pruning import prune_classifier
        from repro.nn.inference import SparsityConfig

        classifier = EEGLSTM(LSTMConfig(hidden_size=24), seed=6)
        classifier.ensure_network(N_CHANNELS, WINDOW)
        pruned, _ = prune_classifier(classifier, 0.9)
        pruned.plan_sparsity = SparsityConfig(mode="always", min_size=0)
        compiled = pruned.ensure_compiled()
        assert any("sparse" in k for k in compiled.plan.describe())
        replica = CompiledClassifier.from_payload(compiled.to_payload())
        assert replica.plan.describe() == compiled.plan.describe()
        windows = _windows(seed=11, n=5)
        np.testing.assert_array_equal(
            replica.predict_proba(windows), compiled.predict_proba(windows)
        )

    def test_shard_worker_serves_a_sparse_plan(self):
        from repro.compression.pruning import prune_classifier
        from repro.nn.inference import SparsityConfig

        classifier = EEGLSTM(LSTMConfig(hidden_size=24), seed=7)
        classifier.ensure_network(N_CHANNELS, WINDOW)
        pruned, _ = prune_classifier(classifier, 0.9)
        pruned.plan_sparsity = SparsityConfig(mode="always", min_size=0)
        assert any(
            "sparse" in k for k in pruned.ensure_compiled().plan.describe()
        )
        prepared = PreparedBatch(
            session_ids=["a", "b", "c"],
            windows=_windows(seed=12, n=3),
            chunk_size=3,
        )
        serial = SerialExecutor()
        serial.bind({"sparse": pruned}, SYSTEM_CLOCK)
        reference = serial.submit_flush("sparse", prepared).result()
        executor = ProcessShardExecutor()
        with hard_timeout(240, what="sparse shard-worker smoke"):
            executor.bind({"sparse": pruned}, SYSTEM_CLOCK)
            try:
                execution = executor.submit_flush("sparse", prepared).result()
                np.testing.assert_allclose(
                    execution.probabilities,
                    reference.probabilities,
                    atol=1e-7,
                    rtol=0,
                )
            finally:
                executor.shutdown()


def _block_pruned_lstm(seed=8, hidden=32, channels=16):
    """A block-pruned LSTM classifier whose plan lowers block-sparse kernels."""
    from repro.compression.pruning import prune_classifier_inplace
    from repro.nn.inference import SparsityConfig

    classifier = EEGLSTM(LSTMConfig(hidden_size=hidden), seed=seed)
    classifier.ensure_network(channels, WINDOW)
    prune_classifier_inplace(classifier, 0.9, tile=(8, 8))
    classifier.plan_sparsity = SparsityConfig(mode="always", min_size=0)
    return classifier


class TestBlockSparsePayloads:
    def test_block_pruned_classifier_round_trips_exactly(self):
        classifier = _block_pruned_lstm()
        compiled = classifier.ensure_compiled()
        assert any("block" in k for k in compiled.plan.describe())
        replica = CompiledClassifier.from_payload(compiled.to_payload())
        assert replica.plan.describe() == compiled.plan.describe()
        windows = np.random.default_rng(13).standard_normal((5, 16, WINDOW))
        np.testing.assert_array_equal(
            replica.predict_proba(windows), compiled.predict_proba(windows)
        )

    def test_replica_block_operands_are_identical(self):
        from repro.nn.sparse import BlockSparseWeight

        compiled = _block_pruned_lstm(seed=9).ensure_compiled()
        replica = CompiledClassifier.from_payload(compiled.to_payload())
        pairs = [
            (mine, theirs)
            for kernel, copy in zip(compiled.plan.kernels, replica.plan.kernels)
            if hasattr(kernel, "layers")
            for layer, layer_copy in zip(kernel.layers, copy.layers)
            for mine, theirs in zip(layer[:2], layer_copy[:2])
            if isinstance(mine, BlockSparseWeight)
        ]
        assert pairs  # the pruned projections really did lower block-sparse
        # Gate-coupled pruning + pinned lowering: the projections ship as
        # fused-gate slabs, and the payload must carry that geometry.
        assert any(mine.groups == 4 for mine, _ in pairs)
        for mine, theirs in pairs:
            assert isinstance(theirs, BlockSparseWeight)
            assert theirs.tile == mine.tile
            assert theirs.groups == mine.groups
            assert np.array_equal(theirs.block_indices, mine.block_indices)
            assert np.array_equal(theirs.blocks, mine.blocks)

    def test_shard_worker_serves_a_block_sparse_plan(self):
        classifier = _block_pruned_lstm(seed=10)
        assert any(
            "block" in k for k in classifier.ensure_compiled().plan.describe()
        )
        prepared = PreparedBatch(
            session_ids=["a", "b", "c"],
            windows=np.random.default_rng(14).standard_normal((3, 16, WINDOW)),
            chunk_size=3,
        )
        serial = SerialExecutor()
        serial.bind({"block": classifier}, SYSTEM_CLOCK)
        reference = serial.submit_flush("block", prepared).result()
        executor = ProcessShardExecutor()
        with hard_timeout(240, what="block-sparse shard-worker smoke"):
            executor.bind({"block": classifier}, SYSTEM_CLOCK)
            try:
                execution = executor.submit_flush("block", prepared).result()
                np.testing.assert_allclose(
                    execution.probabilities,
                    reference.probabilities,
                    atol=1e-7,
                    rtol=0,
                )
            finally:
                executor.shutdown()


class TestAutotunePayloadSeeding:
    @pytest.fixture
    def isolated_cache(self, tmp_path):
        from repro.nn.autotune import AutotuneCache, set_default_cache

        cache = AutotuneCache(path=str(tmp_path / "autotune.json"))
        previous = set_default_cache(cache)
        try:
            yield cache
        finally:
            set_default_cache(previous)

    def _calibrated_compiled(self, monkeypatch):
        from repro.nn import autotune
        from repro.nn.inference import SparsityConfig

        monkeypatch.setattr(
            autotune, "median_call_time_s", lambda call, repeats=5: (call(), 1e-4)[1]
        )
        classifier = EEGLSTM(LSTMConfig(hidden_size=32), seed=11)
        classifier.ensure_network(16, WINDOW)
        from repro.compression.pruning import prune_classifier_inplace

        prune_classifier_inplace(classifier, 0.9, tile=(8, 8))
        classifier.plan_sparsity = SparsityConfig(mode="auto", min_size=0)
        return classifier.ensure_compiled()

    def test_payload_carries_the_calibration_entries(
        self, isolated_cache, monkeypatch
    ):
        import io
        import json

        from repro.nn.autotune import host_fingerprint

        compiled = self._calibrated_compiled(monkeypatch)
        keys = [
            r["key"] for r in compiled.plan.lowering_records if r.get("key")
        ]
        assert keys  # auto mode calibrated at least one matmul
        with np.load(io.BytesIO(compiled.to_payload()), allow_pickle=False) as archive:
            meta = json.loads(str(archive[InferencePlan.META_KEY]))
        autotune_meta = meta["autotune"]
        assert autotune_meta["fingerprint"] == host_fingerprint()
        assert set(autotune_meta["entries"]) == set(keys)

    def test_from_payload_seeds_the_worker_cache(self, isolated_cache, monkeypatch):
        from repro.nn.autotune import AutotuneCache, set_default_cache

        compiled = self._calibrated_compiled(monkeypatch)
        payload = compiled.to_payload()
        keys = [r["key"] for r in compiled.plan.lowering_records if r.get("key")]
        # Fresh empty cache = a newly spawned worker process.
        worker_cache = AutotuneCache(path=None)
        set_default_cache(worker_cache)
        try:
            CompiledClassifier.from_payload(payload)
            assert all(worker_cache.get(key) is not None for key in keys)
        finally:
            set_default_cache(isolated_cache)
