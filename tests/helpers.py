"""Shared test utilities: toy datasets and the virtual-clock serving harness.

Besides the quickly-learnable EEG-like dataset, this module hosts the
deterministic serving-test kit: :class:`FakeClock` (a virtual
:class:`repro.utils.timing.Clock`), :class:`ClockedStubClassifier` (latency
is *simulated* by advancing the fake clock, so measured flush latencies are
exact), :class:`ScriptedSession` (a board-free two-phase session) and
:class:`SimulatedLoad` (drives an ``AsyncFleetScheduler`` through thousands
of virtual seconds of arrivals in milliseconds of real time).
"""

import heapq
import itertools
import signal
import threading
from collections import Counter
from contextlib import contextmanager

import numpy as np

from repro.dataset.windows import WindowDataset
from repro.models.base import EEGClassifier, TrainingHistory
from repro.signals.synthetic import ACTIONS


@contextmanager
def hard_timeout(seconds, what="test"):
    """Kill the calling test with a clear error if it wall-clock hangs.

    SIGALRM-based, so it fires even when the hang is inside a blocking
    native call; on non-POSIX platforms it degrades to a no-op and the CI
    job timeout is the backstop.
    """
    if not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"{what} exceeded the {seconds}s hard timeout — it is hanging "
            "instead of making progress"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


class FakeClock:
    """Deterministic virtual clock implementing the ``Clock`` protocol.

    ``sleep`` advances virtual time instead of blocking, so code written
    against the injected clock runs thousands of virtual seconds per real
    millisecond and every measured duration is exact.

    Thread-safe: the thread-pool flush executor reads and advances the
    clock from worker threads concurrently with the driving thread, and a
    torn ``_now`` update would silently corrupt virtual time.
    """

    def __init__(self, start=0.0):
        self._now = float(start)
        self._lock = threading.Lock()
        self.sleep_calls = []

    def now(self):
        with self._lock:
            return self._now

    def sleep(self, duration_s):
        if duration_s < 0:
            raise ValueError("cannot sleep a negative duration")
        with self._lock:
            self.sleep_calls.append(float(duration_s))
            self._now += float(duration_s)

    def advance(self, duration_s):
        """Move virtual time forward without recording a sleep."""
        if duration_s < 0:
            raise ValueError("cannot advance backwards")
        with self._lock:
            self._now += float(duration_s)

    def advance_to(self, time_s):
        """Jump to an absolute virtual time (never backwards)."""
        with self._lock:
            if time_s < self._now - 1e-12:
                raise ValueError(
                    f"cannot rewind the clock from {self._now} to {time_s}"
                )
            self._now = max(self._now, float(time_s))


class ClockedStubClassifier(EEGClassifier):
    """Deterministic classifier whose *simulated* latency is clock-driven.

    Each ``predict_proba`` call advances the injected :class:`FakeClock` by
    ``base_latency_s + per_row_s * n`` — so batcher/scheduler latency
    measurements come out exact, and overload scenarios are scripted by
    making ``per_row_s`` large.  ``peak_class`` fixes which class wins,
    letting router tests prove each cohort was served by its own model.
    """

    family = "stub"

    def __init__(self, clock=None, base_latency_s=0.0, per_row_s=0.0, peak_class=0):
        self.clock = clock
        self.base_latency_s = float(base_latency_s)
        self.per_row_s = float(per_row_s)
        self.peak_class = int(peak_class)
        self.batch_sizes = []

    def fit(self, train, validation=None):
        return TrainingHistory()

    def predict_proba(self, windows):
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim == 2:
            windows = windows[None, ...]
        n = windows.shape[0]
        self.batch_sizes.append(n)
        if self.clock is not None:
            self.clock.advance(self.base_latency_s + self.per_row_s * n)
        # Window-dependent but deterministic, peaked at ``peak_class``.
        mean = windows.mean(axis=(1, 2))
        scores = np.full((n, 3), 1.0)
        scores[:, self.peak_class] = 2.0 + np.tanh(mean)
        return scores / scores.sum(axis=1, keepdims=True)

    def parameter_count(self):
        return 0


class ScriptedSession:
    """Board-free stand-in for ``ServingSession`` (same two-phase protocol).

    Produces tiny deterministic windows instantly — no simulated EEG, no
    filtering — so a scheduler harness can push millions of submissions
    through virtual time quickly.  ``stall_every=k`` makes every k-th
    prepare return ``None`` (a stalled tick).
    """

    def __init__(self, session_id, n_channels=2, window_size=4, stall_every=None, seed=0):
        self.session_id = str(session_id)
        self.n_channels = n_channels
        self.window_size = window_size
        self.stall_every = stall_every
        self._rng = np.random.default_rng(seed)
        self.tick_index = 0
        self.backlog_depth = 0
        self.dropped_windows = 0
        self.applied = []  # (probabilities, classify_latency_s) per result

    def start(self):
        pass

    def stop(self):
        pass

    def prepare_window(self):
        index = self.tick_index
        self.tick_index += 1
        if self.stall_every and (index + 1) % self.stall_every == 0:
            self.backlog_depth += 1
            return None
        if self.backlog_depth:
            self.dropped_windows += self.backlog_depth
            self.backlog_depth = 0
        return self._rng.standard_normal((self.n_channels, self.window_size))

    def apply_result(self, probabilities, classify_latency_s=0.0):
        self.applied.append((np.asarray(probabilities), float(classify_latency_s)))
        return len(self.applied) - 1

    def labels_emitted(self):
        return len(self.applied)

    def accuracy(self):
        return 0.0


class SimulatedLoad:
    """Event-driven traffic generator for an ``AsyncFleetScheduler``.

    Each attached session submits periodically (staggered starts, optional
    deterministic jitter) on the scheduler's injected :class:`FakeClock`.
    The driver honours the scheduler's contract: before virtual time moves
    past any pending flush deadline it calls ``pump()``, so any remaining
    deadline violation is the scheduler's fault, not the harness's.

    After :meth:`run`, ``outcomes`` counts submissions by result
    ("queued"/"flushed"/"stalled"/"shed") and ``flush_events`` holds every
    ``FlushEvent`` in order.
    """

    def __init__(self, scheduler, clock, period_s=0.1, jitter_s=0.0, seed=0):
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.scheduler = scheduler
        self.clock = clock
        self.period_s = float(period_s)
        self.jitter_s = float(jitter_s)
        self._rng = np.random.default_rng(seed)
        self.outcomes = Counter()
        self.flush_events = []
        self.submissions = 0

    def _pump_until(self, time_s):
        """Service every flush deadline due at or before ``time_s``."""
        while True:
            due = self.scheduler.next_flush_due_s()
            if due is None or due > time_s:
                return
            self.clock.advance_to(max(due, self.clock.now()))
            self.flush_events.extend(self.scheduler.pump())

    def run(self, duration_s):
        """Drive ``duration_s`` virtual seconds of traffic, then settle.

        New arrivals stop at the horizon; windows already queued are still
        flushed at their deadlines, so nothing is silently dropped.
        """
        start = self.clock.now()
        horizon = start + float(duration_s)
        counter = itertools.count()  # heap tie-break for simultaneous events
        heap = []
        sessions = self.scheduler.sessions
        for i, session in enumerate(sessions):
            offset = (i / len(sessions)) * self.period_s
            heapq.heappush(heap, (start + offset, next(counter), session.session_id))
        while heap:
            arrival, _, session_id = heapq.heappop(heap)
            if arrival > horizon:
                break
            self._pump_until(arrival)
            # A long flush may already have pushed virtual time past this
            # arrival; the session then simply submits late (never rewind).
            self.clock.advance_to(max(arrival, self.clock.now()))
            outcome = self.scheduler.submit(session_id)
            if outcome == "flushed":  # batch filled: the flush ran inline
                self.flush_events.append(self.scheduler.last_flush_event)
            self.outcomes[outcome] += 1
            self.submissions += 1
            jitter = self._rng.uniform(0, self.jitter_s) if self.jitter_s else 0.0
            heapq.heappush(
                heap, (arrival + self.period_s + jitter, next(counter), session_id)
            )
        self._pump_until(float("inf"))  # settle: flush every pending deadline
        self.flush_events.extend(self.scheduler.drain())  # record danglers
        return self


def make_toy_dataset(
    n_per_class=20,
    n_channels=4,
    window_size=50,
    n_participants=2,
    sampling_rate_hz=125.0,
    noise=0.5,
    seed=0,
):
    """Build a small 3-class dataset whose classes differ in channel rhythm power.

    Class 0 ("left") carries a strong 10 Hz rhythm on channel 1, class 1
    ("right") carries it on channel 0 and class 2 ("idle") carries it on both;
    this mimics the ERD lateralisation structure of the real problem while
    remaining learnable by tiny models within a couple of epochs.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(window_size) / sampling_rate_hz
    carrier = np.sin(2 * np.pi * 10.0 * t)
    windows, labels, participants = [], [], []
    for class_idx in range(3):
        for i in range(n_per_class):
            window = noise * rng.standard_normal((n_channels, window_size))
            phase = rng.uniform(0, 2 * np.pi)
            shifted = np.sin(2 * np.pi * 10.0 * t + phase)
            if class_idx == 0:
                window[1] += 3.0 * shifted
            elif class_idx == 1:
                window[0] += 3.0 * shifted
            else:
                window[0] += 1.5 * shifted
                window[1] += 1.5 * shifted
            windows.append(window)
            labels.append(class_idx)
            participants.append(f"P{(i % n_participants) + 1:02d}")
    order = rng.permutation(len(windows))
    return WindowDataset(
        windows=np.stack(windows)[order],
        labels=np.array(labels)[order],
        label_names=ACTIONS,
        participant_ids=np.array(participants, dtype=object)[order],
        sampling_rate_hz=sampling_rate_hz,
    )
