"""Shared test utilities: small, quickly-learnable EEG-like datasets."""

import numpy as np

from repro.dataset.windows import WindowDataset
from repro.signals.synthetic import ACTIONS


def make_toy_dataset(
    n_per_class=20,
    n_channels=4,
    window_size=50,
    n_participants=2,
    sampling_rate_hz=125.0,
    noise=0.5,
    seed=0,
):
    """Build a small 3-class dataset whose classes differ in channel rhythm power.

    Class 0 ("left") carries a strong 10 Hz rhythm on channel 1, class 1
    ("right") carries it on channel 0 and class 2 ("idle") carries it on both;
    this mimics the ERD lateralisation structure of the real problem while
    remaining learnable by tiny models within a couple of epochs.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(window_size) / sampling_rate_hz
    carrier = np.sin(2 * np.pi * 10.0 * t)
    windows, labels, participants = [], [], []
    for class_idx in range(3):
        for i in range(n_per_class):
            window = noise * rng.standard_normal((n_channels, window_size))
            phase = rng.uniform(0, 2 * np.pi)
            shifted = np.sin(2 * np.pi * 10.0 * t + phase)
            if class_idx == 0:
                window[1] += 3.0 * shifted
            elif class_idx == 1:
                window[0] += 3.0 * shifted
            else:
                window[0] += 1.5 * shifted
                window[1] += 1.5 * shifted
            windows.append(window)
            labels.append(class_idx)
            participants.append(f"P{(i % n_participants) + 1:02d}")
    order = rng.permutation(len(windows))
    return WindowDataset(
        windows=np.stack(windows)[order],
        labels=np.array(labels)[order],
        label_names=ACTIONS,
        participant_ids=np.array(participants, dtype=object)[order],
        sampling_rate_hz=sampling_rate_hz,
    )
