"""FleetServer scheduling, churn, stall handling and loop equivalence."""

import numpy as np
import pytest

from repro.acquisition.board import BoardConfig, SimulatedCytonDaisyBoard
from repro.core.config import CognitiveArmConfig
from repro.core.realtime import RealTimeInferenceLoop
from repro.serving.server import FleetServer
from repro.serving.session import ServingSession
from repro.signals.montage import Montage
from repro.signals.synthetic import ACTION_LEFT, ACTION_RIGHT, ParticipantProfile
from tests.helpers import ClockedStubClassifier, FakeClock


def _profile(seed):
    return ParticipantProfile(participant_id=f"P{seed}", seed=seed)


class TestServingSession:
    def test_requires_start_before_prepare(self, serving_config):
        session = ServingSession("s0", _profile(1), serving_config)
        with pytest.raises(RuntimeError):
            session.prepare_window()

    def test_two_phase_round_trip(self, serving_config, stub_classifier):
        session = ServingSession("s0", _profile(1), serving_config)
        session.start()
        window = session.prepare_window()
        assert window.shape == (serving_config.n_channels, serving_config.window_size)
        probs = stub_classifier.predict_proba(window[None])[0]
        tick = session.apply_result(probs, classify_latency_s=0.001)
        assert tick.action in ("left", "right", "idle")
        assert session.labels_emitted() == 1
        session.stop()

    def test_invalid_action_rejected(self, serving_config):
        session = ServingSession("s0", _profile(1), serving_config)
        with pytest.raises(ValueError):
            session.set_action("jump")

    def test_voice_keyword_switches_controller_mode(self, serving_config):
        session = ServingSession("s0", _profile(1), serving_config)
        session.start()
        assert session.handle_keyword("fingers")
        assert session.controller.mode == "fingers"
        session.stop()


class TestFleetServer:
    def test_tick_batches_all_sessions_in_one_call(
        self, serving_config, stub_classifier
    ):
        server = FleetServer(stub_classifier, serving_config)
        for seed in range(4):
            server.add_session(profile=_profile(seed))
        ticks = server.tick()
        assert len(ticks) == 4
        assert stub_classifier.batch_sizes == [4]  # one vectorised call

    def test_results_routed_to_owning_session(self, serving_config, stub_classifier):
        server = FleetServer(stub_classifier, serving_config)
        for seed in (11, 23):
            server.add_session(profile=_profile(seed))
        ticks = server.tick()
        for session in server.sessions:
            expected = stub_classifier.predict_proba(session.last_window[None])[0]
            best = float(np.max(expected))
            assert ticks[session.session_id].confidence == pytest.approx(best)

    def test_join_and_leave_mid_run(self, serving_config, stub_classifier):
        server = FleetServer(stub_classifier, serving_config)
        a = server.add_session(profile=_profile(1))
        b = server.add_session(profile=_profile(2))
        for _ in range(3):
            server.tick()
        c = server.add_session(profile=_profile(3))
        for _ in range(3):
            server.tick()
        server.remove_session(b.session_id)
        for _ in range(3):
            server.tick()
        sizes = [r.batch_size for r in server.telemetry.records]
        assert sizes == [2, 2, 2, 3, 3, 3, 2, 2, 2]
        assert a.labels_emitted() == 9
        assert b.labels_emitted() == 6  # stopped after leaving
        assert c.labels_emitted() == 6  # started late
        report = server.report()
        assert {s.session_id for s in report.sessions} == {
            a.session_id, b.session_id, c.session_id,
        }
        assert report.session(b.session_id).labels_emitted == 6

    def test_auto_ids_skip_caller_supplied_names(self, serving_config, stub_classifier):
        server = FleetServer(stub_classifier, serving_config)
        server.add_session(session_id="session-1", profile=_profile(1))
        auto = server.add_session(profile=_profile(2))  # must not collide
        assert auto.session_id != "session-1"
        server.remove_session(auto.session_id)
        late = server.add_session(profile=_profile(3))  # departed ids stay taken
        assert late.session_id not in {"session-1", auto.session_id}

    def test_duplicate_session_id_rejected(self, serving_config, stub_classifier):
        server = FleetServer(stub_classifier, serving_config)
        server.add_session(session_id="dup", profile=_profile(1))
        with pytest.raises(ValueError):
            server.add_session(session_id="dup", profile=_profile(2))

    def test_mismatched_session_shape_rejected(self, serving_config, stub_classifier):
        server = FleetServer(stub_classifier, serving_config)
        other = CognitiveArmConfig(window_size=50, label_rate_hz=10.0)
        session = ServingSession("odd", _profile(1), other)
        with pytest.raises(ValueError):
            server.add_session(session)

    def test_mismatched_session_clock_rejected(self, serving_config, stub_classifier):
        server = FleetServer(stub_classifier, serving_config)
        slow = CognitiveArmConfig(
            window_size=serving_config.window_size, label_rate_hz=5.0
        )
        session = ServingSession("slow", _profile(1), slow)
        with pytest.raises(ValueError, match="lock-step"):
            server.add_session(session)

    def test_stalled_session_shrinks_batch_and_recovers(
        self, serving_config, stub_classifier
    ):
        server = FleetServer(stub_classifier, serving_config)
        healthy = server.add_session(profile=_profile(1))
        flaky = server.add_session(
            session_id="flaky", profile=_profile(2), stall_ticks={1, 2}
        )
        for _ in range(5):
            server.tick()
        sizes = [r.batch_size for r in server.telemetry.records]
        assert sizes == [2, 1, 1, 2, 2]  # graceful degradation, then recovery
        stalls = [r.stalled_sessions for r in server.telemetry.records]
        assert stalls == [0, 1, 1, 0, 0]
        assert healthy.labels_emitted() == 5
        assert flaky.labels_emitted() == 3
        assert flaky.dropped_windows == 2  # backlog dropped on recovery
        assert flaky.backlog_depth == 0
        assert server.telemetry.max_backlog_depth() == 2
        assert server.telemetry.stall_rate() == pytest.approx(2 / 10)

    def test_injected_clock_makes_tick_latencies_exact(self, serving_config):
        clock = FakeClock()
        classifier = ClockedStubClassifier(clock, base_latency_s=0.006, per_row_s=0.001)
        server = FleetServer(classifier, serving_config, clock=clock)
        for seed in range(3):
            server.add_session(profile=_profile(seed))
        server.tick()
        record = server.telemetry.records[0]
        assert record.batch_latency_s == pytest.approx(0.006 + 0.001 * 3)
        # Sessions inherit the fleet clock, so prepare-phase latency is
        # virtual too and the whole tick is deterministic.
        tick = server.sessions[0].ticks[0]
        assert tick.processing_latency_s == pytest.approx((0.006 + 0.003) / 3)

    def test_all_stalled_tick_does_not_skew_latency_p50(self, serving_config):
        clock = FakeClock()
        classifier = ClockedStubClassifier(clock, base_latency_s=0.010)
        server = FleetServer(classifier, serving_config, clock=clock)
        server.add_session(
            session_id="flaky", profile=_profile(1), stall_ticks={1, 3, 5, 7}
        )
        for _ in range(8):
            server.tick()
        # Half the ticks classified nothing; they must not drag p50 to ~0.
        assert server.telemetry.latency_percentiles()["p50"] == pytest.approx(0.010)
        assert server.telemetry.stall_rate() == pytest.approx(0.5)

    def test_empty_fleet_tick_is_safe(self, serving_config, stub_classifier):
        server = FleetServer(stub_classifier, serving_config)
        assert server.tick() == {}
        assert stub_classifier.batch_sizes == []

    def test_run_and_report(self, serving_config, stub_classifier):
        server = FleetServer(stub_classifier, serving_config)
        for seed in range(3):
            server.add_session(profile=_profile(seed))
        report = server.run(1.0)
        assert report.ticks == 10
        assert report.fleet["total_labels"] == 30.0
        assert report.fleet["throughput_labels_per_s"] > 0
        assert report.fleet["batch_latency_p95_s"] >= report.fleet["batch_latency_p50_s"]
        assert len(report.sessions) == 3
        server.shutdown()
        assert server.n_sessions == 0


class TestSingleSessionEquivalence:
    """A 1-session fleet must be tick-for-tick identical to the plain loop."""

    def _reference_ticks(self, profile, config, classifier, actions):
        board = SimulatedCytonDaisyBoard(
            profile=profile,
            config=BoardConfig(
                sampling_rate_hz=config.sampling_rate_hz,
                n_channels=config.n_channels,
            ),
            montage=Montage(),
        )
        board.prepare_session()
        board.start_stream()
        loop = RealTimeInferenceLoop(board, classifier, config)
        loop.warmup()
        ticks = []
        for tick_index in range(20):
            if tick_index in actions:
                board.set_action(actions[tick_index])
            ticks.append(loop.tick())
        return ticks

    def test_tick_for_tick_identical(self, serving_config, stub_classifier):
        actions = {0: ACTION_RIGHT, 8: ACTION_LEFT, 15: ACTION_RIGHT}
        reference = self._reference_ticks(
            ParticipantProfile(participant_id="EQ", seed=42),
            serving_config,
            stub_classifier,
            actions,
        )
        server = FleetServer(stub_classifier, serving_config)
        session = server.add_session(
            profile=ParticipantProfile(participant_id="EQ", seed=42)
        )
        fleet_ticks = []
        for tick_index in range(20):
            if tick_index in actions:
                session.set_action(actions[tick_index])
            fleet_ticks.append(server.tick()[session.session_id])
        assert len(fleet_ticks) == len(reference)
        for ours, ref in zip(fleet_ticks, reference):
            assert ours.time_s == ref.time_s
            assert ours.action == ref.action
            assert ours.smoothed_action == ref.smoothed_action
            assert ours.confidence == ref.confidence  # bit-for-bit
