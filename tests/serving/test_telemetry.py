"""Unit tests for fleet telemetry aggregation and latency calibration."""

import numpy as np
import pytest

from repro.serving.telemetry import (
    FleetTelemetry,
    FleetTickRecord,
    calibrate_batch_latency_s,
)


def _record(tick, batch, latency, stalled=0, backlog=0, n_sessions=None):
    return FleetTickRecord(
        tick_index=tick,
        n_sessions=n_sessions if n_sessions is not None else batch + stalled,
        batch_size=batch,
        stalled_sessions=stalled,
        batch_latency_s=latency,
        backlog_depth=backlog,
    )


class TestFleetTelemetry:
    def test_empty_telemetry_reports_zeros(self):
        telemetry = FleetTelemetry()
        assert telemetry.total_labels == 0
        assert telemetry.throughput_labels_per_s() == 0.0
        assert telemetry.latency_percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert telemetry.max_backlog_depth() == 0
        assert telemetry.stall_rate() == 0.0

    def test_aggregates(self):
        telemetry = FleetTelemetry()
        telemetry.record(_record(0, 4, 0.010))
        telemetry.record(_record(1, 3, 0.020, stalled=1, backlog=1))
        telemetry.record(_record(2, 4, 0.030, backlog=0))
        assert telemetry.total_labels == 11
        assert telemetry.total_batch_time_s == pytest.approx(0.060)
        assert telemetry.throughput_labels_per_s() == pytest.approx(11 / 0.060)
        percentiles = telemetry.latency_percentiles()
        assert percentiles["p50"] == pytest.approx(0.020)
        assert percentiles["p50"] <= percentiles["p95"] <= percentiles["p99"]
        assert telemetry.max_backlog_depth() == 1
        assert telemetry.stall_rate() == pytest.approx(1 / 12)
        summary = telemetry.summary()
        assert summary["ticks"] == 3.0
        assert summary["total_labels"] == 11.0

    def test_empty_flushes_do_not_skew_latency_percentiles(self):
        """Satellite fix: all-stalled ticks used to drag p50 toward zero."""
        telemetry = FleetTelemetry()
        for tick in range(10):
            telemetry.record(_record(tick, 4, 0.020))
        for tick in range(10, 30):  # every session stalled: no classification
            telemetry.record(_record(tick, 0, 0.0, stalled=4, backlog=tick))
        percentiles = telemetry.latency_percentiles()
        # Before the fix: p50 of [0.020]*10 + [0.0]*20 == 0.0.
        assert percentiles["p50"] == pytest.approx(0.020)
        assert percentiles["p95"] == pytest.approx(0.020)
        # The empty ticks still count for stall/backlog accounting.
        assert telemetry.stall_rate() == pytest.approx(80 / 120)
        assert telemetry.max_backlog_depth() == 29

    def test_only_empty_records_reports_zero_percentiles(self):
        telemetry = FleetTelemetry()
        telemetry.record(_record(0, 0, 0.0, stalled=2))
        assert telemetry.latency_percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_shed_and_deadline_aggregates(self):
        telemetry = FleetTelemetry()
        telemetry.record(
            FleetTickRecord(
                tick_index=0,
                n_sessions=4,
                batch_size=3,
                stalled_sessions=0,
                batch_latency_s=0.01,
                backlog_depth=0,
                shed_sessions=2,
                deadline_violations=1,
                max_queue_wait_s=0.017,
                flush_reason="deadline",
            )
        )
        telemetry.record(_record(1, 4, 0.01))  # defaults: nothing shed
        assert telemetry.total_shed == 2
        assert telemetry.total_deadline_violations == 1
        assert telemetry.max_queue_wait_s() == pytest.approx(0.017)
        summary = telemetry.summary()
        assert summary["shed_windows"] == 2.0
        assert summary["deadline_violations"] == 1.0
        assert summary["max_queue_wait_s"] == pytest.approx(0.017)


class TestCalibration:
    def test_calibrate_uses_batched_call(self, stub_classifier):
        batch = np.random.default_rng(0).standard_normal((6, 4, 10))
        latency = calibrate_batch_latency_s(stub_classifier, batch, repeats=3)
        assert latency >= 0.0
        assert stub_classifier.batch_sizes == [6, 6, 6]

    def test_calibrate_rejects_non_batch_input(self, stub_classifier):
        with pytest.raises(ValueError):
            calibrate_batch_latency_s(stub_classifier, np.zeros((4, 10)))


class TestStreamFields:
    """Satellite: stream lag/depth ride the tick records into summaries."""

    def test_stream_lag_and_depth_aggregate(self):
        telemetry = FleetTelemetry()
        telemetry.record(
            FleetTickRecord(
                tick_index=0,
                n_sessions=2,
                batch_size=2,
                stalled_sessions=0,
                batch_latency_s=0.01,
                backlog_depth=0,
                cohort="a",
                stream_lag_s=0.04,
                stream_depth=3,
            )
        )
        telemetry.record(
            FleetTickRecord(
                tick_index=1,
                n_sessions=2,
                batch_size=1,
                stalled_sessions=0,
                batch_latency_s=0.01,
                backlog_depth=0,
                cohort="a",
                stream_lag_s=0.09,
                stream_depth=1,
            )
        )
        assert telemetry.max_stream_lag_s() == pytest.approx(0.09)
        assert telemetry.max_stream_depth() == 3
        summary = telemetry.summary()
        assert summary["stream_lag_s"] == pytest.approx(0.09)
        assert summary["max_stream_depth"] == 3.0
        assert telemetry.cohort_breakdown()["a"]["max_stream_lag_s"] == (
            pytest.approx(0.09)
        )

    def test_off_stream_records_report_zero_lag(self):
        telemetry = FleetTelemetry()
        telemetry.record(_record(0, 4, 0.010))
        assert telemetry.max_stream_lag_s() == 0.0
        assert telemetry.summary()["max_stream_depth"] == 0.0
