"""Unit tests for the cross-session micro-batcher."""

import numpy as np
import pytest

from repro.serving.batcher import BatchResult, MicroBatcher
from tests.helpers import ClockedStubClassifier, FakeClock


def _window(seed, channels=4, samples=10):
    return np.random.default_rng(seed).standard_normal((channels, samples))


class TestSubmit:
    def test_rejects_non_2d_windows(self, stub_classifier):
        batcher = MicroBatcher(stub_classifier)
        with pytest.raises(ValueError):
            batcher.submit("a", np.zeros(5))
        with pytest.raises(ValueError):
            batcher.submit("a", np.zeros((1, 4, 10)))

    def test_rejects_shape_mismatch_within_batch(self, stub_classifier):
        batcher = MicroBatcher(stub_classifier)
        batcher.submit("a", _window(0))
        with pytest.raises(ValueError):
            batcher.submit("b", _window(1, channels=8))

    def test_rejects_duplicate_session(self, stub_classifier):
        batcher = MicroBatcher(stub_classifier)
        batcher.submit("a", _window(0))
        with pytest.raises(ValueError):
            batcher.submit("a", _window(1))

    def test_invalid_max_batch_size(self, stub_classifier):
        with pytest.raises(ValueError):
            MicroBatcher(stub_classifier, max_batch_size=0)


class TestFlush:
    def test_empty_fleet_flush_is_a_no_op(self, stub_classifier):
        batcher = MicroBatcher(stub_classifier)
        result = batcher.flush()
        assert isinstance(result, BatchResult)
        assert len(result) == 0
        assert result.batch_sizes == []
        assert result.per_window_latency_s() == 0.0
        assert stub_classifier.batch_sizes == []  # no classifier call issued

    def test_stacks_all_windows_into_one_call(self, stub_classifier):
        batcher = MicroBatcher(stub_classifier)
        windows = {f"s{i}": _window(i) for i in range(5)}
        for session_id, window in windows.items():
            batcher.submit(session_id, window)
        assert len(batcher) == 5
        result = batcher.flush()
        assert stub_classifier.batch_sizes == [5]
        assert result.batch_sizes == [5]
        assert set(result.results) == set(windows)
        assert len(batcher) == 0  # pending queue drained

    def test_results_routed_to_the_right_session(self, stub_classifier):
        batcher = MicroBatcher(stub_classifier)
        windows = {f"s{i}": _window(100 + i) for i in range(4)}
        for session_id, window in windows.items():
            batcher.submit(session_id, window)
        result = batcher.flush()
        for session_id, window in windows.items():
            expected = stub_classifier.predict_proba(window[None])[0]
            np.testing.assert_allclose(result.results[session_id], expected)

    def test_partial_batches_respect_max_batch_size(self, stub_classifier):
        batcher = MicroBatcher(stub_classifier, max_batch_size=2)
        for i in range(5):
            batcher.submit(f"s{i}", _window(i))
        result = batcher.flush()
        assert result.batch_sizes == [2, 2, 1]
        assert stub_classifier.batch_sizes == [2, 2, 1]
        assert len(result) == 5

    def test_uneven_chunks_route_results_across_boundaries(self, stub_classifier):
        # 7 sessions with max_batch_size=3 -> chunks [3, 3, 1]; every session
        # must still get the row its own window produced, including the ones
        # straddling chunk boundaries and the singleton tail.
        batcher = MicroBatcher(stub_classifier, max_batch_size=3)
        windows = {f"s{i}": _window(200 + i) for i in range(7)}
        for session_id, window in windows.items():
            batcher.submit(session_id, window)
        result = batcher.flush()
        assert result.batch_sizes == [3, 3, 1]
        assert stub_classifier.batch_sizes == [3, 3, 1]
        assert len(result) == 7
        for session_id, window in windows.items():
            expected = stub_classifier.predict_proba(window[None])[0]
            np.testing.assert_allclose(result.results[session_id], expected)

    def test_chunk_equal_to_fleet_size_issues_single_call(self, stub_classifier):
        batcher = MicroBatcher(stub_classifier, max_batch_size=4)
        for i in range(4):
            batcher.submit(f"s{i}", _window(i))
        result = batcher.flush()
        assert result.batch_sizes == [4]

    def test_per_window_latency_share(self, stub_classifier):
        batcher = MicroBatcher(stub_classifier)
        for i in range(4):
            batcher.submit(f"s{i}", _window(i))
        result = batcher.flush()
        assert result.latency_s > 0
        assert result.per_window_latency_s() == pytest.approx(result.latency_s / 4)

    def test_latency_measured_through_the_injected_clock(self):
        # Satellite fix: flush no longer reads time.perf_counter() inline, so
        # a virtual clock makes the measured latency *exact*, not approximate.
        clock = FakeClock()
        classifier = ClockedStubClassifier(clock, base_latency_s=0.004, per_row_s=0.001)
        batcher = MicroBatcher(classifier, clock=clock)
        for i in range(3):
            batcher.submit(f"s{i}", _window(i))
        result = batcher.flush()
        assert result.latency_s == pytest.approx(0.004 + 0.001 * 3)
        assert result.per_window_latency_s() == pytest.approx((0.004 + 0.003) / 3)

    def test_chunked_flush_accumulates_clocked_latency(self):
        clock = FakeClock()
        classifier = ClockedStubClassifier(clock, base_latency_s=0.002)
        batcher = MicroBatcher(classifier, max_batch_size=2, clock=clock)
        for i in range(5):
            batcher.submit(f"s{i}", _window(i))
        result = batcher.flush()
        assert result.batch_sizes == [2, 2, 1]
        assert result.latency_s == pytest.approx(3 * 0.002)  # one base per chunk

    def test_batcher_is_reusable_across_flushes(self, stub_classifier):
        batcher = MicroBatcher(stub_classifier)
        batcher.submit("a", _window(0))
        batcher.flush()
        batcher.submit("a", _window(1))  # same id fine in a new batch
        result = batcher.flush()
        assert set(result.results) == {"a"}


class TestAutoSpecialization:
    """The batcher turns on plan auto-specialisation for stable fleet sizes."""

    @staticmethod
    def _neural_classifier():
        from repro.models.lstm_model import EEGLSTM, LSTMConfig

        classifier = EEGLSTM(LSTMConfig(hidden_size=16), seed=0)
        classifier.ensure_network(4, 10)
        return classifier

    def _flush(self, batcher, n, seed=0):
        for i in range(n):
            batcher.submit(f"s{i}", _window(seed + i))
        return batcher.flush()

    def test_stable_fleet_size_specializes_after_streak(self):
        classifier = self._neural_classifier()
        batcher = MicroBatcher(classifier)
        assert self._flush(batcher, 3, seed=0).specialized is False
        # The second same-size flush completes the streak: the arena is
        # bound and serves that very flush.
        assert self._flush(batcher, 3, seed=10).specialized is True
        result = self._flush(batcher, 3, seed=20)
        assert result.specialized is True
        stats = batcher.specialization_stats()
        assert stats["specialized_calls"] >= 2
        assert stats["arenas"] == 1

    def test_cohort_resize_respecializes_with_bounded_arenas(self):
        classifier = self._neural_classifier()
        batcher = MicroBatcher(classifier)
        for seed in (0, 10, 20):
            self._flush(batcher, 3, seed=seed)
        for seed in (0, 10, 20):
            self._flush(batcher, 5, seed=seed)
        for seed in (0, 10, 20):
            self._flush(batcher, 7, seed=seed)
        stats = batcher.specialization_stats()
        assert stats["arenas"] <= 2  # LRU cap: dead fleet sizes released
        assert stats["specialized_calls"] >= 4

    def test_specialize_false_leaves_plan_generic(self):
        classifier = self._neural_classifier()
        batcher = MicroBatcher(classifier, specialize=False)
        for seed in (0, 10, 20, 30):
            result = self._flush(batcher, 3, seed=seed)
            assert result.specialized is False
        assert batcher.specialization_stats()["specialized_calls"] == 0

    def test_specialized_rows_survive_the_next_flush(self):
        """finalize copies rows out of the arena-owned output buffer."""
        classifier = self._neural_classifier()
        batcher = MicroBatcher(classifier)
        self._flush(batcher, 2, seed=0)
        self._flush(batcher, 2, seed=10)
        third = self._flush(batcher, 2, seed=20)
        assert third.specialized
        held = {sid: row.copy() for sid, row in third.results.items()}
        self._flush(batcher, 2, seed=30)  # overwrites the arena buffer
        for sid, row in held.items():
            np.testing.assert_array_equal(third.results[sid], row)

    def test_stub_classifier_reports_no_specialization(self, stub_classifier):
        batcher = MicroBatcher(stub_classifier)
        assert batcher.specialization_stats() is None
        batcher.submit("a", _window(1))
        assert batcher.flush().specialized is False

    def test_specialization_preference_survives_plan_invalidation(self):
        """Regression: the batcher sets the preference on the classifier, so
        an in-place prune (plan invalidation + recompile) keeps the fleet on
        the zero-allocation path."""
        from repro.compression.pruning import prune_classifier_inplace

        classifier = self._neural_classifier()
        batcher = MicroBatcher(classifier)
        self._flush(batcher, 3, seed=0)
        assert self._flush(batcher, 3, seed=10).specialized is True
        prune_classifier_inplace(classifier, 0.5)
        self._flush(batcher, 3, seed=20)  # recompiled plan, streak restarts
        assert self._flush(batcher, 3, seed=30).specialized is True


def _alloc_profile(call, warm=3):
    """(net_bytes, peak_bytes) of one steady-state ``call`` under tracemalloc."""
    import gc
    import tracemalloc

    for _ in range(warm):
        call()
    gc.collect()
    tracemalloc.start()
    try:
        call()
        call()
        tracemalloc.reset_peak()
        before = tracemalloc.get_traced_memory()[0]
        call()
        current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return current - before, peak - before


class TestStackBuffers:
    """prepare() reuses a batcher-owned stacking buffer on the inline path."""

    def _windows(self, n, seed=0, dtype=np.float32):
        return [
            np.random.default_rng(seed + i).standard_normal((4, 10)).astype(dtype)
            for i in range(n)
        ]

    def test_same_geometry_flushes_reuse_the_buffer(self, stub_classifier):
        batcher = MicroBatcher(stub_classifier)
        first_windows = self._windows(3, seed=0)
        for i, w in enumerate(first_windows):
            batcher.submit(f"s{i}", w)
        first = batcher.prepare()
        for i, w in enumerate(self._windows(3, seed=10)):
            batcher.submit(f"s{i}", w)
        second = batcher.prepare()
        assert second.windows is first.windows  # same buffer, new contents
        np.testing.assert_array_equal(
            second.windows, np.stack(self._windows(3, seed=10))
        )

    def test_unspecialized_batcher_stacks_fresh_arrays(self, stub_classifier):
        batcher = MicroBatcher(stub_classifier, specialize=False)
        for i, w in enumerate(self._windows(3, seed=0)):
            batcher.submit(f"s{i}", w)
        first = batcher.prepare()
        for i, w in enumerate(self._windows(3, seed=10)):
            batcher.submit(f"s{i}", w)
        second = batcher.prepare()
        # Remote executors may still be reading the previous stack.
        assert second.windows is not first.windows

    def test_buffer_pool_is_lru_capped(self, stub_classifier):
        batcher = MicroBatcher(stub_classifier)
        for n in (2, 3, 4, 5):
            for i, w in enumerate(self._windows(n, seed=n)):
                batcher.submit(f"s{i}", w)
            batcher.prepare()
        assert len(batcher._stack_buffers) <= MicroBatcher.MAX_STACK_BUFFERS

    def test_mixed_dtypes_fall_back_to_np_stack(self, stub_classifier):
        batcher = MicroBatcher(stub_classifier)
        batcher.submit("a", self._windows(1, seed=0)[0])
        batcher.submit("b", self._windows(1, seed=1, dtype=np.float64)[0])
        prepared = batcher.prepare()
        assert prepared.windows.dtype == np.float64
        assert not batcher._stack_buffers


class TestEndToEndZeroAllocationFlush:
    """The PR's acceptance gate: a specialised steady-state flush performs
    zero window-sized allocations from raw windows to softmax rows.

    The chain under test is the whole serving hot path — batcher stacking
    buffer → preprocessing arena (standardise/pool/layout) → plan arena
    (kernels + softmax) → per-session row copies.  The tracemalloc peak of
    one flush must stay within numpy's constant-size iteration buffers,
    *independent of the window geometry*; the raw batch alone is ~580 KB
    here, so any window-sized temporary blows the bound.
    """

    def test_flush_peak_stays_within_iteration_buffers(self):
        from repro.models.lstm_model import EEGLSTM, LSTMConfig

        classifier = EEGLSTM(LSTMConfig(hidden_size=16), seed=0)
        classifier.ensure_network(8, 130)
        batcher = MicroBatcher(classifier)
        rng = np.random.default_rng(1)
        windows = rng.standard_normal((14, 8, 130)).astype(np.float32)

        def flush():
            for i in range(windows.shape[0]):
                batcher.submit(f"s{i}", windows[i])
            return batcher.flush()

        flush()
        result = flush()  # second same-size flush binds the plan arena
        assert result.specialized is True
        flush()  # the preprocess arena follows the plan arena one flush later
        stats = batcher.specialization_stats()
        assert stats["preprocess_arenas"] >= 1
        assert stats["preprocess_scratch_bytes"] > 0

        net_bytes, peak = _alloc_profile(flush)
        bound = 128 * 1024
        assert peak < bound, f"specialised flush peak {peak}B blows {bound}B"
        assert net_bytes < 4096, f"specialised flush retains {net_bytes}B"

    def test_specialized_flush_rows_match_the_generic_path(self):
        """Zero-allocation must not mean approximately-equal."""
        from repro.models.lstm_model import EEGLSTM, LSTMConfig

        def rows(specialize):
            classifier = EEGLSTM(LSTMConfig(hidden_size=16), seed=0)
            classifier.ensure_network(8, 130)
            batcher = MicroBatcher(classifier, specialize=specialize)
            rng = np.random.default_rng(2)
            out = []
            for _ in range(3):
                windows = rng.standard_normal((6, 8, 130)).astype(np.float32)
                for i in range(windows.shape[0]):
                    batcher.submit(f"s{i}", windows[i])
                result = batcher.flush()
                out.append([result.results[f"s{i}"] for i in range(6)])
            return np.asarray(out)

        np.testing.assert_array_equal(rows(True), rows(False))
