"""Deadline scheduler, admission control and router, on a virtual clock.

Every test here injects a :class:`tests.helpers.FakeClock`: latencies are
*simulated* (the stub classifier advances the clock), so assertions about
deadlines, queue waits and p95 budgets are exact rather than flaky
wall-clock approximations.
"""

import numpy as np
import pytest

from repro.core.config import CognitiveArmConfig
from repro.serving.scheduler import (
    SUBMIT_FLUSHED,
    SUBMIT_QUEUED,
    SUBMIT_SHED,
    SUBMIT_STALLED,
    AdmissionController,
    AsyncFleetScheduler,
    ModelRouter,
    SchedulerConfig,
)
from repro.serving.server import FleetServer
from repro.signals.synthetic import ACTION_LEFT, ACTION_RIGHT, ParticipantProfile
from tests.helpers import (
    ClockedStubClassifier,
    FakeClock,
    ScriptedSession,
    SimulatedLoad,
)

DEADLINE_S = 0.015


def make_scheduler(
    clock,
    n_sessions=4,
    classifier=None,
    scheduler_config=None,
    stall_every=None,
):
    """Scheduler over ScriptedSessions with a clock-driven stub classifier."""
    classifier = classifier or ClockedStubClassifier(clock)
    scheduler_config = scheduler_config or SchedulerConfig(deadline_s=DEADLINE_S)
    scheduler = AsyncFleetScheduler(
        classifier, scheduler_config=scheduler_config, clock=clock
    )
    for i in range(n_sessions):
        scheduler.add_session(
            ScriptedSession(f"s{i}", stall_every=stall_every, seed=i)
        )
    return scheduler


class TestSchedulerConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_s": 0.0},
            {"max_batch_size": 0},
            {"latency_budget_s": -0.1},
            {"admission_window": 0},
            {"recovery_fraction": 0.0},
            {"shed_ratio": 1.0},
            {"shed_ratio": 0.0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            SchedulerConfig(**kwargs)


class TestModelRouter:
    def test_single_classifier_becomes_default_cohort(self):
        classifier = ClockedStubClassifier()
        router = ModelRouter(classifier)
        assert router.cohorts == ("default",)
        assert router.resolve(None) == "default"
        assert router.classifier_for("default") is classifier

    def test_dict_preserves_cohort_order_and_default(self):
        a, b = ClockedStubClassifier(), ClockedStubClassifier()
        router = ModelRouter({"adults": a, "kids": b})
        assert router.cohorts == ("adults", "kids")
        assert router.default_cohort == "adults"
        assert router.resolve("kids") == "kids"

    def test_unknown_cohort_raises(self):
        router = ModelRouter({"adults": ClockedStubClassifier()})
        with pytest.raises(KeyError, match="unknown cohort"):
            router.classifier_for("ghosts")
        with pytest.raises(KeyError):
            ModelRouter({"a": ClockedStubClassifier()}, default_cohort="b")


class TestAdmissionController:
    def test_disabled_controller_admits_everything(self):
        controller = AdmissionController(budget_s=None)
        for latency in (1.0, 2.0, 3.0):
            controller.observe(latency)
        assert not controller.shedding
        assert all(controller.admit() for _ in range(100))

    def test_activates_exactly_when_p95_exceeds_budget(self):
        controller = AdmissionController(budget_s=0.010, window=8)
        controller.observe(0.010)  # p95 == budget: not over, still admitting
        assert not controller.shedding
        controller.observe(0.011)  # p95 now above budget
        assert controller.shedding
        assert controller.activations == 1

    def test_recovers_at_the_hysteresis_threshold(self):
        controller = AdmissionController(
            budget_s=0.010, window=4, recovery_fraction=0.5
        )
        controller.observe(0.020)
        assert controller.shedding
        controller.observe(0.004)  # p95 of [0.020, 0.004] still high
        assert controller.shedding
        for _ in range(3):  # flush 0.020 out of the sliding window
            controller.observe(0.004)
        assert controller.observed_p95() <= 0.005
        assert not controller.shedding

    def test_shed_ratio_sheds_the_configured_fraction(self):
        controller = AdmissionController(budget_s=0.010, shed_ratio=0.5)
        controller.observe(0.020)
        decisions = [controller.admit() for _ in range(100)]
        assert decisions.count(False) == 50  # every other submission shed
        assert controller.shed_count == 50

    def test_saturated_window_exactly_at_budget_never_triggers(self):
        # The trigger is strictly greater-than: a fleet running *at* its
        # budget is healthy, and a full window of exactly-at-budget samples
        # must never flip the controller.
        controller = AdmissionController(budget_s=0.010, window=8)
        for _ in range(8):
            controller.observe(0.010)
        assert controller.observed_p95() == pytest.approx(0.010)
        assert not controller.shedding
        assert controller.activations == 0
        assert all(controller.admit() for _ in range(50))

    def test_recovery_exactly_at_fraction_of_budget_recovers(self):
        # Recovery is inclusive: p95 == recovery_fraction * budget flips
        # the controller back to admitting.
        controller = AdmissionController(
            budget_s=0.010, window=4, recovery_fraction=0.5
        )
        controller.observe(0.020)
        assert controller.shedding
        for _ in range(4):  # flush the spike; land exactly on the threshold
            controller.observe(0.005)
        assert controller.observed_p95() == pytest.approx(0.005)
        assert not controller.shedding

    def test_lag_holds_shedding_after_latency_recovers(self):
        # Both signals share one state machine: a latency activation while
        # lag is also over the budget is a single activation, and recovery
        # needs *every* enabled signal back under its hysteresis threshold.
        controller = AdmissionController(
            budget_s=0.010, window=4, recovery_fraction=0.5, lag_budget_s=1.0
        )
        controller.observe(0.020)
        assert controller.shedding
        controller.observe_lag(2.0)  # lag joins in; no second activation
        assert controller.activations == 1
        for _ in range(4):  # latency fully recovers...
            controller.observe(0.004)
        assert controller.observed_p95() <= 0.005
        assert controller.shedding  # ...but lag still pins the state
        controller.observe_lag(0.5)  # exactly recovery_fraction * lag budget
        assert not controller.shedding


class TestDeadlineFlush:
    def test_due_time_is_arrival_plus_deadline(self):
        clock = FakeClock()
        scheduler = make_scheduler(clock, n_sessions=2)
        assert scheduler.next_flush_due_s() is None
        clock.advance_to(1.0)
        assert scheduler.submit("s0") == SUBMIT_QUEUED
        assert scheduler.next_flush_due_s() == pytest.approx(1.0 + DEADLINE_S)

    def test_pump_before_deadline_is_a_no_op(self):
        clock = FakeClock()
        scheduler = make_scheduler(clock)
        scheduler.submit("s0")
        clock.advance(DEADLINE_S / 2)
        assert scheduler.pump() == []
        assert scheduler.next_flush_due_s() is not None

    def test_pump_at_deadline_flushes_without_violation(self):
        clock = FakeClock()
        scheduler = make_scheduler(clock)
        scheduler.submit("s0")
        clock.advance(0.005)
        scheduler.submit("s1")  # younger window rides along with the oldest
        clock.advance_to(scheduler.next_flush_due_s())
        (event,) = scheduler.pump()
        assert event.reason == "deadline"
        assert event.batch_size == 2
        assert event.deadline_violations == 0
        assert event.max_queue_wait_s == pytest.approx(DEADLINE_S)
        assert scheduler.next_flush_due_s() is None

    def test_late_pump_counts_violations(self):
        clock = FakeClock()
        scheduler = make_scheduler(clock)
        scheduler.submit("s0")
        clock.advance(DEADLINE_S * 2)  # a sloppy driver overslept
        (event,) = scheduler.pump()
        assert event.deadline_violations == 1
        assert scheduler.telemetry.total_deadline_violations == 1

    def test_full_batch_flushes_inline(self):
        clock = FakeClock()
        config = SchedulerConfig(deadline_s=DEADLINE_S, max_batch_size=3)
        scheduler = make_scheduler(clock, n_sessions=3, scheduler_config=config)
        assert scheduler.submit("s0") == SUBMIT_QUEUED
        assert scheduler.submit("s1") == SUBMIT_QUEUED
        assert scheduler.submit("s2") == SUBMIT_FLUSHED
        record = scheduler.telemetry.records[-1]
        assert record.flush_reason == "full"
        assert record.batch_size == 3
        assert scheduler.next_flush_due_s() is None
        # The inline flush is observable through last_flush_event.
        event = scheduler.last_flush_event
        assert event.reason == "full"
        assert set(event.ticks) == {"s0", "s1", "s2"}

    def test_stalled_submission_is_counted_not_queued(self):
        clock = FakeClock()
        scheduler = make_scheduler(clock, n_sessions=1, stall_every=1)
        assert scheduler.submit("s0") == SUBMIT_STALLED
        assert scheduler.next_flush_due_s() is None
        assert scheduler.drain() == []  # nothing pending to flush
        # ... but the stall still reaches telemetry, on an empty record that
        # the latency percentiles ignore.
        (record,) = scheduler.telemetry.records
        assert record.batch_size == 0
        assert record.stalled_sessions == 1
        assert scheduler.telemetry.latency_percentiles()["p50"] == 0.0

    def test_drain_flushes_ahead_of_deadline(self):
        clock = FakeClock()
        scheduler = make_scheduler(clock)
        scheduler.submit("s0")
        (event,) = scheduler.drain()
        assert event.reason == "drain"
        assert event.deadline_violations == 0
        assert scheduler.next_flush_due_s() is None

    def test_lockstep_tick_refuses_to_interleave_with_queued_submits(self):
        clock = FakeClock()
        scheduler = make_scheduler(clock, n_sessions=2)
        scheduler.submit("s0")
        with pytest.raises(RuntimeError, match="drain"):
            scheduler.tick()  # would apply s0's queued window out of order
        scheduler.drain()
        assert scheduler.tick()  # clean queues: lock-step mode works again

    def test_pump_horizon_flushes_early_for_busy_drivers(self):
        clock = FakeClock()
        scheduler = make_scheduler(clock)
        scheduler.submit("s0")
        clock.advance(0.010)  # 5 ms of slack left on the deadline
        assert scheduler.pump() == []  # not due yet
        with pytest.raises(ValueError):
            scheduler.pump(horizon_s=-1.0)
        (event,) = scheduler.pump(horizon_s=0.006)  # driver about to be busy
        assert event.reason == "deadline"
        assert event.deadline_violations == 0
        assert event.max_queue_wait_s == pytest.approx(0.010)  # early, not late

    def test_fresh_window_supersedes_stale_queued_window(self):
        # A session outrunning the flush cadence must not crash the flush
        # (MicroBatcher rejects duplicate ids) — the stale window is dropped.
        clock = FakeClock()
        scheduler = make_scheduler(clock, n_sessions=2)
        scheduler.submit("s0")
        clock.advance(0.002)
        scheduler.submit("s1")
        clock.advance(0.002)
        assert scheduler.submit("s0") == SUBMIT_QUEUED  # resubmit, no flush yet
        assert scheduler.superseded_by_session["s0"] == 1
        (event,) = scheduler.drain()
        assert event.batch_size == 2  # one window per session, fresh s0 kept
        assert set(event.ticks) == {"s0", "s1"}
        # FIFO is preserved: the oldest *remaining* window is now s1's.
        assert event.max_queue_wait_s == pytest.approx(0.002)
        assert scheduler.get_session("s0").labels_emitted() == 1

    def test_departed_session_rows_are_dropped_safely(self):
        clock = FakeClock()
        scheduler = make_scheduler(clock, n_sessions=2)
        scheduler.submit("s0")
        scheduler.submit("s1")
        removed = scheduler.remove_session("s1")
        (event,) = scheduler.drain()
        assert set(event.ticks) == {"s0"}
        assert removed.labels_emitted() == 0


class TestModelRouting:
    def test_each_cohort_served_by_its_own_plan(self):
        clock = FakeClock()
        adults = ClockedStubClassifier(clock, peak_class=0)
        kids = ClockedStubClassifier(clock, peak_class=2)
        scheduler = AsyncFleetScheduler(
            {"adults": adults, "kids": kids},
            scheduler_config=SchedulerConfig(deadline_s=DEADLINE_S),
            clock=clock,
        )
        sessions = {}
        for i in range(4):
            cohort = "adults" if i % 2 == 0 else "kids"
            sessions[f"s{i}"] = scheduler.add_session(
                ScriptedSession(f"s{i}", seed=i), cohort=cohort
            )
        for sid in sessions:
            scheduler.submit(sid)
        events = scheduler.drain()
        assert {e.cohort for e in events} == {"adults", "kids"}
        # Each cohort's classifier saw exactly its own two windows ...
        assert adults.batch_sizes == [2]
        assert kids.batch_sizes == [2]
        # ... and each session's probabilities peak at its cohort's class.
        for sid, session in sessions.items():
            (probs, _latency) = session.applied[0]
            expected_peak = 0 if scheduler.cohort_of(sid) == "adults" else 2
            assert int(np.argmax(probs)) == expected_peak

    def test_unknown_cohort_rejected_at_attach(self):
        scheduler = AsyncFleetScheduler(ClockedStubClassifier(), clock=FakeClock())
        with pytest.raises(KeyError):
            scheduler.add_session(ScriptedSession("s0"), cohort="ghosts")


class TestNominalLoadProperties:
    """Acceptance: 32 sessions, 15 ms deadline, no violations, no drops."""

    def _run(self, jitter_s=0.0, seconds=30.0):
        clock = FakeClock()
        classifier = ClockedStubClassifier(
            clock, base_latency_s=0.001, per_row_s=0.0001
        )
        scheduler = make_scheduler(
            clock,
            n_sessions=32,
            classifier=classifier,
            scheduler_config=SchedulerConfig(deadline_s=DEADLINE_S, max_batch_size=32),
        )
        load = SimulatedLoad(scheduler, clock, period_s=1 / 15.0, jitter_s=jitter_s)
        load.run(seconds)
        return scheduler, load

    @pytest.mark.parametrize("jitter_s", [0.0, 0.02])
    def test_no_window_waits_past_its_deadline(self, jitter_s):
        scheduler, load = self._run(jitter_s=jitter_s)
        assert load.submissions > 32 * 14 * 15  # the fleet really ran
        assert scheduler.telemetry.total_deadline_violations == 0
        assert all(e.deadline_violations == 0 for e in load.flush_events)
        assert scheduler.telemetry.max_queue_wait_s() <= DEADLINE_S + 1e-9

    def test_zero_dropped_results(self):
        scheduler, load = self._run()
        accepted = load.outcomes[SUBMIT_QUEUED] + load.outcomes[SUBMIT_FLUSHED]
        applied = sum(len(s.applied) for s in scheduler.sessions)
        assert load.outcomes[SUBMIT_SHED] == 0
        # Precondition for the accounting below: the 66 ms label period far
        # exceeds the 15 ms deadline, so no window is ever superseded.
        assert sum(scheduler.superseded_by_session.values()) == 0
        assert applied == accepted  # every admitted window produced a result
        assert scheduler.telemetry.total_labels == accepted

    def test_latency_accounting_is_exact_under_the_fake_clock(self):
        scheduler, load = self._run()
        for record in scheduler.telemetry.records:
            if record.batch_size:
                expected = 0.001 + 0.0001 * record.batch_size
                assert record.batch_latency_s == pytest.approx(expected)


class TestOverloadShedding:
    """Acceptance: overload sheds (never blocks) and telemetry reports it."""

    def _overloaded(self):
        clock = FakeClock()
        # 32 sessions at 15 Hz with 2 ms/row: the unshedded service rate is
        # below the arrival rate, so flush latencies grow past the 20 ms p95
        # budget and the controller must start shedding.
        classifier = ClockedStubClassifier(clock, base_latency_s=0.002, per_row_s=0.002)
        config = SchedulerConfig(
            deadline_s=DEADLINE_S,
            max_batch_size=32,
            latency_budget_s=0.020,
            admission_window=16,
            recovery_fraction=0.5,
            shed_ratio=0.5,
        )
        scheduler = make_scheduler(
            clock, n_sessions=32, classifier=classifier, scheduler_config=config
        )
        return clock, scheduler

    def test_sheds_with_telemetry_and_never_blocks(self):
        clock, scheduler = self._overloaded()
        # Jitter breaks the parity lock between a perfectly periodic fleet
        # and the 1-in-2 shed accumulator, so degradation spreads fairly.
        load = SimulatedLoad(clock=clock, scheduler=scheduler, period_s=1 / 15.0, jitter_s=0.01)
        load.run(30.0)
        assert scheduler.admission.activations >= 1
        assert load.outcomes[SUBMIT_SHED] > 0
        assert scheduler.telemetry.total_shed == load.outcomes[SUBMIT_SHED]
        assert scheduler.report().fleet["shed_windows"] == load.outcomes[SUBMIT_SHED]
        # Shedding degrades sessions, it does not drop admitted work:
        accepted = load.outcomes[SUBMIT_QUEUED] + load.outcomes[SUBMIT_FLUSHED]
        assert sum(len(s.applied) for s in scheduler.sessions) == accepted
        # Degraded sessions keep being served between sheds.
        assert all(len(s.applied) > 0 for s in scheduler.sessions)

    def test_recovers_once_the_overload_clears(self):
        clock, scheduler = self._overloaded()
        classifier = scheduler.router.classifier_for("default")
        SimulatedLoad(scheduler, clock, period_s=1 / 15.0).run(20.0)
        assert scheduler.admission.shedding
        classifier.per_row_s = 0.00001  # the backend recovers ...
        classifier.base_latency_s = 0.0001
        SimulatedLoad(scheduler, clock, period_s=1 / 15.0).run(20.0)
        assert not scheduler.admission.shedding  # ... and admission reopens
        late = [
            r
            for r in scheduler.telemetry.records[-10:]
            if r.batch_size and r.shed_sessions == 0
        ]
        assert late  # tail of the run is served unshedded


class TestLockStepEquivalence:
    """Scheduler in lock-step mode == FleetServer.tick, bit for bit."""

    def _sessions_kwargs(self):
        return [
            dict(
                session_id=f"eq-{seed}",
                profile=ParticipantProfile(participant_id=f"EQ{seed}", seed=seed),
                stall_ticks={3, 4} if seed == 1 else None,
            )
            for seed in range(3)
        ]

    def test_bit_for_bit_against_fleet_server(self, serving_config):
        actions = {0: ACTION_RIGHT, 6: ACTION_LEFT, 12: ACTION_RIGHT}

        server_clock = FakeClock()
        server = FleetServer(
            ClockedStubClassifier(server_clock, base_latency_s=0.003, per_row_s=0.001),
            serving_config,
            clock=server_clock,
        )
        sched_clock = FakeClock()
        scheduler = AsyncFleetScheduler(
            ClockedStubClassifier(sched_clock, base_latency_s=0.003, per_row_s=0.001),
            serving_config,
            clock=sched_clock,
        )
        for kwargs in self._sessions_kwargs():
            server.add_session(**kwargs)
            scheduler.add_session(**kwargs)

        for tick_index in range(18):
            for fleet in (server.sessions, scheduler.sessions):
                if tick_index in actions:
                    for session in fleet:
                        session.set_action(actions[tick_index])
            server_ticks = server.tick()
            scheduler_ticks = scheduler.tick()
            assert set(server_ticks) == set(scheduler_ticks)
            for session_id, reference in server_ticks.items():
                assert scheduler_ticks[session_id] == reference  # dataclass eq

        assert scheduler.telemetry.records == server.telemetry.records
        server_report, scheduler_report = server.report(), scheduler.report()
        assert scheduler_report.fleet == server_report.fleet
        assert scheduler_report.sessions == server_report.sessions


class TestEmptyFlushLatencySkew:
    """Satellite fix: all-stalled ticks must not drag p50 toward zero."""

    def test_all_stalled_ticks_excluded_from_percentiles(self):
        clock = FakeClock()
        classifier = ClockedStubClassifier(clock, base_latency_s=0.010)
        scheduler = AsyncFleetScheduler(classifier, clock=clock)
        scheduler.add_session(ScriptedSession("s0", stall_every=2))
        for _ in range(40):
            scheduler.tick()  # every other tick has an empty batch
        percentiles = scheduler.telemetry.latency_percentiles()
        assert percentiles["p50"] == pytest.approx(0.010)
        # Stall accounting still sees the empty ticks.
        assert scheduler.telemetry.stall_rate() == pytest.approx(0.5)


class TestStreamLagAdmission:
    """Satellite: upstream stream lag feeds the admission controller."""

    def test_lag_budget_alone_enables_the_controller(self):
        controller = AdmissionController(budget_s=None, lag_budget_s=0.2)
        assert controller.enabled

    def test_lag_budget_activates_and_recovers_with_hysteresis(self):
        controller = AdmissionController(
            budget_s=None, lag_budget_s=0.2, recovery_fraction=0.5
        )
        controller.observe_lag(0.15)
        assert not controller.shedding
        controller.observe_lag(0.25)
        assert controller.shedding
        assert controller.activations == 1
        controller.observe_lag(0.15)  # below budget but above 0.5 * budget
        assert controller.shedding
        controller.observe_lag(0.05)
        assert not controller.shedding

    def test_observe_carries_lag_alongside_latency(self):
        controller = AdmissionController(budget_s=1.0, lag_budget_s=0.2)
        controller.observe(0.001, stream_lag_s=0.5)
        assert controller.shedding  # healthy latency, lag tripped it
        assert controller.last_stream_lag_s == 0.5

    def test_both_budgets_must_recover_before_admission_resumes(self):
        controller = AdmissionController(
            budget_s=0.010, window=4, lag_budget_s=0.2, recovery_fraction=0.5
        )
        controller.observe(0.020, stream_lag_s=0.5)
        assert controller.shedding
        for _ in range(4):  # latency recovers, lag still over budget
            controller.observe(0.001)
        assert controller.shedding
        controller.observe_lag(0.05)
        assert not controller.shedding


class TestWorkerDeathRequeue:
    """Satellite: a dead shard worker requeues its flush instead of
    poisoning the cohort."""

    @staticmethod
    def _dying_executor():
        from repro.serving.batcher import execute_windows
        from repro.serving.executors import CompletedTicket, WorkerDiedError

        class DyingTicket:
            def done(self):
                return True

            def result(self, timeout=None):
                raise WorkerDiedError(
                    "default", pending=(self,), detail="test kill"
                )

        class DyingExecutor:
            serializes_flushes = False
            remote_execution = False

            def __init__(self):
                self.fail_next = True

            def bind(self, classifiers, clock):
                self._classifiers = dict(classifiers)
                self._clock = clock

            def submit_flush(self, cohort, prepared):
                if self.fail_next:
                    return DyingTicket()
                return CompletedTicket(
                    execute_windows(
                        self._classifiers[cohort],
                        prepared.windows,
                        prepared.chunk_size,
                        clock=self._clock,
                    )
                )

            def shutdown(self):
                pass

        return DyingExecutor()

    def test_error_carries_cohort_and_pending_tickets(self):
        from repro.serving.executors import WorkerDiedError

        ticket = object()
        error = WorkerDiedError("adults", pending=(ticket,), detail="exitcode -9")
        assert error.cohort == "adults"
        assert error.pending == (ticket,)
        assert "adults" in str(error) and "1 flush(es)" in str(error)
        assert "exitcode -9" in str(error)

    def test_dead_worker_flush_requeues_and_recovers(self):
        clock = FakeClock()
        executor = self._dying_executor()
        classifier = ClockedStubClassifier(clock)
        scheduler = AsyncFleetScheduler(
            classifier,
            scheduler_config=SchedulerConfig(deadline_s=DEADLINE_S),
            clock=clock,
            executor=executor,
        )
        for i in range(2):
            scheduler.add_session(ScriptedSession(f"s{i}", seed=i))
        for session in scheduler.sessions:
            assert scheduler.submit(session.session_id) == SUBMIT_QUEUED
        clock.advance(DEADLINE_S)
        from repro.serving.executors import WorkerDiedError

        with pytest.raises(WorkerDiedError):
            scheduler.pump()
        # Nothing was lost: the windows are queued again with deadlines
        # re-derived from the failed flush's start.
        due = scheduler.next_flush_due_s()
        assert due == pytest.approx(2 * DEADLINE_S)
        executor.fail_next = False
        clock.advance_to(due)
        (event,) = scheduler.pump()
        assert event.batch_size == 2
        applied = sum(len(s.applied) for s in scheduler.sessions)
        assert applied == 2

    def test_requeue_respects_fresher_windows_and_departures(self):
        clock = FakeClock()
        executor = self._dying_executor()
        scheduler = AsyncFleetScheduler(
            ClockedStubClassifier(clock),
            scheduler_config=SchedulerConfig(deadline_s=DEADLINE_S),
            clock=clock,
            executor=executor,
        )
        for i in range(3):
            scheduler.add_session(ScriptedSession(f"s{i}", seed=i))
        for session in scheduler.sessions:
            scheduler.submit(session.session_id)
        clock.advance(DEADLINE_S)
        from repro.serving.executors import WorkerDiedError

        with pytest.raises(WorkerDiedError):
            scheduler.pump()
        # s0 departs while its window waits to be requeued-and-served,
        # s1 queues a fresher window: the stale copy is superseded.
        scheduler.remove_session("s0")
        assert scheduler.submit("s1") == SUBMIT_QUEUED
        executor.fail_next = False
        scheduler.drain()
        assert scheduler.superseded_by_session["s1"] == 1
        assert len(scheduler.get_session("s1").applied) == 1
        assert len(scheduler.get_session("s2").applied) == 1
