"""Chaos soaks: scripted faults against the self-healing shard fleet.

Everything here runs on the FakeClock against the simulated shard backend
(:class:`repro.serving.chaos.SimulatedShardExecutor`) — the same
supervision policy and error types as the real process backend, but
deaths, backoffs and stalls are exact virtual-time events.  That is what
lets a multi-thousand-virtual-second soak with a dozen kills run in
seconds and still be compared row-for-row against an uninjected run.

The default run is sized for tier-1; set ``REPRO_CHAOS_SOAK=1`` (the CI
``chaos-soak`` job does) for the full 10k-virtual-second, 32-session soak.
"""

import os

import numpy as np
import pytest

from repro.serving.chaos import (
    KILL,
    PIPE_CLOSE,
    STALL,
    ChaosLoad,
    FaultInjector,
    Injection,
    SimulatedShardExecutor,
    recovery_latencies,
    window_conservation,
)
from repro.serving.executors import (
    WORKER_RESPAWNING,
    WORKER_RUNNING,
    ExecutorClosedError,
    SupervisorConfig,
    WorkerDiedError,
)
from repro.serving.scheduler import AsyncFleetScheduler, SchedulerConfig
from tests.helpers import (
    ClockedStubClassifier,
    FakeClock,
    ScriptedSession,
    hard_timeout,
)

SOAK = os.environ.get("REPRO_CHAOS_SOAK") == "1"
DURATION_S = 10_000.0 if SOAK else 600.0
N_SESSIONS = 32 if SOAK else 8
PERIOD_S = 5.0
DEADLINE_S = 1.0

#: Backoff budget chosen so every recovery chain (including consecutive
#: respawn failures) completes well inside one submission period.
SUPERVISION = SupervisorConfig(
    max_restarts=3,
    restart_window_s=60.0,
    backoff_initial_s=0.05,
    backoff_max_s=0.4,
    backoff_factor=2.0,
    jitter_fraction=0.1,
    seed=7,
)


def make_fleet(clock, n_sessions=N_SESSIONS):
    """Two-cohort scheduler over the simulated shard backend."""
    scheduler = AsyncFleetScheduler(
        {
            "a": ClockedStubClassifier(peak_class=0),
            "b": ClockedStubClassifier(peak_class=1),
        },
        scheduler_config=SchedulerConfig(deadline_s=DEADLINE_S),
        clock=clock,
        executor=SimulatedShardExecutor(supervisor_config=SUPERVISION),
    )
    for i in range(n_sessions):
        scheduler.add_session(
            ScriptedSession(f"s{i}", seed=i), cohort="a" if i % 2 == 0 else "b"
        )
    return scheduler


def run_fleet(schedule, duration_s=DURATION_S, n_sessions=N_SESSIONS):
    """One full run under a fault schedule; returns (scheduler, load)."""
    clock = FakeClock()
    scheduler = make_fleet(clock, n_sessions)
    injector = FaultInjector(schedule, clock)
    injector.arm(scheduler.executor)
    load = ChaosLoad(scheduler, clock, injector, period_s=PERIOD_S).run(
        duration_s
    )
    return scheduler, load, injector


# ---------------------------------------------------------------------- #
# fault schedules (times are fractions of the run so both sizes work)
# ---------------------------------------------------------------------- #
def kill_storm(duration_s):
    """12 idle kills alternating between the two cohorts."""
    step = duration_s / 13
    return [
        Injection(
            at_s=(k + 1) * step + 0.37,
            kind=KILL,
            cohort="a" if k % 2 == 0 else "b",
            phase="idle",
        )
        for k in range(12)
    ]


def mixed_mayhem(duration_s):
    """Kills mid-flush and idle, plus pipe closes and slow-worker stalls."""
    step = duration_s / 12
    schedule = [
        Injection(
            at_s=(k + 1) * step + 0.13,
            kind=KILL,
            cohort="a" if k % 3 == 0 else "b",
            phase="mid-flush" if k % 2 == 0 else "idle",
        )
        for k in range(10)
    ]
    schedule.append(
        Injection(at_s=2.5 * step, kind=STALL, cohort="a", duration_s=0.8)
    )
    schedule.append(
        Injection(at_s=7.5 * step, kind=STALL, cohort="b", duration_s=0.5)
    )
    schedule.append(Injection(at_s=5.5 * step, kind=PIPE_CLOSE, cohort="b"))
    return schedule


def respawn_gauntlet(duration_s):
    """Idle kills, every third immediately chained with a respawn failure."""
    step = duration_s / 12
    schedule = []
    for k in range(10):
        at = (k + 1) * step
        cohort = "a" if k % 2 == 0 else "b"
        schedule.append(Injection(at_s=at, kind=KILL, cohort=cohort, phase="idle"))
        if k % 3 == 0:
            schedule.append(
                Injection(at_s=at + 0.01, kind=KILL, cohort=cohort, phase="respawn")
            )
    return schedule


def quarantine_blitz(duration_s):
    """Four rapid kills on one cohort inside the restart window: quarantine."""
    base = duration_s * 0.25
    return [
        Injection(at_s=base + 5.0 * k, kind=KILL, cohort="a", phase="idle")
        for k in range(4)
    ]


SCHEDULES = {
    "kill-storm": kill_storm,
    "mixed-mayhem": mixed_mayhem,
    "respawn-gauntlet": respawn_gauntlet,
    "quarantine-blitz": quarantine_blitz,
}

#: Fewest kill injections each schedule must land for the soak to count.
MIN_KILLS = {
    "kill-storm": 12,
    "mixed-mayhem": 10,
    "respawn-gauntlet": 10,
    "quarantine-blitz": 4,
}

_BASELINE = {}


def baseline_applied():
    """Per-session applied probabilities of the uninjected reference run."""
    key = (DURATION_S, N_SESSIONS)
    if key not in _BASELINE:
        scheduler, load, _ = run_fleet([])
        assert scheduler.worker_deaths == 0
        _BASELINE[key] = {
            s.session_id: np.stack([p for p, _ in s.applied])
            for s in scheduler.sessions
        }
    return _BASELINE[key]


class TestChaosSoak:
    @pytest.mark.parametrize("name", sorted(SCHEDULES))
    def test_soak_conserves_recovers_and_matches_uninjected(self, name):
        schedule = SCHEDULES[name](DURATION_S)
        with hard_timeout(
            540 if SOAK else 180, what=f"chaos soak ({name})"
        ):
            scheduler, load, injector = run_fleet(schedule)
            reference = baseline_applied()

        # The whole schedule landed, with enough kills to mean something.
        assert injector.exhausted
        kills = sum(1 for i in injector.applied if i.kind == KILL)
        assert kills >= MIN_KILLS[name]
        assert scheduler.worker_deaths > 0

        # Conservation: every admitted window is applied or superseded —
        # and this fleet is sized so nothing is ever superseded, which is
        # what makes the row-for-row comparison below exact.
        conservation = window_conservation(scheduler, load)
        assert conservation["holds"] == 1
        assert conservation["queued"] == 0
        assert conservation["superseded"] == 0
        assert conservation["applied"] == conservation["admitted"]

        # Bounded recovery: every death is followed by served traffic
        # within the worst-case respawn chain plus one flush deadline.
        budget = (
            SUPERVISION.max_backoff_budget_s() * (SUPERVISION.max_restarts + 1)
            + DEADLINE_S
            + PERIOD_S
        )
        latencies = recovery_latencies(scheduler.telemetry)
        assert latencies, "no recovery was ever observed"
        for cohort, delays in latencies.items():
            assert max(delays) <= budget, (cohort, max(delays))

        # Row-identical results: the recovered run classifies exactly the
        # windows the uninjected run does, in the same per-session order.
        for session in scheduler.sessions:
            got = np.stack([p for p, _ in session.applied])
            np.testing.assert_allclose(
                got, reference[session.session_id], atol=1e-7, rtol=0
            )

        assert scheduler.telemetry.worker_death_count() == scheduler.worker_deaths
        scheduler.shutdown()

    def test_quarantine_degrades_to_serial_fallback(self):
        with hard_timeout(540 if SOAK else 180, what="quarantine soak"):
            scheduler, load, injector = run_fleet(
                quarantine_blitz(DURATION_S)
            )
        health = scheduler.fleet_health()
        assert health["a"]["state"] == "degraded"
        assert health["b"]["state"] == WORKER_RUNNING
        degraded = [
            r
            for r in scheduler.telemetry.records
            if r.cohort == "a" and r.degraded and r.batch_size > 0
        ]
        assert degraded, "quarantined cohort never served from its fallback"
        assert all(r.worker.startswith("degraded:") for r in degraded)
        conservation = window_conservation(scheduler, load)
        assert conservation["holds"] == 1
        scheduler.shutdown()


class TestInjectionValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown injection kind"):
            Injection(at_s=1.0, kind="meteor", cohort="a")

    def test_unknown_kill_phase_rejected(self):
        with pytest.raises(ValueError, match="unknown kill phase"):
            Injection(at_s=1.0, kind=KILL, cohort="a", phase="sideways")

    def test_stall_needs_positive_duration(self):
        with pytest.raises(ValueError, match="positive duration"):
            Injection(at_s=1.0, kind=STALL, cohort="a")


class TestFaultInjector:
    class _Recorder:
        def __init__(self):
            self.calls = []

        def inject_kill(self, cohort, phase="idle"):
            self.calls.append((KILL, cohort, phase))

        def inject_pipe_close(self, cohort):
            self.calls.append((PIPE_CLOSE, cohort))

        def inject_stall(self, cohort, duration_s):
            self.calls.append((STALL, cohort, duration_s))

    def test_poll_requires_arming(self):
        injector = FaultInjector(
            [Injection(at_s=0.0, kind=KILL, cohort="a")], FakeClock()
        )
        with pytest.raises(RuntimeError, match="not armed"):
            injector.poll()

    def test_arm_rejects_executors_without_the_chaos_surface(self):
        injector = FaultInjector([], FakeClock())
        with pytest.raises(TypeError, match="chaos surface"):
            injector.arm(object())

    def test_fires_in_time_order_exactly_once(self):
        clock = FakeClock()
        schedule = [
            Injection(at_s=2.0, kind=PIPE_CLOSE, cohort="b"),
            Injection(at_s=1.0, kind=KILL, cohort="a", phase="mid-flush"),
            Injection(at_s=3.0, kind=STALL, cohort="a", duration_s=0.5),
        ]
        injector = FaultInjector(schedule, clock)
        recorder = self._Recorder()
        injector.arm(recorder)
        assert injector.next_at_s() == 1.0
        assert injector.poll() == []  # nothing due at t=0
        clock.advance(2.0)
        fired = injector.poll()
        assert [i.kind for i in fired] == [KILL, PIPE_CLOSE]
        assert recorder.calls == [(KILL, "a", "mid-flush"), (PIPE_CLOSE, "b")]
        assert injector.poll() == []  # no double fire
        clock.advance(1.0)
        injector.poll()
        assert injector.exhausted
        assert injector.next_at_s() is None
        assert len(injector.applied) == 3


class TestSimulatedExecutorContract:
    """The simulator honours the same lifecycle contract as the real one."""

    def _bound(self):
        clock = FakeClock()
        executor = SimulatedShardExecutor(supervisor_config=SUPERVISION)
        executor.bind({"default": ClockedStubClassifier()}, clock)
        return executor, clock

    def _prepared(self):
        from repro.serving.batcher import PreparedBatch

        rng = np.random.default_rng(0)
        return PreparedBatch(
            session_ids=["x"], windows=rng.standard_normal((1, 2, 4)), chunk_size=8
        )

    def test_idle_kill_respawns_after_backoff(self):
        executor, clock = self._bound()
        prepared = self._prepared()
        executor.inject_kill("default", phase="idle")
        with pytest.raises(WorkerDiedError):
            executor.submit_flush("default", prepared)
        assert executor.worker_state("default") == WORKER_RESPAWNING
        retry_at = executor.respawn_due_s("default")
        assert retry_at is not None
        clock.advance_to(retry_at)
        execution = executor.submit_flush("default", prepared).result()
        assert execution.worker == "sim:default"
        assert executor.worker_state("default") == WORKER_RUNNING
        assert executor.restart_count("default") == 1

    def test_mid_flush_kill_carries_the_pending_ticket(self):
        executor, clock = self._bound()
        executor.inject_kill("default", phase="mid-flush")
        ticket = executor.submit_flush("default", self._prepared())
        with pytest.raises(WorkerDiedError) as err:
            ticket.result()
        assert err.value.pending == (ticket,)
        assert executor.worker_state("default") == WORKER_RESPAWNING

    def test_stall_advances_virtual_time_by_the_scripted_amount(self):
        executor, clock = self._bound()
        executor.inject_stall("default", 1.5)
        before = clock.now()
        executor.submit_flush("default", self._prepared()).result()
        assert clock.now() - before == pytest.approx(1.5)

    def test_shutdown_is_idempotent_and_terminal(self):
        executor, clock = self._bound()
        executor.shutdown()
        executor.shutdown()
        with pytest.raises(ExecutorClosedError):
            executor.submit_flush("default", self._prepared())
        with pytest.raises(ExecutorClosedError):
            executor.bind({"default": ClockedStubClassifier()}, clock)
        with pytest.raises(ExecutorClosedError):
            executor.swap_plan("default", ClockedStubClassifier())


class TestHotSwap:
    def _fleet(self, clock, n_sessions=4, max_batch_size=4):
        scheduler = AsyncFleetScheduler(
            {"default": ClockedStubClassifier(peak_class=0)},
            scheduler_config=SchedulerConfig(
                deadline_s=DEADLINE_S, max_batch_size=max_batch_size
            ),
            clock=clock,
            executor=SimulatedShardExecutor(supervisor_config=SUPERVISION),
        )
        for i in range(n_sessions):
            scheduler.add_session(ScriptedSession(f"s{i}", seed=i))
        return scheduler

    def test_swap_under_traffic_drops_nothing_and_never_mixes_versions(self):
        clock = FakeClock()
        scheduler = self._fleet(clock)
        for tick in range(40):
            if tick == 20:
                assert scheduler.swap_plan(
                    "default", classifier=ClockedStubClassifier(peak_class=2)
                ) == 2
            for i in range(4):  # batch fills: each round flushes inline
                scheduler.submit(f"s{i}")
            clock.advance(1.0)
        scheduler.drain()

        # Zero dropped or requeued flushes under the swap.
        assert scheduler.worker_deaths == 0
        assert all(
            r.flush_reason != "worker-died"
            for r in scheduler.telemetry.records
        )
        for session in scheduler.sessions:
            assert session.labels_emitted() == 40

        # Every flush served entirely on one plan, versions monotonic.
        served = [
            r
            for r in scheduler.telemetry.records
            if r.cohort and r.batch_size > 0
        ]
        versions = [r.plan_version for r in served]
        assert set(versions) == {1, 2}
        assert versions == sorted(versions)

        # Telemetry pins the transition tick.
        transitions = scheduler.telemetry.plan_version_transitions()
        assert list(transitions) == ["default"]
        ((tick_index, old, new),) = transitions["default"]
        assert (old, new) == (1, 2)
        first_v2 = next(r for r in served if r.plan_version == 2)
        assert tick_index == first_v2.tick_index

        assert scheduler.plan_swaps == 1
        assert scheduler.plan_version("default") == 2
        assert scheduler.executor.acked_plan_version("default") == 2
        scheduler.shutdown()

    def test_swap_while_respawning_serves_new_plan_after_recovery(self):
        clock = FakeClock()
        scheduler = self._fleet(clock, max_batch_size=32)
        executor = scheduler.executor
        scheduler.submit("s0")
        executor.inject_kill("default", phase="idle")
        clock.advance(DEADLINE_S)
        scheduler.pump()  # death discovered at the flush; healed + requeued
        assert scheduler.worker_deaths == 1
        assert executor.worker_state("default") == WORKER_RESPAWNING

        version = scheduler.swap_plan(
            "default", classifier=ClockedStubClassifier(peak_class=2)
        )
        assert version == 2
        assert executor.plan_version("default") == 2
        assert executor.acked_plan_version("default") == 1  # not yet respawned

        clock.advance_to(executor.respawn_due_s("default"))
        events = scheduler.pump()
        assert [e.reason for e in events] == ["deadline"]
        record = scheduler.telemetry.records[-1]
        assert record.plan_version == 2  # respawn image was the new plan
        assert executor.acked_plan_version("default") == 2
        scheduler.shutdown()

    def test_swap_requires_exactly_one_plan_source(self):
        clock = FakeClock()
        scheduler = self._fleet(clock)
        with pytest.raises(ValueError, match="exactly one"):
            scheduler.swap_plan("default")
        with pytest.raises(ValueError, match="exactly one"):
            scheduler.swap_plan(
                "default", payload=b"x", classifier=ClockedStubClassifier()
            )
        scheduler.shutdown()
