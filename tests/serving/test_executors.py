"""Pluggable flush execution: batcher phase split, executors, in-flight flushes.

Deterministic tests run on the FakeClock with clock-driven stub classifiers
(exact latencies); the process-shard tests use real compiled plans and the
real clock, wrapped in a hard wall-clock timeout so a wedged worker fails
fast and attributably.
"""

import numpy as np
import pytest

from repro.models.lstm_model import EEGLSTM, LSTMConfig
from repro.serving.batcher import MicroBatcher, PreparedBatch, execute_windows
from repro.serving.executors import (
    WORKER_QUARANTINED,
    WORKER_RESPAWNING,
    WORKER_RUNNING,
    ExecutorClosedError,
    FlushExecutionError,
    ProcessShardExecutor,
    SerialExecutor,
    ShardSupervisor,
    SupervisorConfig,
    ThreadPoolFlushExecutor,
    WorkerDiedError,
)
from repro.serving.scheduler import (
    SUBMIT_FLUSHED,
    SUBMIT_QUEUED,
    AsyncFleetScheduler,
    SchedulerConfig,
)
from repro.utils.timing import SYSTEM_CLOCK
from tests.helpers import (
    ClockedStubClassifier,
    FakeClock,
    ScriptedSession,
    SimulatedLoad,
    hard_timeout,
)

DEADLINE_S = 0.015


def make_scheduler(clock, n_sessions=4, executor=None, classifier=None, **sched_kwargs):
    classifier = classifier or ClockedStubClassifier(clock)
    scheduler = AsyncFleetScheduler(
        classifier,
        scheduler_config=SchedulerConfig(deadline_s=DEADLINE_S, **sched_kwargs),
        clock=clock,
        executor=executor,
    )
    for i in range(n_sessions):
        scheduler.add_session(ScriptedSession(f"s{i}", seed=i))
    return scheduler


# ---------------------------------------------------------------------- #
# MicroBatcher three-phase split
# ---------------------------------------------------------------------- #
class TestBatcherPhases:
    def test_prepare_returns_none_when_empty(self):
        batcher = MicroBatcher(ClockedStubClassifier())
        assert batcher.prepare() is None

    def test_flush_equals_manual_three_phase_composition(self):
        clock = FakeClock()
        rng = np.random.default_rng(0)
        windows = {f"s{i}": rng.standard_normal((2, 4)) for i in range(5)}
        one = MicroBatcher(ClockedStubClassifier(clock, base_latency_s=0.002),
                           max_batch_size=2, clock=clock)
        two = MicroBatcher(ClockedStubClassifier(clock, base_latency_s=0.002),
                           max_batch_size=2, clock=clock)
        for sid, window in windows.items():
            one.submit(sid, window)
            two.submit(sid, window)
        direct = one.flush()
        prepared = two.prepare()
        manual = two.finalize(prepared, two.execute(prepared))
        assert direct.batch_sizes == manual.batch_sizes == [2, 2, 1]
        assert direct.latency_s == manual.latency_s
        assert set(direct.results) == set(manual.results)
        for sid in windows:
            np.testing.assert_array_equal(direct.results[sid], manual.results[sid])

    def test_single_chunk_skips_the_concatenate_copy(self):
        returned = []

        class Recording(ClockedStubClassifier):
            def predict_proba(self, windows):
                probs = super().predict_proba(windows)
                returned.append(probs)
                return probs

        batcher = MicroBatcher(Recording())
        for i in range(3):
            batcher.submit(f"s{i}", np.full((2, 4), float(i)))
        execution = batcher.execute(batcher.prepare())
        assert execution.batch_sizes == [3]
        # The classifier's own output array is handed through untouched.
        assert execution.probabilities is returned[0]

    def test_multi_chunk_still_concatenates(self):
        batcher = MicroBatcher(ClockedStubClassifier(), max_batch_size=2)
        for i in range(3):
            batcher.submit(f"s{i}", np.full((2, 4), float(i)))
        execution = batcher.execute(batcher.prepare())
        assert execution.batch_sizes == [2, 1]
        assert execution.probabilities.shape == (3, 3)

    def test_finalize_rejects_row_count_mismatch(self):
        batcher = MicroBatcher(ClockedStubClassifier())
        batcher.submit("s0", np.zeros((2, 4)))
        prepared = batcher.prepare()
        execution = execute_windows(ClockedStubClassifier(), np.zeros((2, 2, 4)), 2)
        with pytest.raises(RuntimeError, match="rows"):
            batcher.finalize(prepared, execution)

    def test_execute_windows_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            execute_windows(ClockedStubClassifier(), np.zeros((1, 2, 4)), 0)


# ---------------------------------------------------------------------- #
# Executor equivalence on the scheduler
# ---------------------------------------------------------------------- #
def _run_load(executor_factory, seconds=10.0, base_latency_s=0.0):
    clock = FakeClock()
    scheduler = AsyncFleetScheduler(
        {
            "adults": ClockedStubClassifier(
                clock, peak_class=0, base_latency_s=base_latency_s
            ),
            "kids": ClockedStubClassifier(
                clock, peak_class=2, base_latency_s=base_latency_s
            ),
        },
        scheduler_config=SchedulerConfig(deadline_s=DEADLINE_S, max_batch_size=8),
        clock=clock,
        executor=executor_factory(),
    )
    for i in range(6):
        scheduler.add_session(
            ScriptedSession(f"s{i}", seed=i),
            cohort="adults" if i % 2 == 0 else "kids",
        )
    load = SimulatedLoad(scheduler, clock, period_s=0.1, seed=3)
    load.run(seconds)
    scheduler.executor.shutdown()
    return scheduler, load


class TestExecutorEquivalence:
    def test_default_executor_is_serial(self):
        clock = FakeClock()
        scheduler = make_scheduler(clock)
        assert isinstance(scheduler.executor, SerialExecutor)
        assert scheduler.executor.serializes_flushes

    def test_thread_executor_matches_serial_results(self):
        # Zero-latency stubs: the virtual clock never moves inside a flush,
        # so the thread run is deterministic and comparable row for row.
        serial_sched, serial_load = _run_load(lambda: None)
        thread_sched, thread_load = _run_load(ThreadPoolFlushExecutor)
        assert serial_load.outcomes == thread_load.outcomes
        assert (
            thread_sched.telemetry.total_labels
            == serial_sched.telemetry.total_labels
        )
        for sid in (f"s{i}" for i in range(6)):
            a = serial_sched.get_session(sid).applied
            b = thread_sched.get_session(sid).applied
            assert len(a) == len(b)
            for (pa, _), (pb, _) in zip(a, b):
                np.testing.assert_array_equal(pa, pb)

    def test_serial_executor_cannot_be_rebound(self):
        clock = FakeClock()
        scheduler = make_scheduler(clock)
        with pytest.raises(RuntimeError, match="already bound"):
            AsyncFleetScheduler(
                ClockedStubClassifier(clock),
                clock=clock,
                executor=scheduler.executor,
            )

    def test_telemetry_breakdowns_populated(self):
        scheduler, _ = _run_load(lambda: None, base_latency_s=0.002)
        report = scheduler.report()
        assert set(report.cohorts) == {"adults", "kids"}
        for stats in report.cohorts.values():
            assert stats["labels"] > 0
            assert stats["deadline_violations"] == 0
            assert stats["max_queue_wait_s"] <= DEADLINE_S + 1e-9
        assert set(report.workers) == {"serial"}
        assert report.workers["serial"]["flushes"] == sum(
            c["flushes"] for c in report.cohorts.values()
        )
        assert 0 < report.workers["serial"]["utilization"] <= 1.0
        assert report.fleet["workers"] == 1.0

    def test_lockstep_records_carry_no_cohort_or_worker(self):
        clock = FakeClock()
        scheduler = make_scheduler(clock, n_sessions=2)
        scheduler.tick()
        (record,) = scheduler.telemetry.records
        assert record.cohort == "" and record.worker == ""
        assert scheduler.report().cohorts == {}
        assert scheduler.report().workers == {}


# ---------------------------------------------------------------------- #
# In-flight flush tracking (manually completed executor)
# ---------------------------------------------------------------------- #
class ManualTicket:
    def __init__(self, run):
        self._run = run
        self._execution = None
        self.released = False

    def release(self):
        self.released = True

    def done(self):
        return self.released

    def result(self, timeout=None):
        if self._execution is None:
            self._execution = self._run()
        return self._execution


class ManualExecutor:
    """Test double: flushes stay in flight until the test releases them."""

    serializes_flushes = False

    def __init__(self):
        self.tickets = {}

    def bind(self, classifiers, clock):
        self.classifiers = dict(classifiers)
        self.clock = clock

    def submit_flush(self, cohort, prepared):
        classifier = self.classifiers[cohort]
        ticket = ManualTicket(
            lambda: execute_windows(
                classifier, prepared.windows, prepared.chunk_size,
                self.clock, worker=f"manual:{cohort}",
            )
        )
        self.tickets[cohort] = ticket
        return ticket

    def shutdown(self):
        self.tickets = {}


class TestInFlightFlushes:
    def _scheduler(self, n_sessions=3, **sched_kwargs):
        clock = FakeClock()
        executor = ManualExecutor()
        scheduler = make_scheduler(
            clock, n_sessions=n_sessions, executor=executor, **sched_kwargs
        )
        return clock, executor, scheduler

    def test_pump_wait_false_leaves_future_in_flight(self):
        clock, executor, scheduler = self._scheduler()
        scheduler.submit("s0")
        clock.advance(DEADLINE_S)
        assert scheduler.pump(wait=False) == []
        assert scheduler.inflight_cohorts == ("default",)
        executor.tickets["default"].release()
        (event,) = scheduler.pump(wait=False)
        assert event.reason == "deadline"
        assert event.worker == "manual:default"
        assert scheduler.inflight_cohorts == ()

    def test_session_departing_while_flush_in_flight(self):
        clock, executor, scheduler = self._scheduler()
        scheduler.submit("s0")
        scheduler.submit("s1")
        clock.advance(DEADLINE_S)
        scheduler.pump(wait=False)
        removed = scheduler.remove_session("s1")  # departs mid-flight
        executor.tickets["default"].release()
        (event,) = scheduler.pump(wait=False)
        # The departed session's row is computed but dropped, not applied.
        assert set(event.ticks) == {"s0"}
        assert event.batch_size == 2
        assert removed.labels_emitted() == 0
        assert scheduler.get_session("s0").labels_emitted() == 1

    def test_full_batch_submit_refuses_double_flush(self):
        clock, executor, scheduler = self._scheduler(
            n_sessions=3, max_batch_size=2
        )
        assert scheduler.submit("s0") == SUBMIT_QUEUED
        assert scheduler.submit("s1") == SUBMIT_FLUSHED  # blocks & completes
        assert scheduler.inflight_cohorts == ()  # inline flush is synchronous
        # Now hold a flush in flight and fill the batch again: no double
        # flush — the submission queues behind the in-flight one.
        scheduler.submit("s0")
        clock.advance(DEADLINE_S)
        scheduler.pump(wait=False)
        assert scheduler.inflight_cohorts == ("default",)
        assert scheduler.submit("s1") == SUBMIT_QUEUED
        assert scheduler.submit("s2") == SUBMIT_QUEUED  # batch full, still queued
        executor.tickets["default"].release()
        (harvested,) = scheduler.pump(wait=False)
        assert harvested.batch_size == 1
        # The freed cohort's full backlog flushes immediately (reason
        # "full"), without waiting for its deadline ...
        assert scheduler.inflight_cohorts == ("default",)
        executor.tickets["default"].release()
        (backlog,) = scheduler.pump(wait=False)
        assert backlog.reason == "full"
        assert backlog.batch_size == 2

    def test_tick_refuses_while_flush_in_flight(self):
        clock, executor, scheduler = self._scheduler()
        scheduler.submit("s0")
        clock.advance(DEADLINE_S)
        scheduler.pump(wait=False)
        with pytest.raises(RuntimeError, match="in flight"):
            scheduler.tick()
        executor.tickets["default"].release()
        scheduler.pump()
        assert scheduler.tick()

    def test_drain_harvests_in_flight_futures(self):
        clock, executor, scheduler = self._scheduler()
        scheduler.submit("s0")
        clock.advance(DEADLINE_S)
        scheduler.pump(wait=False)
        scheduler.submit("s1")  # queued behind the in-flight flush
        executor.tickets["default"].release()
        events = scheduler.drain()
        assert [e.reason for e in events] == ["deadline", "drain"]
        assert sum(e.batch_size for e in events) == 2

    def test_pump_wait_true_blocks_on_started_flush(self):
        clock, executor, scheduler = self._scheduler()
        scheduler.submit("s0")
        clock.advance(DEADLINE_S)
        # wait=True completes the future it started via ticket.result().
        (event,) = scheduler.pump()
        assert event.batch_size == 1
        assert scheduler.inflight_cohorts == ()

    def test_pump_wait_true_harvests_leftover_in_flight_flushes(self):
        # A flush left in flight by pump(wait=False) must also be waited
        # out by a later default pump() — its contract is "no executor work
        # remains when it returns".
        clock, executor, scheduler = self._scheduler()
        scheduler.submit("s0")
        clock.advance(DEADLINE_S)
        scheduler.pump(wait=False)
        assert scheduler.inflight_cohorts == ("default",)
        (event,) = scheduler.pump()  # nothing newly due, still harvests
        assert event.batch_size == 1
        assert scheduler.inflight_cohorts == ()
        assert scheduler.tick() is not None  # lock-step usable again

    def test_failed_submit_restores_the_queued_windows(self):
        clock, executor, scheduler = self._scheduler()

        fail_next = {"armed": True}
        original = executor.submit_flush

        def flaky(cohort, prepared):
            if fail_next["armed"]:
                fail_next["armed"] = False
                raise FlushExecutionError("worker died")
            return original(cohort, prepared)

        executor.submit_flush = flaky
        scheduler.submit("s0")
        scheduler.submit("s1")
        clock.advance(DEADLINE_S)
        with pytest.raises(FlushExecutionError):
            scheduler.pump()
        # The popped windows were put back: the executor recovered, and the
        # retry serves every admitted window (conservation holds).
        assert scheduler.pump(wait=False) == []  # retry begins, in flight
        executor.tickets["default"].release()
        (event,) = scheduler.pump(wait=False)
        assert event.batch_size == 2
        assert set(event.ticks) == {"s0", "s1"}

    def test_timed_out_harvest_keeps_the_flush_in_flight(self):
        clock, executor, scheduler = self._scheduler()
        scheduler.submit("s0")
        clock.advance(DEADLINE_S)
        scheduler.pump(wait=False)
        ticket = executor.tickets["default"]
        original_result = ticket.result
        ticket.result = lambda timeout=None: (_ for _ in ()).throw(
            TimeoutError("worker slow")
        )
        with pytest.raises(TimeoutError):
            scheduler.drain()
        # The flush stays tracked; once the (late) result arrives the next
        # harvest completes it instead of wedging the cohort forever.
        assert scheduler.inflight_cohorts == ("default",)
        ticket.result = original_result
        ticket.release()
        (event,) = scheduler.pump(wait=False)
        assert event.batch_size == 1


# ---------------------------------------------------------------------- #
# Service-EWMA cold start (satellite regression)
# ---------------------------------------------------------------------- #
class TestServiceEwmaColdStart:
    def test_zero_latency_flush_seeds_the_estimate(self):
        clock = FakeClock()
        classifier = ClockedStubClassifier(clock)  # exactly zero latency
        scheduler = make_scheduler(clock, n_sessions=1, classifier=classifier)
        assert scheduler.service_estimate_s("default") is None
        scheduler.submit("s0")
        scheduler.drain()
        # A genuine 0.0 sample is a sample, not "no data".
        assert scheduler.service_estimate_s("default") == 0.0
        # The next (slower) flush must be folded in by the EWMA, not treated
        # as the first sample: estimate = 0.25 * 0.008 + 0.75 * 0.0.
        classifier.base_latency_s = 0.008
        scheduler.submit("s0")
        scheduler.drain()
        assert scheduler.service_estimate_s("default") == pytest.approx(
            0.25 * 0.008
        )

    def test_estimate_measures_service_only(self):
        # Executor overhead (time between begin and harvest beyond the
        # execute itself) must not leak into the service estimate.
        clock = FakeClock()
        executor = ManualExecutor()
        classifier = ClockedStubClassifier(clock, base_latency_s=0.004)
        scheduler = make_scheduler(
            clock, n_sessions=1, executor=executor, classifier=classifier
        )
        scheduler.submit("s0")
        clock.advance(DEADLINE_S)
        scheduler.pump(wait=False)
        clock.advance(0.5)  # half a second of executor queueing
        executor.tickets["default"].release()
        (event,) = scheduler.pump(wait=False)
        assert scheduler.service_estimate_s("default") == pytest.approx(0.004)
        assert event.latency_s == pytest.approx(0.004)
        assert event.executor_wait_s == pytest.approx(0.5)
        record = scheduler.telemetry.records[-1]
        assert record.executor_wait_s == pytest.approx(0.5)
        assert scheduler.report().fleet["max_executor_wait_s"] == pytest.approx(0.5)


# ---------------------------------------------------------------------- #
# Process sharding (real clock, real plans, hard timeout)
# ---------------------------------------------------------------------- #
def _lstm(seed=4, hidden=12):
    classifier = EEGLSTM(LSTMConfig(hidden_size=hidden), seed=seed)
    classifier.ensure_network(4, 50)
    return classifier


class TestProcessShardExecutor:
    def test_worker_matches_in_process_serial_execution(self):
        classifier = _lstm()
        rng = np.random.default_rng(0)
        prepared = PreparedBatch(
            session_ids=["a", "b", "c"],
            windows=rng.standard_normal((3, 4, 50)),
            chunk_size=2,
        )
        serial = SerialExecutor()
        serial.bind({"default": classifier}, SYSTEM_CLOCK)
        reference = serial.submit_flush("default", prepared).result()
        executor = ProcessShardExecutor()
        with hard_timeout(240, what="process-shard smoke"):
            executor.bind({"default": classifier}, SYSTEM_CLOCK)
            try:
                execution = executor.submit_flush("default", prepared).result()
            finally:
                executor.shutdown()
        assert execution.worker == "shard:default"
        assert execution.batch_sizes == [2, 1]
        assert execution.service_s > 0.0
        np.testing.assert_allclose(
            execution.probabilities, reference.probabilities, atol=1e-7, rtol=0
        )

    def test_scheduler_end_to_end_over_process_shards(self):
        classifier = _lstm()
        oracle = AsyncFleetScheduler(
            _lstm(), scheduler_config=SchedulerConfig(deadline_s=DEADLINE_S)
        )
        sharded = AsyncFleetScheduler(
            classifier,
            scheduler_config=SchedulerConfig(deadline_s=DEADLINE_S),
            executor=ProcessShardExecutor(),
        )
        with hard_timeout(240, what="process-shard scheduler smoke"):
            try:
                for scheduler in (oracle, sharded):
                    for i in range(3):
                        scheduler.add_session(
                            ScriptedSession(f"s{i}", n_channels=4, window_size=50, seed=i)
                        )
                    for i in range(3):
                        scheduler.submit(f"s{i}")
                    scheduler.drain()
            finally:
                sharded.executor.shutdown()
        for i in range(3):
            (a, _), (b, _) = (
                oracle.get_session(f"s{i}").applied[0],
                sharded.get_session(f"s{i}").applied[0],
            )
            np.testing.assert_allclose(a, b, atol=1e-7, rtol=0)
        record = sharded.telemetry.records[-1]
        assert record.worker == "shard:default"

    def test_untransportable_classifier_rejected_at_bind(self):
        executor = ProcessShardExecutor()
        with pytest.raises(ValueError, match="compiled inference plan"):
            executor.bind({"default": ClockedStubClassifier()}, SYSTEM_CLOCK)

    def test_sigkilled_worker_respawns_and_serves_identically(self):
        classifier = _lstm()
        rng = np.random.default_rng(1)
        prepared = PreparedBatch(
            session_ids=["a", "b"],
            windows=rng.standard_normal((2, 4, 50)),
            chunk_size=8,
        )
        # Zero backoff: the respawn is due immediately, so the real-clock
        # test never sleeps through a backoff window.
        executor = ProcessShardExecutor(
            supervisor_config=SupervisorConfig(
                backoff_initial_s=0.0, jitter_fraction=0.0
            )
        )
        with hard_timeout(240, what="sigkill respawn smoke"):
            executor.bind({"default": classifier}, SYSTEM_CLOCK)
            try:
                reference = executor.submit_flush("default", prepared).result()
                executor.inject_kill("default")
                with pytest.raises(WorkerDiedError) as err:
                    executor.submit_flush("default", prepared)
                assert err.value.cohort == "default"
                # The previous flush was answered; a stale ticket must not
                # ride along as "pending" (it has nothing to requeue).
                assert err.value.pending == ()
                assert executor.worker_state("default") == WORKER_RESPAWNING
                execution = executor.submit_flush("default", prepared).result()
            finally:
                executor.shutdown()
        assert executor.restart_count("default") == 1
        np.testing.assert_allclose(
            execution.probabilities, reference.probabilities, atol=1e-7, rtol=0
        )

    def test_hot_swap_ships_new_plan_to_live_worker(self):
        old, new = _lstm(seed=4), _lstm(seed=9)
        rng = np.random.default_rng(2)
        prepared = PreparedBatch(
            session_ids=["a", "b"],
            windows=rng.standard_normal((2, 4, 50)),
            chunk_size=8,
        )
        serial = SerialExecutor()
        serial.bind({"default": new}, SYSTEM_CLOCK)
        reference = serial.submit_flush("default", prepared).result()
        executor = ProcessShardExecutor()
        with hard_timeout(240, what="hot-swap smoke"):
            executor.bind({"default": old}, SYSTEM_CLOCK)
            try:
                first = executor.submit_flush("default", prepared).result()
                assert first.plan_version == 1
                version = executor.swap_plan("default", new)
                assert version == 2
                assert executor.acked_plan_version("default") == 2
                second = executor.submit_flush("default", prepared).result()
            finally:
                executor.shutdown()
        assert second.plan_version == 2
        np.testing.assert_allclose(
            second.probabilities, reference.probabilities, atol=1e-7, rtol=0
        )

    def test_shutdown_is_idempotent_and_terminal(self):
        executor = ProcessShardExecutor()
        executor.shutdown()
        executor.shutdown()  # second call is a quiet no-op
        prepared = PreparedBatch(
            session_ids=["a"], windows=np.zeros((1, 4, 50)), chunk_size=8
        )
        with pytest.raises(ExecutorClosedError):
            executor.submit_flush("default", prepared)
        with pytest.raises(ExecutorClosedError):
            executor.bind({"default": _lstm()}, SYSTEM_CLOCK)
        with pytest.raises(ExecutorClosedError):
            executor.swap_plan("default", b"")


class TestShardSupervisor:
    def _supervisor(self, **overrides):
        defaults = dict(
            max_restarts=3,
            restart_window_s=10.0,
            backoff_initial_s=0.1,
            backoff_max_s=0.4,
            backoff_factor=2.0,
            jitter_fraction=0.0,
        )
        defaults.update(overrides)
        clock = FakeClock()
        return ShardSupervisor(SupervisorConfig(**defaults), clock), clock

    def test_backoff_doubles_per_consecutive_failure_and_caps(self):
        supervisor, clock = self._supervisor(max_restarts=10)
        supervisor.watch("c")
        for expected in (0.1, 0.2, 0.4, 0.4):  # doubles, then hits the cap
            assert supervisor.record_death("c") == WORKER_RESPAWNING
            assert supervisor.retry_at_s("c") == pytest.approx(
                clock.now() + expected
            )
            clock.advance(0.5)

    def test_respawn_success_resets_the_backoff_exponent(self):
        supervisor, clock = self._supervisor(max_restarts=10)
        supervisor.record_death("c")
        clock.advance(1.0)
        supervisor.record_death("c")  # second consecutive: 0.2s
        assert supervisor.retry_at_s("c") == pytest.approx(clock.now() + 0.2)
        supervisor.record_respawn_success("c")
        assert supervisor.state("c") == WORKER_RUNNING
        assert supervisor.restart_count("c") == 1
        clock.advance(1.0)
        supervisor.record_death("c")  # exponent reset: back to 0.1s
        assert supervisor.retry_at_s("c") == pytest.approx(clock.now() + 0.1)

    def test_quarantines_when_window_death_count_exceeds_budget(self):
        supervisor, clock = self._supervisor(max_restarts=2)
        for _ in range(2):
            assert supervisor.record_death("c") == WORKER_RESPAWNING
            supervisor.record_respawn_success("c")
            clock.advance(1.0)
        assert supervisor.record_death("c") == WORKER_QUARANTINED
        assert supervisor.state("c") == WORKER_QUARANTINED
        assert supervisor.deaths_in_window("c") == 3
        # Quarantine is terminal: further deaths never resurrect the lane.
        assert supervisor.record_death("c") == WORKER_QUARANTINED

    def test_sliding_window_forgives_old_deaths(self):
        supervisor, clock = self._supervisor(max_restarts=2, restart_window_s=10.0)
        supervisor.record_death("c")
        supervisor.record_respawn_success("c")
        clock.advance(1.0)
        supervisor.record_death("c")
        supervisor.record_respawn_success("c")
        clock.advance(20.0)  # both deaths age out of the window
        assert supervisor.record_death("c") == WORKER_RESPAWNING
        assert supervisor.deaths_in_window("c") == 1

    def test_jitter_is_deterministic_and_bounded(self):
        def retry_delays(seed):
            clock = FakeClock()
            supervisor = ShardSupervisor(
                SupervisorConfig(
                    max_restarts=100, jitter_fraction=0.25, seed=seed
                ),
                clock,
            )
            delays = []
            for _ in range(5):
                supervisor.record_death("c")
                delays.append(supervisor.retry_at_s("c") - clock.now())
                supervisor.record_respawn_success("c")
                clock.advance(0.01)
            return delays

        config = SupervisorConfig(max_restarts=100, jitter_fraction=0.25)
        assert retry_delays(0) == retry_delays(0)  # seeded: reproducible
        assert retry_delays(0) != retry_delays(1)
        for delay in retry_delays(3):
            assert 0.0 < delay <= config.max_backoff_budget_s()

    def test_unwatched_cohort_reads_as_running(self):
        supervisor, _ = self._supervisor()
        assert supervisor.state("ghost") == WORKER_RUNNING
        assert supervisor.retry_at_s("ghost") is None
        assert supervisor.restart_count("ghost") == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_restarts": -1},
            {"restart_window_s": 0.0},
            {"backoff_initial_s": -0.1},
            {"backoff_initial_s": 1.0, "backoff_max_s": 0.5},
            {"backoff_factor": 0.5},
            {"jitter_fraction": 1.5},
        ],
    )
    def test_config_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorConfig(**kwargs)


class TestRemoteExecutionFlag:
    def test_backends_declare_where_classification_runs(self):
        assert SerialExecutor.remote_execution is False
        assert ThreadPoolFlushExecutor.remote_execution is False
        assert ProcessShardExecutor.remote_execution is True

    def test_scheduler_skips_local_specialization_for_remote_executors(self):
        from repro.models.lstm_model import EEGLSTM, LSTMConfig
        from repro.serving.scheduler import AsyncFleetScheduler

        class RemoteStub(SerialExecutor):
            remote_execution = True

        classifier = EEGLSTM(LSTMConfig(hidden_size=16), seed=0)
        classifier.ensure_network(8, 100)
        local = AsyncFleetScheduler(classifier)
        try:
            assert all(b.specialize for b in local._batchers.values())
        finally:
            local.shutdown()
        classifier2 = EEGLSTM(LSTMConfig(hidden_size=16), seed=0)
        classifier2.ensure_network(8, 100)
        remote = AsyncFleetScheduler(classifier2, executor=RemoteStub())
        try:
            assert all(not b.specialize for b in remote._batchers.values())
        finally:
            remote.shutdown()


class TestLockstepSpecializedFlag:
    def test_mixed_cohorts_do_not_overreport_specialization(self):
        """tick()'s record means "every classifier call hit an arena": one
        generic cohort must keep the combined flag False."""
        import numpy as np

        from repro.models.lstm_model import EEGLSTM, LSTMConfig
        from repro.serving.scheduler import AsyncFleetScheduler

        def built(seed):
            classifier = EEGLSTM(LSTMConfig(hidden_size=16), seed=seed)
            classifier.ensure_network(16, 150)
            return classifier

        fast, slow = built(0), built(1)
        slow.use_compiled_inference = False  # never specialises
        scheduler = AsyncFleetScheduler({"fast": fast, "slow": slow})
        try:
            scheduler.add_session(cohort="fast")
            scheduler.add_session(cohort="slow")
            for session in scheduler.sessions:
                session.set_action("left")
            for _ in range(4):
                scheduler.tick()
            assert all(
                not record.specialized for record in scheduler.telemetry.records
            )
            assert scheduler.telemetry.specialized_hit_rate() == 0.0
        finally:
            scheduler.shutdown()
