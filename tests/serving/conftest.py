"""Shared fixtures for the serving tests: cheap deterministic classifiers."""

import numpy as np
import pytest

from repro.core.config import CognitiveArmConfig
from repro.models.base import EEGClassifier, TrainingHistory


class WindowStatClassifier(EEGClassifier):
    """Deterministic classifier whose output depends on the window content.

    Probabilities are a fixed function of per-window statistics, so tests can
    verify that a batched result was routed back to the session whose window
    produced it.  Records the batch size of every ``predict_proba`` call.
    """

    family = "stub"

    def __init__(self):
        self.batch_sizes = []

    def fit(self, train, validation=None):
        return TrainingHistory()

    def predict_proba(self, windows):
        windows = np.asarray(windows, dtype=np.float64)
        if windows.ndim == 2:
            windows = windows[None, ...]
        self.batch_sizes.append(windows.shape[0])
        mean = windows.mean(axis=(1, 2))
        spread = windows.std(axis=(1, 2))
        scores = np.stack(
            [
                1.5 + np.tanh(mean),
                1.0 + 0.5 * np.tanh(spread - 1.0),
                np.ones_like(mean),
            ],
            axis=1,
        )
        return scores / scores.sum(axis=1, keepdims=True)

    def parameter_count(self):
        return 0


@pytest.fixture()
def stub_classifier():
    return WindowStatClassifier()


@pytest.fixture()
def serving_config():
    return CognitiveArmConfig(
        window_size=100,
        label_rate_hz=10.0,
        smoothing_window=3,
        confidence_threshold=0.3,
    )
