"""Long-horizon virtual-clock soak for the async scheduler.

Runs the :class:`tests.helpers.SimulatedLoad` harness for thousands of
virtual seconds (10k in CI's ``serving-soak`` job, a shorter horizon in the
default suite) and asserts the scheduler's global invariants held the whole
way.  A SIGALRM watchdog turns any scheduler hang into a fast, attributable
failure instead of wedging the run — virtual time must stay cheap: the soak
finishing at all is the point.

Set ``REPRO_SOAK=1`` for the full horizon (the CI job does), and
``REPRO_SOAK_EXECUTOR=thread`` to run every cohort flush on the
:class:`~repro.serving.executors.ThreadPoolFlushExecutor` (the CI
``shard-soak`` job does) — same harness, concurrent execution machinery.
"""

import os

from repro.serving.executors import ThreadPoolFlushExecutor
from repro.serving.scheduler import (
    SUBMIT_FLUSHED,
    SUBMIT_QUEUED,
    AsyncFleetScheduler,
    SchedulerConfig,
)
from tests.helpers import (
    ClockedStubClassifier,
    FakeClock,
    ScriptedSession,
    SimulatedLoad,
    hard_timeout,
)

FULL_SOAK = os.environ.get("REPRO_SOAK") == "1"
EXECUTOR_KIND = os.environ.get("REPRO_SOAK_EXECUTOR", "serial")
VIRTUAL_SECONDS = 10_000.0 if FULL_SOAK else 1_000.0
HARD_TIMEOUT_S = 120 if FULL_SOAK else 60
DEADLINE_S = 0.015


def _make_executor():
    if EXECUTOR_KIND == "serial":
        return None  # scheduler default: SerialExecutor
    if EXECUTOR_KIND == "thread":
        return ThreadPoolFlushExecutor()
    raise ValueError(f"unknown REPRO_SOAK_EXECUTOR {EXECUTOR_KIND!r}")


def test_scheduler_soak_invariants_over_virtual_hours():
    clock = FakeClock()
    adults = ClockedStubClassifier(clock, base_latency_s=0.001, per_row_s=0.0002)
    kids = ClockedStubClassifier(clock, base_latency_s=0.0015, per_row_s=0.0002)
    scheduler = AsyncFleetScheduler(
        {"adults": adults, "kids": kids},
        scheduler_config=SchedulerConfig(
            deadline_s=DEADLINE_S,
            max_batch_size=16,
            latency_budget_s=0.050,  # generous: nominal load must not shed
        ),
        clock=clock,
        executor=_make_executor(),
    )
    for i in range(8):
        scheduler.add_session(
            # A couple of flaky sessions keep the stall path hot all run.
            ScriptedSession(f"s{i}", stall_every=7 if i < 2 else None, seed=i),
            cohort="adults" if i % 2 == 0 else "kids",
        )
    load = SimulatedLoad(scheduler, clock, period_s=0.25, jitter_s=0.05, seed=1)

    try:
        with hard_timeout(HARD_TIMEOUT_S, what="serving soak"):
            load.run(VIRTUAL_SECONDS)
    finally:
        scheduler.executor.shutdown()

    # The fleet really ran for the whole virtual horizon (the final arrival
    # may land up to one jittered period short of it).
    assert clock.now() >= VIRTUAL_SECONDS - (0.25 + 0.05)
    expected_min = int(8 * (VIRTUAL_SECONDS / (0.25 + 0.05)) * 0.95)
    assert load.submissions >= expected_min

    # Invariant 1: no admitted window ever waited past its deadline.  Under
    # the serial executor this is exact.  Under the thread executor the
    # shared virtual clock is advanced by worker threads concurrently with
    # the driver, so two overlapping flushes double-count service time —
    # a harness modelling artifact, not a scheduler bug — and the deadline
    # accounting is only held to a loose bound.
    if EXECUTOR_KIND == "serial":
        assert scheduler.telemetry.total_deadline_violations == 0
        assert scheduler.telemetry.max_queue_wait_s() <= DEADLINE_S + 1e-9
    else:
        max_concurrent_advance = 2 * (0.0015 + 0.0002 * 16)
        assert (
            scheduler.telemetry.max_queue_wait_s()
            <= DEADLINE_S + max_concurrent_advance + 1e-9
        )

    # Invariant 2: conservation — every admitted window produced exactly one
    # applied result; nothing was shed or silently dropped.  (This equality
    # presumes no supersession: the 0.25 s period dwarfs the 15 ms deadline,
    # so no session can outrun the flush cadence — assert that precondition
    # so a parameter tweak fails here, not in the accounting below.)
    assert sum(scheduler.superseded_by_session.values()) == 0
    accepted = load.outcomes[SUBMIT_QUEUED] + load.outcomes[SUBMIT_FLUSHED]
    applied = sum(len(s.applied) for s in scheduler.sessions)
    assert scheduler.telemetry.total_shed == 0
    assert applied == accepted
    assert scheduler.telemetry.total_labels == accepted

    # Invariant 3: telemetry accounting stays self-consistent at scale.
    records = scheduler.telemetry.records
    assert sum(r.batch_size for r in records) == accepted
    assert all(r.batch_latency_s >= 0 for r in records)
    stalls = sum(r.stalled_sessions for r in records)
    assert stalls == sum(s.tick_index - s.labels_emitted() for s in scheduler.sessions)

    # Invariant 4: both cohorts were actually served by their own model.
    assert adults.batch_sizes and kids.batch_sizes
    assert sum(adults.batch_sizes) + sum(kids.batch_sizes) == accepted

    percentiles = scheduler.telemetry.latency_percentiles()
    assert 0 < percentiles["p50"] <= percentiles["p95"] <= percentiles["p99"]
