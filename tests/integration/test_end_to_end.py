"""Integration tests: the full data path and the full control loop.

These exercise the system exactly as the examples and benchmarks do —
protocol simulation -> annotation -> windows -> training -> compression ->
real-time control with voice multiplexing — at the smallest scale that still
says something meaningful.
"""

import numpy as np
import pytest

from repro.asr.audio import CommandAudioGenerator
from repro.asr.recognizer import ASR_MODEL_FAMILY, KeywordRecognizer
from repro.asr.commands import VoiceCommandPipeline
from repro.compression.pruning import prune_classifier
from repro.core.config import CognitiveArmConfig
from repro.core.pipeline import CognitiveArmPipeline, ScriptedIntent
from repro.dataset.annotation import AnnotationConfig, Annotator
from repro.dataset.protocol import ExperimentalProtocol, ProtocolConfig
from repro.dataset.splits import stratified_split
from repro.dataset.windows import WindowConfig, segment_cohort
from repro.experiments.common import BENCH_SCALE, build_cohort_dataset, small_reference_models, train_validation
from repro.models.ensemble import EnsembleClassifier
from repro.signals.synthetic import ACTION_IDLE, ACTION_LEFT, ACTION_RIGHT, ParticipantProfile


class TestDataPath:
    def test_protocol_to_windows_pipeline(self):
        """Raw protocol recordings survive annotation and windowing."""
        profiles = ParticipantProfile.cohort(2, base_seed=77)
        protocol = ExperimentalProtocol(
            ProtocolConfig(task_duration_s=3.0, rest_duration_s=3.0,
                           session_duration_s=18.0, n_sessions=1),
            seed=3,
        )
        recordings = protocol.record_cohort(profiles)
        annotator = Annotator(AnnotationConfig(transition_period_s=0.4))
        labelled = {pid: annotator.annotate_recording(rec) for pid, rec in recordings.items()}
        dataset = segment_cohort(labelled, WindowConfig(window_size=100, step=50))
        assert len(dataset) > 0
        assert dataset.n_channels == 16
        assert set(np.unique(dataset.labels)) <= {0, 1, 2}
        assert set(dataset.participant_ids.tolist()) == {"P01", "P02"}

    def test_cohort_dataset_is_balanced_and_cached(self):
        first = build_cohort_dataset(BENCH_SCALE)
        second = build_cohort_dataset(BENCH_SCALE)
        assert first is second  # cache hit
        counts = set(first.class_counts().values())
        assert len(counts) == 1  # balanced


class TestTrainCompressControl:
    @pytest.fixture(scope="class")
    def trained_ensemble(self):
        train, validation = train_validation()
        models = small_reference_models(epochs=2)
        ensemble = EnsembleClassifier([models["cnn"], models["transformer"]])
        ensemble.fit(train, validation)
        return ensemble, models, validation

    def test_ensemble_beats_chance_on_simulated_eeg(self, trained_ensemble):
        ensemble, _, validation = trained_ensemble
        assert ensemble.evaluate(validation) > 0.45

    def test_pruned_member_still_functional_in_ensemble(self, trained_ensemble):
        ensemble, models, validation = trained_ensemble
        pruned_cnn, report = prune_classifier(models["cnn"], 0.7)
        assert report.achieved_sparsity == pytest.approx(0.7, abs=0.05)
        pruned_ensemble = EnsembleClassifier([pruned_cnn, models["transformer"]])
        assert pruned_ensemble.evaluate(validation) > 0.4

    def test_full_control_loop_with_voice_multiplexing(self, trained_ensemble):
        ensemble, _, _ = trained_ensemble
        profile = ParticipantProfile(participant_id="E2E", seed=21)
        profile.rhythms.erd_depth = 0.8
        config = CognitiveArmConfig(window_size=BENCH_SCALE.window_size,
                                    confidence_threshold=0.34,
                                    smoothing_window=3, label_rate_hz=10.0)
        pipeline = CognitiveArmPipeline(ensemble, profile=profile, config=config, seed=5)
        script = [
            ScriptedIntent(1.0, ACTION_IDLE),
            ScriptedIntent(2.0, ACTION_RIGHT, voice_keyword="arm"),
            ScriptedIntent(2.0, ACTION_LEFT, voice_keyword="fingers"),
            ScriptedIntent(1.0, ACTION_IDLE),
        ]
        report = pipeline.run_scripted_session(script, success_threshold=0.0)
        assert report.events.actions
        assert pipeline.multiplexer.switch_count() >= 1
        assert report.mean_processing_latency_s > 0
        # The arm must have physically moved at some point during the session.
        assert len(pipeline.controller.arm.trajectory) > 1


class TestVoiceToControlPath:
    def test_voice_commands_flow_into_mode_multiplexer(self):
        generator = CommandAudioGenerator(seed=11)
        waveforms, labels = generator.labelled_dataset(n_per_word=10)
        recognizer = KeywordRecognizer(ASR_MODEL_FAMILY[2], seed=0).fit(waveforms, labels)
        voice = VoiceCommandPipeline(recognizer)
        from repro.core.multiplexer import ModeMultiplexer

        mux = ModeMultiplexer()
        stream = generator.stream_with_commands([(1.0, "fingers")], 3.0)
        for command in voice.process_stream(stream):
            mux.handle_command(command)
        # Either the command was decoded to a mode keyword and switched the
        # multiplexer, or it was rejected as a non-command — never an error.
        assert mux.mode in ("arm", "elbow", "fingers")
