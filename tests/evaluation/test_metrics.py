"""Tests for evaluation metrics and statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    accuracy_score,
    confidence_interval,
    confusion_matrix,
    mean_and_std,
    paired_t_test,
    per_class_accuracy,
    variance_reduction,
)


class TestAccuracyAndConfusion:
    def test_accuracy_basic(self):
        assert accuracy_score(np.array([0, 1, 2]), np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_empty_is_zero(self):
        assert accuracy_score(np.array([]), np.array([])) == 0.0

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score(np.array([0, 1]), np.array([0]))

    def test_confusion_matrix_counts(self):
        predictions = np.array([0, 1, 1, 2, 2, 2])
        targets = np.array([0, 1, 2, 2, 2, 0])
        matrix = confusion_matrix(predictions, targets, 3)
        assert matrix[0, 0] == 1
        assert matrix[2, 2] == 2
        assert matrix[2, 1] == 1
        assert matrix.sum() == 6

    def test_confusion_matrix_invalid_class(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([5]), np.array([0]), 3)
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0]), np.array([0]), 0)

    def test_per_class_accuracy(self):
        predictions = np.array([0, 0, 1, 1])
        targets = np.array([0, 1, 1, 1])
        per_class = per_class_accuracy(predictions, targets, 3)
        assert per_class[0] == pytest.approx(1.0)
        assert per_class[1] == pytest.approx(2 / 3)
        assert per_class[2] == 0.0

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000), n=st.integers(min_value=1, max_value=50))
    def test_property_confusion_row_sums_match_class_counts(self, seed, n):
        rng = np.random.default_rng(seed)
        targets = rng.integers(0, 3, n)
        predictions = rng.integers(0, 3, n)
        matrix = confusion_matrix(predictions, targets, 3)
        np.testing.assert_array_equal(matrix.sum(axis=1), np.bincount(targets, minlength=3))
        assert accuracy_score(predictions, targets) == pytest.approx(
            np.trace(matrix) / n
        )


class TestStatistics:
    def test_mean_and_std(self):
        mean, std = mean_and_std([0.8, 0.9, 1.0])
        assert mean == pytest.approx(0.9)
        assert std == pytest.approx(0.1)

    def test_mean_and_std_edge_cases(self):
        assert mean_and_std([]) == (0.0, 0.0)
        assert mean_and_std([0.7]) == (0.7, 0.0)

    def test_confidence_interval_contains_mean(self):
        low, high = confidence_interval([0.8, 0.85, 0.9, 0.95], 0.91)
        assert low < 0.875 < high

    def test_confidence_interval_narrows_with_lower_confidence(self):
        values = [0.8, 0.85, 0.9, 0.95]
        low91, high91 = confidence_interval(values, 0.91)
        low50, high50 = confidence_interval(values, 0.50)
        assert (high50 - low50) < (high91 - low91)

    def test_confidence_interval_validation(self):
        with pytest.raises(ValueError):
            confidence_interval([], 0.91)
        with pytest.raises(ValueError):
            confidence_interval([0.9], 1.5)

    def test_single_value_interval_is_degenerate(self):
        assert confidence_interval([0.9], 0.91) == (0.9, 0.9)

    def test_paired_t_test_detects_consistent_difference(self):
        a = [0.9, 0.91, 0.89, 0.92, 0.9]
        b = [0.8, 0.82, 0.79, 0.81, 0.8]
        t_stat, p_value = paired_t_test(a, b)
        assert t_stat > 0
        assert p_value < 0.05

    def test_paired_t_test_identical_samples(self):
        t_stat, p_value = paired_t_test([0.8, 0.9], [0.8, 0.9])
        assert t_stat == 0.0
        assert p_value == 1.0

    def test_paired_t_test_validation(self):
        with pytest.raises(ValueError):
            paired_t_test([0.9], [0.8])
        with pytest.raises(ValueError):
            paired_t_test([0.9, 0.8], [0.8])

    def test_variance_reduction_positive_for_steadier_ensemble(self):
        members = {"cnn": [0.7, 0.9, 0.6, 0.95], "lstm": [0.65, 0.92, 0.7, 0.85]}
        ensemble = [0.8, 0.85, 0.78, 0.86]
        assert variance_reduction(members, ensemble) > 0

    def test_variance_reduction_validation(self):
        with pytest.raises(ValueError):
            variance_reduction({}, [0.8, 0.9])
        with pytest.raises(ValueError):
            variance_reduction({"cnn": [0.9]}, [0.8, 0.9])
        with pytest.raises(ValueError):
            variance_reduction({"cnn": [0.9, 0.8]}, [0.8])

    def test_variance_reduction_zero_member_variance(self):
        assert variance_reduction({"cnn": [0.9, 0.9]}, [0.8, 0.85]) == 0.0
