"""Tests for the LOSO cross-validation runner."""

import numpy as np
import pytest

from repro.evaluation.crossval import run_loso_evaluation
from repro.models.base import TrainingConfig
from repro.models.random_forest import RandomForestClassifier, RandomForestConfig
from tests.helpers import make_toy_dataset


def _rf_factory():
    return RandomForestClassifier(RandomForestConfig(n_estimators=8, max_depth=8), seed=0)


class TestLOSORunner:
    @pytest.fixture(scope="class")
    def report(self):
        dataset = make_toy_dataset(n_per_class=24, window_size=40, n_participants=3)
        return run_loso_evaluation(_rf_factory, dataset, model_name="rf")

    def test_one_fold_per_participant(self, report):
        assert len(report.folds) == 3
        assert {f.test_participant for f in report.folds} == {"P01", "P02", "P03"}

    def test_accuracies_are_fractions(self, report):
        for fold in report.folds:
            assert 0.0 <= fold.test_accuracy <= 1.0
            assert 0.0 <= fold.validation_accuracy <= 1.0

    def test_aggregates(self, report):
        assert report.mean_accuracy == pytest.approx(
            np.mean(report.per_subject_accuracies)
        )
        low, high = report.confidence_interval(0.91)
        assert low <= report.mean_accuracy <= high

    def test_total_confusion_sums_fold_matrices(self, report):
        total = report.total_confusion()
        assert total.sum() == sum(f.confusion.sum() for f in report.folds)

    def test_max_folds_limits_work(self):
        dataset = make_toy_dataset(n_per_class=18, window_size=40, n_participants=3)
        report = run_loso_evaluation(_rf_factory, dataset, max_folds=1)
        assert len(report.folds) == 1

    def test_toy_problem_generalises_across_participants(self, report):
        # The toy classes are participant-independent, so LOSO accuracy should
        # be clearly above chance (1/3).
        assert report.mean_accuracy > 0.6

    def test_empty_report_confusion(self):
        from repro.evaluation.crossval import CrossValidationReport

        report = CrossValidationReport(model_name="empty")
        assert report.total_confusion().shape == (0, 0)
        assert report.mean_accuracy == 0.0
