"""Tests for dataset/model persistence."""

import json

import numpy as np
import pytest

from repro.io.storage import (
    load_model_state,
    load_window_dataset,
    save_model_state,
    save_window_dataset,
)
from repro.models.base import TrainingConfig
from repro.models.cnn import CNNConfig, EEGCNN
from tests.helpers import make_toy_dataset


class TestDatasetStorage:
    def test_round_trip_preserves_everything(self, tmp_path):
        dataset = make_toy_dataset(n_per_class=5, window_size=30)
        path = save_window_dataset(dataset, tmp_path / "cohort")
        assert path.suffix == ".npz"
        restored = load_window_dataset(path)
        np.testing.assert_allclose(restored.windows, dataset.windows)
        np.testing.assert_array_equal(restored.labels, dataset.labels)
        assert restored.label_names == dataset.label_names
        assert restored.participant_ids.tolist() == dataset.participant_ids.tolist()
        assert restored.sampling_rate_hz == dataset.sampling_rate_hz

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_window_dataset(tmp_path / "missing.npz")

    def test_malformed_archive_rejected(self, tmp_path):
        bad = tmp_path / "bad.npz"
        np.savez_compressed(bad, windows=np.zeros((1, 2, 3)))
        with pytest.raises(ValueError):
            load_window_dataset(bad)

    def test_directories_created(self, tmp_path):
        dataset = make_toy_dataset(n_per_class=3, window_size=20)
        path = save_window_dataset(dataset, tmp_path / "nested" / "deep" / "ds")
        assert path.exists()


class TestModelStorage:
    @pytest.fixture()
    def fitted_cnn(self):
        dataset = make_toy_dataset(n_per_class=6, window_size=30)
        model = EEGCNN(
            CNNConfig(filters=(4,), kernel_size=3, stride=2, hidden_units=8),
            training=TrainingConfig(epochs=2, batch_size=16),
            seed=0,
        )
        model.fit(dataset)
        return model, dataset

    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_model_state(EEGCNN(), tmp_path / "model")

    def test_round_trip_reproduces_predictions(self, fitted_cnn, tmp_path):
        model, dataset = fitted_cnn
        weights_path, metadata_path = save_model_state(model, tmp_path / "cnn")
        assert weights_path.exists() and metadata_path.exists()
        clone = EEGCNN(
            CNNConfig(filters=(4,), kernel_size=3, stride=2, hidden_units=8),
            training=TrainingConfig(epochs=1),
            seed=99,
        )
        clone.ensure_network(dataset.n_channels, dataset.window_size)
        load_model_state(clone, weights_path)
        np.testing.assert_allclose(
            clone.predict_proba(dataset.windows[:4]),
            model.predict_proba(dataset.windows[:4]),
        )

    def test_load_invalidates_compiled_plan(self, fitted_cnn, tmp_path):
        model, dataset = fitted_cnn
        weights_path, _ = save_model_state(model, tmp_path / "cnn")
        clone = EEGCNN(
            CNNConfig(filters=(4,), kernel_size=3, stride=2, hidden_units=8),
            training=TrainingConfig(epochs=1),
            seed=99,
        )
        clone.ensure_network(dataset.n_channels, dataset.window_size)
        clone.predict_proba(dataset.windows[:2])  # caches a seed-99 plan
        load_model_state(clone, weights_path)
        np.testing.assert_allclose(
            clone.predict_proba(dataset.windows[:4]),
            model.predict_proba(dataset.windows[:4]),
        )

    def test_metadata_records_architecture(self, fitted_cnn, tmp_path):
        model, _ = fitted_cnn
        _, metadata_path = save_model_state(model, tmp_path / "cnn", metadata={"note": "unit"})
        meta = json.loads(metadata_path.read_text())
        assert meta["family"] == "cnn"
        assert meta["parameter_count"] == model.parameter_count()
        assert meta["note"] == "unit"

    def test_load_into_unbuilt_model_rejected(self, fitted_cnn, tmp_path):
        model, _ = fitted_cnn
        weights_path, _ = save_model_state(model, tmp_path / "cnn")
        with pytest.raises(ValueError):
            load_model_state(EEGCNN(), weights_path)

    def test_load_missing_file_rejected(self, fitted_cnn, tmp_path):
        model, dataset = fitted_cnn
        clone = EEGCNN(CNNConfig(filters=(4,), kernel_size=3, stride=2, hidden_units=8))
        clone.ensure_network(dataset.n_channels, dataset.window_size)
        with pytest.raises(FileNotFoundError):
            load_model_state(clone, tmp_path / "absent.npz")

    def test_architecture_mismatch_detected(self, fitted_cnn, tmp_path):
        model, dataset = fitted_cnn
        weights_path, _ = save_model_state(model, tmp_path / "cnn")
        other = EEGCNN(CNNConfig(filters=(8,), kernel_size=3, stride=2, hidden_units=8))
        other.ensure_network(dataset.n_channels, dataset.window_size)
        with pytest.raises((KeyError, ValueError)):
            load_model_state(other, weights_path)
