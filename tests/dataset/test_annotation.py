"""Tests for the annotation stage."""

import numpy as np
import pytest

from repro.dataset.annotation import TRANSITION_LABEL, AnnotationConfig, Annotator
from repro.dataset.protocol import CueEvent, ExperimentalProtocol, ProtocolConfig, Recording, RecordingSession
from repro.signals.synthetic import ACTION_IDLE, ACTION_LEFT, ACTION_RIGHT, ParticipantProfile

FS = 125.0


def _session_with_cues(cues, n_samples, participant="P01"):
    rng = np.random.default_rng(0)
    return RecordingSession(
        participant_id=participant,
        session_index=0,
        data=rng.standard_normal((4, n_samples)),
        timestamps=np.arange(n_samples) / FS,
        cues=cues,
        sampling_rate_hz=FS,
    )


class TestLabelsFromCues:
    def test_labels_follow_cue_blocks(self):
        cues = [CueEvent(0.0, ACTION_LEFT, 2.0), CueEvent(2.0, ACTION_IDLE, 2.0)]
        session = _session_with_cues(cues, 500)
        annotator = Annotator(AnnotationConfig(transition_period_s=0.0, apply_preprocessing=False))
        labels = annotator.labels_for_session(session)
        assert (labels[:250] == ACTION_LEFT).all()
        assert (labels[250:] == ACTION_IDLE).all()

    def test_transition_period_masks_start_of_blocks(self):
        cues = [CueEvent(0.0, ACTION_RIGHT, 2.0), CueEvent(2.0, ACTION_IDLE, 2.0)]
        session = _session_with_cues(cues, 500)
        annotator = Annotator(AnnotationConfig(transition_period_s=0.4, apply_preprocessing=False))
        labels = annotator.labels_for_session(session)
        n_trans = int(0.4 * FS)
        assert (labels[:n_trans] == TRANSITION_LABEL).all()
        assert (labels[n_trans:250] == ACTION_RIGHT).all()
        assert (labels[250:250 + n_trans] == TRANSITION_LABEL).all()

    def test_transition_can_be_kept(self):
        cues = [CueEvent(0.0, ACTION_RIGHT, 2.0)]
        session = _session_with_cues(cues, 250)
        annotator = Annotator(
            AnnotationConfig(transition_period_s=0.4, exclude_transition=False,
                             apply_preprocessing=False)
        )
        labels = annotator.labels_for_session(session)
        assert (labels == ACTION_RIGHT).all()

    def test_samples_before_first_cue_are_transition(self):
        cues = [CueEvent(1.0, ACTION_LEFT, 1.0)]
        session = _session_with_cues(cues, 375)
        annotator = Annotator(AnnotationConfig(transition_period_s=0.0, apply_preprocessing=False))
        labels = annotator.labels_for_session(session)
        assert (labels[: int(FS)] == TRANSITION_LABEL).all()

    def test_cue_beyond_data_ignored(self):
        cues = [CueEvent(0.0, ACTION_LEFT, 1.0), CueEvent(100.0, ACTION_RIGHT, 1.0)]
        session = _session_with_cues(cues, 125)
        annotator = Annotator(AnnotationConfig(transition_period_s=0.0, apply_preprocessing=False))
        labels = annotator.labels_for_session(session)
        assert (labels == ACTION_LEFT).all()


class TestAnnotateRecording:
    def test_annotate_recording_concatenates_sessions(self):
        config = ProtocolConfig(task_duration_s=1.0, rest_duration_s=1.0,
                                session_duration_s=4.0, n_sessions=2)
        protocol = ExperimentalProtocol(config, seed=1)
        profile = ParticipantProfile(participant_id="P02", seed=5)
        recording = protocol.record_participant(profile)
        annotated = Annotator(AnnotationConfig(apply_preprocessing=False)).annotate_recording(recording)
        assert annotated.n_samples == sum(s.data.shape[1] for s in recording.sessions)
        assert annotated.labels.shape[0] == annotated.n_samples

    def test_empty_recording_rejected(self):
        with pytest.raises(ValueError):
            Annotator().annotate_recording(Recording(participant_id="X"))

    def test_preprocessing_changes_data(self):
        cues = [CueEvent(0.0, ACTION_LEFT, 4.0)]
        session = _session_with_cues(cues, 500)
        raw = Annotator(AnnotationConfig(apply_preprocessing=False)).annotate_session(session)
        filtered = Annotator(AnnotationConfig(apply_preprocessing=True)).annotate_session(session)
        assert not np.allclose(raw.data, filtered.data)

    def test_label_fractions_sum_to_one(self):
        cues = [CueEvent(0.0, ACTION_LEFT, 2.0), CueEvent(2.0, ACTION_IDLE, 2.0)]
        session = _session_with_cues(cues, 500)
        annotated = Annotator(AnnotationConfig(apply_preprocessing=False)).annotate_session(session)
        fractions = annotated.label_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
