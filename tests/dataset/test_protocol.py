"""Tests for the experimental protocol simulator."""

import numpy as np
import pytest

from repro.dataset.protocol import ExperimentalProtocol, ProtocolConfig
from repro.signals.synthetic import ACTION_IDLE, ACTION_LEFT, ACTION_RIGHT, ParticipantProfile


@pytest.fixture()
def short_protocol():
    config = ProtocolConfig(
        task_duration_s=2.0,
        rest_duration_s=2.0,
        session_duration_s=12.0,
        n_sessions=2,
    )
    return ExperimentalProtocol(config, seed=0)


@pytest.fixture()
def profile():
    return ParticipantProfile(participant_id="P01", seed=3)


class TestCueSchedule:
    def test_alternates_task_and_idle(self, short_protocol):
        cues = short_protocol.cue_schedule()
        labels = [c.label for c in cues]
        assert labels[1::2] == [ACTION_IDLE] * (len(cues) // 2)
        assert all(l in (ACTION_LEFT, ACTION_RIGHT) for l in labels[0::2])

    def test_blocks_fill_session(self, short_protocol):
        cfg = short_protocol.config
        cues = short_protocol.cue_schedule()
        total = sum(c.duration_s for c in cues)
        assert total <= cfg.session_duration_s
        assert total == cfg.blocks_per_session() * (cfg.task_duration_s + cfg.rest_duration_s)

    def test_task_cycle_rotates_across_sessions(self, short_protocol):
        first_s0 = short_protocol.cue_schedule(0)[0].label
        first_s1 = short_protocol.cue_schedule(1)[0].label
        assert first_s0 != first_s1

    def test_cue_times_strictly_increasing(self, short_protocol):
        cues = short_protocol.cue_schedule()
        times = [c.time_s for c in cues]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_blocks_per_session_at_least_one(self):
        config = ProtocolConfig(task_duration_s=10.0, rest_duration_s=10.0, session_duration_s=5.0)
        assert config.blocks_per_session() == 1


class TestRecording:
    def test_session_duration_matches_schedule(self, short_protocol, profile):
        session = short_protocol.record_session(profile)
        expected = sum(c.duration_s for c in session.cues)
        assert session.duration_s == pytest.approx(expected, rel=0.05)

    def test_session_has_16_channels(self, short_protocol, profile):
        session = short_protocol.record_session(profile)
        assert session.n_channels == 16

    def test_record_participant_collects_all_sessions(self, short_protocol, profile):
        recording = short_protocol.record_participant(profile)
        assert len(recording.sessions) == 2
        assert recording.total_duration_s == pytest.approx(
            2 * recording.sessions[0].duration_s, rel=0.05
        )

    def test_concatenated_shifts_cue_times(self, short_protocol, profile):
        recording = short_protocol.record_participant(profile)
        data, cues = recording.concatenated()
        assert data.shape[1] == sum(s.data.shape[1] for s in recording.sessions)
        session_len = recording.sessions[0].duration_s
        second_session_cues = [c for c in cues if c.time_s >= session_len]
        assert second_session_cues

    def test_record_cohort_default_five_participants(self):
        config = ProtocolConfig(task_duration_s=1.0, rest_duration_s=1.0,
                                session_duration_s=4.0, n_sessions=1)
        protocol = ExperimentalProtocol(config)
        cohort = protocol.record_cohort()
        assert len(cohort) == 5
        assert set(cohort) == {f"P{i:02d}" for i in range(1, 6)}

    def test_timestamps_match_sample_count(self, short_protocol, profile):
        session = short_protocol.record_session(profile)
        assert session.timestamps.shape[0] == session.data.shape[1]
