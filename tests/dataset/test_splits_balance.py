"""Tests for dataset splits and class balancing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.balance import balance_classes, class_distribution
from repro.dataset.splits import leave_one_subject_out, stratified_split, train_validation_split
from repro.dataset.windows import WindowDataset
from repro.signals.synthetic import ACTIONS


def _dataset(n_per_class=(30, 30, 30), participants=("P01", "P02", "P03")):
    rng = np.random.default_rng(0)
    windows, labels, pids = [], [], []
    for class_idx, n in enumerate(n_per_class):
        for i in range(n):
            windows.append(rng.standard_normal((4, 50)))
            labels.append(class_idx)
            pids.append(participants[i % len(participants)])
    return WindowDataset(
        windows=np.stack(windows),
        labels=np.array(labels),
        label_names=ACTIONS,
        participant_ids=np.array(pids, dtype=object),
    )


class TestTrainValidationSplit:
    def test_sizes_sum_to_total(self):
        ds = _dataset()
        train, val = train_validation_split(ds, 0.2, seed=1)
        assert len(train) + len(val) == len(ds)

    def test_validation_fraction_respected(self):
        ds = _dataset((50, 50, 50))
        train, val = train_validation_split(ds, 0.2, seed=1)
        assert len(val) == pytest.approx(0.2 * len(ds), abs=2)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            train_validation_split(_dataset(), 1.5)

    def test_tiny_dataset_rejected(self):
        ds = _dataset((1, 0, 0))
        with pytest.raises(ValueError):
            train_validation_split(ds.subset([0]), 0.2)


class TestStratifiedSplit:
    def test_every_class_in_both_halves(self):
        ds = _dataset((10, 20, 40))
        train, val = stratified_split(ds, 0.25, seed=2)
        assert set(np.unique(train.labels)) == {0, 1, 2}
        assert set(np.unique(val.labels)) == {0, 1, 2}

    def test_no_window_lost_or_duplicated(self):
        ds = _dataset((11, 13, 17))
        train, val = stratified_split(ds, 0.3, seed=3)
        assert len(train) + len(val) == len(ds)

    @settings(max_examples=25, deadline=None)
    @given(
        fraction=st.floats(min_value=0.1, max_value=0.5),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_property_split_partitions_dataset(self, fraction, seed):
        ds = _dataset((12, 9, 15))
        train, val = stratified_split(ds, fraction, seed)
        assert len(train) + len(val) == len(ds)
        assert len(val) >= ds.n_classes  # at least one window per class


class TestLOSO:
    def test_one_fold_per_participant(self):
        ds = _dataset()
        folds = list(leave_one_subject_out(ds))
        assert [f.test_participant for f in folds] == ["P01", "P02", "P03"]

    def test_test_set_contains_only_held_out_participant(self):
        ds = _dataset()
        for fold in leave_one_subject_out(ds):
            assert set(fold.test.participant_ids.tolist()) == {fold.test_participant}
            assert fold.test_participant not in set(fold.train.participant_ids.tolist())
            assert fold.test_participant not in set(fold.validation.participant_ids.tolist())

    def test_single_participant_rejected(self):
        ds = _dataset(participants=("P01",))
        with pytest.raises(ValueError):
            list(leave_one_subject_out(ds))


class TestBalance:
    def test_undersample_equalises_counts(self):
        ds = _dataset((10, 20, 40))
        balanced = balance_classes(ds, "undersample", seed=0)
        counts = set(balanced.class_counts().values())
        assert counts == {10}

    def test_oversample_equalises_counts(self):
        ds = _dataset((10, 20, 40))
        balanced = balance_classes(ds, "oversample", seed=0)
        counts = set(balanced.class_counts().values())
        assert counts == {40}

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            balance_classes(_dataset(), "magic")

    def test_distribution_sums_to_one(self):
        dist = class_distribution(_dataset((10, 20, 40)))
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_empty_dataset_passthrough(self):
        ds = _dataset((5, 5, 5)).subset([])
        assert len(balance_classes(ds)) == 0
