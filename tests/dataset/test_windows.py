"""Tests for sliding-window segmentation, including hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.annotation import TRANSITION_LABEL, LabeledRecording
from repro.dataset.windows import WindowConfig, WindowDataset, segment_cohort, segment_recording
from repro.signals.synthetic import ACTION_IDLE, ACTION_LEFT, ACTION_RIGHT

FS = 125.0


def _recording(labels, n_channels=4, participant="P01"):
    labels = np.array(labels, dtype=object)
    rng = np.random.default_rng(1)
    data = rng.standard_normal((n_channels, labels.shape[0]))
    return LabeledRecording(
        participant_id=participant, data=data, labels=labels, sampling_rate_hz=FS
    )


class TestSegmentation:
    def test_window_count_for_uniform_labels(self):
        rec = _recording([ACTION_LEFT] * 300)
        ds = segment_recording(rec, WindowConfig(window_size=100, step=25))
        # Starts at 0, 25, ..., 200 -> 9 windows.
        assert len(ds) == 9
        assert ds.windows.shape == (9, 4, 100)

    def test_windows_straddling_label_change_are_dropped(self):
        labels = [ACTION_LEFT] * 150 + [ACTION_RIGHT] * 150
        ds = segment_recording(_recording(labels), WindowConfig(window_size=100, step=25))
        names = [ds.label_names[i] for i in ds.labels]
        assert set(names) == {ACTION_LEFT, ACTION_RIGHT}
        # Window starting at 75 would straddle the boundary; ensure none do.
        assert len(ds) == 6

    def test_transition_windows_excluded(self):
        labels = [TRANSITION_LABEL] * 100 + [ACTION_IDLE] * 200
        ds = segment_recording(_recording(labels), WindowConfig(window_size=100, step=25))
        assert all(ds.label_names[i] == ACTION_IDLE for i in ds.labels)

    def test_too_short_recording_yields_empty_dataset(self):
        ds = segment_recording(_recording([ACTION_LEFT] * 50), WindowConfig(window_size=100))
        assert len(ds) == 0
        assert ds.windows.shape[2] == 100

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            WindowConfig(window_size=0)
        with pytest.raises(ValueError):
            WindowConfig(step=0)

    @settings(max_examples=30, deadline=None)
    @given(
        window_size=st.integers(min_value=10, max_value=60),
        step=st.integers(min_value=5, max_value=40),
        block=st.integers(min_value=20, max_value=120),
    )
    def test_property_all_windows_have_pure_labels(self, window_size, step, block):
        labels = [ACTION_LEFT] * block + [ACTION_IDLE] * block + [ACTION_RIGHT] * block
        rec = _recording(labels, n_channels=2)
        ds = segment_recording(rec, WindowConfig(window_size=window_size, step=step))
        # Reconstruct each window position and verify purity directly.
        starts = range(0, len(labels) - window_size + 1, step)
        expected = 0
        label_arr = np.array(labels, dtype=object)
        for s in starts:
            seg = label_arr[s : s + window_size]
            if (seg == seg[0]).all():
                expected += 1
        assert len(ds) == expected

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=100, max_value=400))
    def test_property_window_shapes_consistent(self, n):
        ds = segment_recording(_recording([ACTION_IDLE] * n), WindowConfig(window_size=100, step=25))
        assert ds.windows.shape[0] == len(ds) == ds.labels.shape[0] == ds.participant_ids.shape[0]


class TestWindowDataset:
    @pytest.fixture()
    def dataset(self):
        labels = [ACTION_LEFT] * 200 + [ACTION_RIGHT] * 200 + [ACTION_IDLE] * 200
        return segment_recording(_recording(labels), WindowConfig(window_size=100, step=25))

    def test_class_counts_match_length(self, dataset):
        assert sum(dataset.class_counts().values()) == len(dataset)

    def test_subset_preserves_label_names(self, dataset):
        sub = dataset.subset([0, 1, 2])
        assert sub.label_names == dataset.label_names
        assert len(sub) == 3

    def test_for_participants_filters(self, dataset):
        assert len(dataset.for_participants(["P01"])) == len(dataset)
        assert len(dataset.for_participants(["P99"])) == 0

    def test_shuffled_preserves_multiset_of_labels(self, dataset):
        shuffled = dataset.shuffled(seed=1)
        assert sorted(shuffled.labels.tolist()) == sorted(dataset.labels.tolist())

    def test_merge_requires_same_label_names(self, dataset):
        other = WindowDataset(
            windows=np.zeros((1, 4, 100)),
            labels=np.zeros(1, dtype=int),
            label_names=("a", "b"),
            participant_ids=np.array(["P02"], dtype=object),
        )
        with pytest.raises(ValueError):
            WindowDataset.merge([dataset, other])

    def test_merge_empty_list_rejected(self):
        with pytest.raises(ValueError):
            WindowDataset.merge([])

    def test_segment_cohort_merges_participants(self):
        rec1 = _recording([ACTION_LEFT] * 300, participant="P01")
        rec2 = _recording([ACTION_RIGHT] * 300, participant="P02")
        ds = segment_cohort({"P01": rec1, "P02": rec2}, WindowConfig(window_size=100, step=50))
        assert set(ds.participant_ids.tolist()) == {"P01", "P02"}

    def test_segment_cohort_all_empty_rejected(self):
        rec = _recording([ACTION_LEFT] * 10, participant="P01")
        with pytest.raises(ValueError):
            segment_cohort({"P01": rec}, WindowConfig(window_size=100, step=25))
