"""Tests for the search space and candidate construction."""

import numpy as np
import pytest

from repro.models.cnn import EEGCNN
from repro.models.lstm_model import EEGLSTM
from repro.models.random_forest import RandomForestClassifier
from repro.models.transformer_model import EEGTransformer
from repro.search.space import (
    MODEL_FAMILIES,
    SEARCH_SPACE,
    CandidateSpec,
    SearchSpace,
    build_classifier,
    search_space_table,
)

RNG = np.random.default_rng(0)


class TestSearchSpace:
    def test_sample_produces_valid_family(self):
        space = SearchSpace()
        for _ in range(20):
            spec = space.sample(RNG)
            assert spec.family in MODEL_FAMILIES

    def test_sample_restricted_to_family(self):
        space = SearchSpace()
        spec = space.sample(RNG, family="cnn")
        assert spec.family == "cnn"
        assert "n_conv_layers" in spec.gene_dict

    def test_sampled_genes_come_from_table(self):
        space = SearchSpace()
        for _ in range(20):
            spec = space.sample(RNG)
            options = space.gene_options(spec.family)
            for name, value in spec.genes:
                assert value in options[name]

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(families=("mlp",))
        with pytest.raises(ValueError):
            SearchSpace(families=())

    def test_neighbours_returns_gene_options(self):
        space = SearchSpace()
        spec = space.sample(RNG, family="lstm")
        assert set(space.neighbours(spec, "hidden_size")) == {64, 128, 256, 512}
        with pytest.raises(KeyError):
            space.neighbours(spec, "kernel_size")

    def test_rf_space_has_no_gradient_optimizer(self):
        assert "optimizer" not in SEARCH_SPACE["rf"]

    def test_candidate_with_gene_replacement(self):
        space = SearchSpace()
        spec = space.sample(RNG, family="cnn")
        changed = spec.with_gene("kernel_size", 3)
        assert changed.gene_dict["kernel_size"] == 3
        with pytest.raises(KeyError):
            spec.with_gene("nonexistent", 1)

    def test_window_size_property(self):
        spec = SearchSpace().sample(RNG, family="transformer")
        assert spec.window_size in SEARCH_SPACE["shared"]["window_size"]


class TestBuildClassifier:
    @pytest.mark.parametrize(
        "family,expected_type",
        [
            ("cnn", EEGCNN),
            ("lstm", EEGLSTM),
            ("transformer", EEGTransformer),
            ("rf", RandomForestClassifier),
        ],
    )
    def test_builds_correct_type(self, family, expected_type):
        spec = SearchSpace().sample(np.random.default_rng(1), family=family)
        model = build_classifier(spec, epochs=1, scale=0.1)
        assert isinstance(model, expected_type)

    def test_scale_reduces_capacity(self):
        space = SearchSpace()
        spec = space.sample(np.random.default_rng(2), family="lstm")
        small = build_classifier(spec, scale=0.05)
        large = build_classifier(spec, scale=1.0)
        assert small.config.hidden_size < large.config.hidden_size

    def test_transformer_d_model_stays_divisible_by_heads(self):
        space = SearchSpace()
        for seed in range(10):
            spec = space.sample(np.random.default_rng(seed), family="transformer")
            model = build_classifier(spec, scale=0.07)
            assert model.config.d_model % model.config.n_heads == 0

    def test_unknown_family_rejected(self):
        spec = CandidateSpec("svm", (("window_size", 100),))
        with pytest.raises(ValueError):
            build_classifier(spec)

    def test_paper_scale_cnn_matches_selected_architecture(self):
        spec = CandidateSpec(
            "cnn",
            tuple(sorted({
                "n_conv_layers": 1, "filters": 32, "kernel_size": 5, "stride": 2,
                "pooling": "none", "batch_size": 32, "optimizer": "adam",
                "window_size": 190, "learning_rate": 1e-3,
            }.items())),
        )
        model = build_classifier(spec, scale=1.0)
        assert model.config.filters == (32,)
        assert model.config.kernel_size == 5
        assert model.config.stride == 2


class TestSearchSpaceTable:
    def test_one_row_per_family(self):
        rows = search_space_table()
        assert [r["model"] for r in rows] == list(MODEL_FAMILIES)

    def test_rows_carry_optimizers_and_hyperparameters(self):
        rows = {r["model"]: r for r in search_space_table()}
        assert "adam" in rows["cnn"]["optimizers"]
        assert "adamw" in rows["transformer"]["optimizers"]
        assert rows["rf"]["optimizers"] == ("n/a",)
        assert "hidden_size" in rows["lstm"]["hyperparameters"]
