"""Tests for evolutionary operators and the search driver."""

import numpy as np
import pytest

from repro.search.evolution import EvolutionConfig, EvolutionarySearch
from repro.search.operators import crossover, mutate, tournament_select
from repro.search.space import SearchSpace

RNG = np.random.default_rng(0)


class TestOperators:
    def test_tournament_prefers_fitter_candidates(self):
        space = SearchSpace()
        population = [space.sample(RNG) for _ in range(6)]
        fitness = [0.0, 0.1, 0.2, 0.3, 0.4, 10.0]
        winners = [
            tournament_select(population, fitness, np.random.default_rng(i), 4)
            for i in range(30)
        ]
        # The overwhelmingly fittest candidate should win most tournaments.
        assert winners.count(population[5]) > 15

    def test_tournament_input_validation(self):
        with pytest.raises(ValueError):
            tournament_select([], [], RNG)
        space = SearchSpace()
        with pytest.raises(ValueError):
            tournament_select([space.sample(RNG)], [0.1, 0.2], RNG)

    def test_crossover_same_family_mixes_genes(self):
        space = SearchSpace()
        a = space.sample(np.random.default_rng(1), family="cnn")
        b = space.sample(np.random.default_rng(2), family="cnn")
        child = crossover(a, b, np.random.default_rng(3))
        assert child.family == "cnn"
        for name, value in child.genes:
            assert value in (a.gene_dict[name], b.gene_dict[name])

    def test_crossover_mixed_family_returns_parent_copy(self):
        space = SearchSpace()
        a = space.sample(np.random.default_rng(1), family="cnn")
        b = space.sample(np.random.default_rng(2), family="rf")
        child = crossover(a, b, np.random.default_rng(3))
        assert child in (a, b)

    def test_mutation_respects_search_space(self):
        space = SearchSpace()
        spec = space.sample(np.random.default_rng(4), family="transformer")
        mutated = mutate(spec, space, np.random.default_rng(5), mutation_rate=1.0)
        options = space.gene_options("transformer")
        for name, value in mutated.genes:
            assert value in options[name]

    def test_zero_mutation_rate_is_identity(self):
        space = SearchSpace()
        spec = space.sample(np.random.default_rng(6))
        assert mutate(spec, space, RNG, mutation_rate=0.0) == spec

    def test_invalid_mutation_rate(self):
        space = SearchSpace()
        spec = space.sample(RNG)
        with pytest.raises(ValueError):
            mutate(spec, space, RNG, mutation_rate=1.5)


class TestEvolutionConfig:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            EvolutionConfig(population_size=1)
        with pytest.raises(ValueError):
            EvolutionConfig(generations=0)
        with pytest.raises(ValueError):
            EvolutionConfig(crossover_rate=1.5)
        with pytest.raises(ValueError):
            EvolutionConfig(mutation_rate=-0.1)
        with pytest.raises(ValueError):
            EvolutionConfig(elitism=12, population_size=12)


def _surrogate_evaluator(spec):
    """Cheap analytical evaluator: smaller models are slightly less accurate.

    Gives the search a deterministic landscape so tests can verify the
    mechanics (caching, Pareto extraction, best-model rule) without training.
    """
    genes = spec.gene_dict
    size_proxy = {
        "cnn": genes.get("filters", 8) * genes.get("n_conv_layers", 1) * 1000,
        "lstm": genes.get("hidden_size", 64) ** 2 // 4,
        "transformer": genes.get("d_model", 64) * genes.get("num_layers", 2) * 200,
        "rf": genes.get("n_estimators", 100) * 300,
    }[spec.family]
    accuracy = 0.6 + 0.3 * (1 - np.exp(-size_proxy / 50000)) + 0.02 * (
        spec.family == "cnn"
    )
    return float(min(accuracy, 0.99)), int(size_proxy)


class TestEvolutionarySearch:
    @pytest.fixture(scope="class")
    def result(self):
        config = EvolutionConfig(population_size=8, generations=3, seed=1,
                                 accuracy_threshold=0.8)
        search = EvolutionarySearch(config=config, evaluator=_surrogate_evaluator)
        return search.run()

    def test_all_generations_evaluated(self, result):
        assert len(result.evaluated) == 8 * 3
        assert len(result.per_generation_best) == 3

    def test_pareto_front_nonempty_and_non_dominated(self, result):
        assert result.pareto
        for a in result.pareto:
            for b in result.pareto:
                if a is b:
                    continue
                assert not (b.accuracy > a.accuracy and b.parameters <= a.parameters)

    def test_best_model_selected(self, result):
        assert result.best is not None
        assert result.best.accuracy > 0.0
        assert result.best in result.pareto

    def test_best_generation_accuracy_non_decreasing_on_average(self, result):
        assert max(result.per_generation_best) >= result.per_generation_best[0]

    def test_history_for_family_filters(self, result):
        for candidate in result.history_for_family("cnn"):
            assert candidate.spec.family == "cnn"

    def test_requires_data_or_evaluator(self):
        search = EvolutionarySearch(
            config=EvolutionConfig(population_size=2, generations=1, elitism=1)
        )
        with pytest.raises(ValueError):
            search.run()

    def test_cache_prevents_reevaluation(self):
        calls = []

        def counting_evaluator(spec):
            calls.append(spec)
            return 0.8, 1000

        config = EvolutionConfig(population_size=4, generations=3, seed=2,
                                 mutation_rate=0.0, crossover_rate=0.0, elitism=2)
        EvolutionarySearch(config=config, evaluator=counting_evaluator).run()
        # With no mutation/crossover the same specs recur; the cache must
        # prevent the evaluator being called once per generation per spec.
        assert len(calls) < 12

    def test_trains_real_models_end_to_end(self):
        from tests.helpers import make_toy_dataset
        from repro.dataset.splits import stratified_split

        dataset = make_toy_dataset(n_per_class=12, window_size=40)
        train, val = stratified_split(dataset, 0.25, seed=0)
        config = EvolutionConfig(
            population_size=2, generations=1, training_epochs=1, model_scale=0.05,
            elitism=1, seed=3,
        )
        space = SearchSpace(families=("cnn", "rf"))
        result = EvolutionarySearch(space=space, config=config).run(train, val)
        assert len(result.evaluated) == 2
        for candidate in result.evaluated:
            assert 0.0 <= candidate.accuracy <= 1.0
            assert candidate.parameters > 0
