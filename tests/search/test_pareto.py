"""Tests for fitness scoring, Pareto front and best-model selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search.pareto import (
    FitnessWeights,
    ParetoPoint,
    fitness_scores,
    hypervolume_2d,
    pareto_front,
    select_best_model,
)


def _points(pairs):
    return [ParetoPoint(accuracy=a, parameters=p) for a, p in pairs]


class TestFitnessScores:
    def test_empty_input(self):
        assert fitness_scores([]).shape == (0,)

    def test_higher_accuracy_lower_params_scores_best(self):
        points = _points([(0.9, 1000), (0.6, 1000), (0.9, 100000)])
        scores = fitness_scores(points)
        assert np.argmax(scores) == 0

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            FitnessWeights(accuracy=-1.0)
        with pytest.raises(ValueError):
            FitnessWeights(accuracy=0.0, parameters=0.0)

    def test_identical_points_score_equally(self):
        points = _points([(0.8, 500), (0.8, 500)])
        scores = fitness_scores(points)
        assert scores[0] == pytest.approx(scores[1])


class TestParetoFront:
    def test_dominated_points_removed(self):
        points = _points([(0.9, 1000), (0.8, 2000), (0.95, 500)])
        front = pareto_front(points)
        # (0.9,1000) and (0.8,2000) are dominated by (0.95,500).
        assert [(p.accuracy, p.parameters) for p in front] == [(0.95, 500)]

    def test_front_sorted_by_parameters(self):
        points = _points([(0.7, 100), (0.9, 10000), (0.8, 1000)])
        front = pareto_front(points)
        params = [p.parameters for p in front]
        assert params == sorted(params)
        assert len(front) == 3

    def test_equal_accuracy_smaller_model_kept(self):
        points = _points([(0.9, 1000), (0.9, 500)])
        front = pareto_front(points)
        assert (0.9, 500) in [(p.accuracy, p.parameters) for p in front]

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0),
                st.integers(min_value=1, max_value=10**6),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_property_front_is_mutually_non_dominating(self, data):
        front = pareto_front(_points(data))
        assert front  # never empty for non-empty input
        for a in front:
            for b in front:
                if a is b:
                    continue
                assert not (b.accuracy > a.accuracy and b.parameters <= a.parameters)

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0),
                st.integers(min_value=1, max_value=10**6),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_property_every_point_dominated_by_or_on_front(self, data):
        points = _points(data)
        front = pareto_front(points)
        for p in points:
            covered = any(
                f.accuracy >= p.accuracy and f.parameters <= p.parameters for f in front
            )
            assert covered


class TestBestModelSelection:
    def test_smallest_model_meeting_threshold_selected(self):
        points = _points([(0.95, 100000), (0.90, 5000), (0.86, 800), (0.7, 100)])
        best = select_best_model(points, accuracy_threshold=0.85)
        assert (best.accuracy, best.parameters) == (0.86, 800)

    def test_falls_back_to_most_accurate_when_none_meet_threshold(self):
        points = _points([(0.7, 100), (0.75, 1000)])
        best = select_best_model(points, accuracy_threshold=0.9)
        assert best.accuracy == pytest.approx(0.75)

    def test_empty_points_returns_none(self):
        assert select_best_model([]) is None


class TestHypervolume:
    def test_better_front_has_larger_hypervolume(self):
        good = _points([(0.95, 100), (0.9, 50)])
        bad = _points([(0.6, 100000)])
        assert hypervolume_2d(good, reference_parameters=10**6) > hypervolume_2d(
            bad, reference_parameters=10**6
        )

    def test_empty_front_zero(self):
        assert hypervolume_2d([]) == 0.0
