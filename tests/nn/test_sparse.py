"""Tests for sparsity-aware kernel lowering (repro.nn.sparse + compiler)."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor, no_grad
from repro.nn.inference import (
    DENSE_ONLY,
    SPARSE_ALWAYS,
    DenseKernel,
    InferencePlan,
    LSTMKernel,
    SoftmaxKernel,
    SparseDenseKernel,
    SparsityConfig,
    compile_network,
)
from repro.nn.layers import Dense
from repro.nn.lstm import LSTM
from repro.nn.module import Sequential
from repro.nn.sparse import ColumnSparseWeight


def _forward_autograd(module, x):
    module.eval()
    with no_grad():
        return module(Tensor(x)).data


def _prune_to(param, sparsity, seed=0):
    """Zero the smallest-magnitude fraction of one parameter in place."""
    flat = np.abs(param.data).reshape(-1)
    k = int(sparsity * flat.size)
    if k:
        threshold = np.partition(flat, k - 1)[k - 1]
        param.data[np.abs(param.data) <= threshold] = 0.0


#: Lowering config with no size floor, so tiny test matrices qualify.
TINY_ALWAYS = SparsityConfig(mode="always", min_size=0)
TINY_DENSE = SparsityConfig(mode="never")


class TestColumnSparseWeight:
    @pytest.mark.parametrize("sparsity", [0.5, 0.9, 0.99])
    def test_matmul_matches_dense(self, sparsity):
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((40, 25)).astype(np.float32)
        dense[rng.random(dense.shape) < sparsity] = 0.0
        weight = ColumnSparseWeight.from_dense(dense)
        x = rng.standard_normal((7, 40)).astype(np.float32)
        np.testing.assert_allclose(weight.matmul(x), x @ dense, atol=1e-5)
        assert weight.nnz == int(np.count_nonzero(dense))

    def test_bound_buffers_match_allocating_path_bitwise(self):
        rng = np.random.default_rng(1)
        dense = rng.standard_normal((30, 12)).astype(np.float32)
        dense[rng.random(dense.shape) < 0.8] = 0.0
        weight = ColumnSparseWeight.from_dense(dense)
        x = rng.standard_normal((5, 30)).astype(np.float32)
        out = np.empty((5, 12), dtype=np.float32)
        gather = weight.gather_scratch(5, np.float32)
        weight.matmul(x, out=out, gather=gather)
        assert np.array_equal(out, weight.matmul(x))

    def test_fully_zero_rows_are_never_gathered(self):
        dense = np.zeros((10, 4), dtype=np.float32)
        dense[3, :] = 1.0  # single surviving input row
        weight = ColumnSparseWeight.from_dense(dense)
        assert set(np.unique(weight.indices[weight.values != 0])) == {3}
        assert weight.kmax == 1

    def test_fully_zero_columns_yield_zero_output(self):
        rng = np.random.default_rng(2)
        dense = rng.standard_normal((8, 5)).astype(np.float32)
        dense[:, 2] = 0.0
        weight = ColumnSparseWeight.from_dense(dense)
        out = weight.matmul(rng.standard_normal((3, 8)).astype(np.float32))
        np.testing.assert_array_equal(out[:, 2], np.zeros(3, dtype=np.float32))

    def test_all_zero_matrix_supported(self):
        weight = ColumnSparseWeight.from_dense(np.zeros((6, 4), dtype=np.float32))
        out = weight.matmul(np.ones((2, 6), dtype=np.float32))
        np.testing.assert_array_equal(out, np.zeros((2, 4), dtype=np.float32))

    def test_construction_is_deterministic(self):
        rng = np.random.default_rng(3)
        dense = rng.standard_normal((20, 9)).astype(np.float32)
        dense[rng.random(dense.shape) < 0.7] = 0.0
        a = ColumnSparseWeight.from_dense(dense)
        b = ColumnSparseWeight.from_dense(dense.copy())
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.values, b.values)


class TestSparseLowering:
    def test_pruned_dense_lowers_to_sparse_kernel(self):
        layer = Dense(30, 12, seed=0)
        _prune_to(layer.weight, 0.8)
        plan = compile_network(Sequential(layer), sparsity=TINY_ALWAYS)
        assert isinstance(plan.kernels[0], SparseDenseKernel)
        assert "sparse-dense" in plan.describe()[0]

    def test_below_threshold_stays_dense(self):
        layer = Dense(30, 12, seed=0)
        _prune_to(layer.weight, 0.5)  # under the 0.7 threshold
        plan = compile_network(
            Sequential(layer), sparsity=SparsityConfig(mode="always", min_size=0)
        )
        assert isinstance(plan.kernels[0], DenseKernel)

    def test_min_size_keeps_tiny_matrices_dense(self):
        layer = Dense(30, 12, seed=0)
        _prune_to(layer.weight, 0.9)
        plan = compile_network(Sequential(layer), sparsity=SPARSE_ALWAYS)
        assert isinstance(plan.kernels[0], DenseKernel)  # 360 < min_size

    def test_dense_only_suppresses_lowering(self):
        layer = Dense(30, 12, seed=0)
        _prune_to(layer.weight, 0.95)
        plan = compile_network(Sequential(layer), sparsity=TINY_DENSE)
        assert isinstance(plan.kernels[0], DenseKernel)

    def test_sparse_dense_matches_autograd_with_fused_activation(self):
        net = Sequential(Dense(30, 12, seed=0, activation="relu"), Dense(12, 3, seed=1))
        _prune_to(net.layers[0].weight, 0.85)
        plan = compile_network(net, sparsity=TINY_ALWAYS)
        assert isinstance(plan.kernels[0], SparseDenseKernel)
        assert plan.kernels[0].activation == "relu"
        x = np.random.default_rng(4).standard_normal((6, 30))
        np.testing.assert_allclose(plan(x), _forward_autograd(net, x), atol=1e-5)

    def test_pruned_lstm_lowers_recurrent_projection(self):
        lstm = LSTM(input_size=6, hidden_size=16, seed=0)
        _prune_to(lstm.cells[0].weight_hh, 0.85)
        plan = compile_network(Sequential(lstm), sparsity=TINY_ALWAYS)
        kernel = plan.kernels[0]
        assert isinstance(kernel, LSTMKernel)
        _, w_hh, _ = kernel.layers[0]
        assert isinstance(w_hh, ColumnSparseWeight)
        assert "sparse" in kernel.describe()
        x = np.random.default_rng(5).standard_normal((4, 9, 6))
        np.testing.assert_allclose(plan(x), _forward_autograd(lstm, x), atol=1e-5)

    def test_sparse_lstm_specialized_is_bit_for_bit_generic(self):
        lstm = LSTM(input_size=6, hidden_size=16, num_layers=2, seed=1)
        for cell in lstm.cells:
            _prune_to(cell.weight_hh, 0.9)
            _prune_to(cell.weight_ih, 0.9)
        plan = compile_network(Sequential(lstm), sparsity=TINY_ALWAYS)
        plan.append(SoftmaxKernel())
        x = np.random.default_rng(6).standard_normal((5, 9, 6))
        generic = plan(x).copy()
        assert plan.specialize(5)
        plan(x)
        assert np.array_equal(generic, plan(x))

    def test_quantized_plans_never_lower_sparse(self):
        layer = Dense(30, 12, seed=0)
        _prune_to(layer.weight, 0.9)

        def quantizer(values):
            scale = float(np.max(np.abs(values)) / 127 or 1.0)
            return np.round(values / scale), scale

        plan = compile_network(
            Sequential(layer), quantizer=quantizer, sparsity=TINY_ALWAYS
        )
        assert isinstance(plan.kernels[0], DenseKernel)

    def test_auto_mode_is_a_valid_config(self):
        layer = Dense(30, 12, seed=0)
        _prune_to(layer.weight, 0.9)
        # auto calibrates on the actual matrix; either outcome is legal,
        # but the plan must match the network regardless.
        plan = compile_network(
            Sequential(layer), sparsity=SparsityConfig(mode="auto", min_size=0)
        )
        x = np.random.default_rng(7).standard_normal((3, 30))
        np.testing.assert_allclose(plan(x), _forward_autograd(layer, x), atol=1e-5)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            SparsityConfig(mode="sometimes")


class TestSparseTransport:
    def test_sparse_dense_round_trips_exactly(self):
        layer = Dense(30, 12, seed=0)
        _prune_to(layer.weight, 0.85)
        plan = compile_network(Sequential(layer), sparsity=TINY_ALWAYS)
        rebuilt = InferencePlan.from_payload(plan.to_payload())
        kernel, copy = plan.kernels[0], rebuilt.kernels[0]
        assert isinstance(copy, SparseDenseKernel)
        assert np.array_equal(kernel.weight.indices, copy.weight.indices)
        assert np.array_equal(kernel.weight.values, copy.weight.values)
        x = np.random.default_rng(8).standard_normal((4, 30))
        assert np.array_equal(plan(x), rebuilt(x))

    def test_sparse_lstm_round_trips_exactly(self):
        lstm = LSTM(input_size=6, hidden_size=16, seed=2)
        _prune_to(lstm.cells[0].weight_hh, 0.9)
        _prune_to(lstm.cells[0].weight_ih, 0.9)
        plan = compile_network(Sequential(lstm), sparsity=TINY_ALWAYS)
        rebuilt = InferencePlan.from_payload(plan.to_payload())
        x = np.random.default_rng(9).standard_normal((3, 7, 6))
        assert np.array_equal(plan(x), rebuilt(x))

    def test_legacy_dense_lstm_payload_still_loads(self):
        """Pre-sparse payloads carried a flat per-layer scale list."""
        lstm = LSTM(input_size=4, hidden_size=8, seed=3)
        plan = compile_network(Sequential(lstm), sparsity=TINY_DENSE)
        payload = plan.to_payload()
        import json

        meta = json.loads(str(payload[InferencePlan.META_KEY]))
        kernel_meta = meta["kernels"][0]
        kernel_meta["scales"] = [
            [entry["ih"]["scale"], entry["hh"]["scale"]]
            for entry in kernel_meta.pop("layers")
        ]
        payload[InferencePlan.META_KEY] = np.asarray(json.dumps(meta))
        rebuilt = InferencePlan.from_payload(payload)
        x = np.random.default_rng(10).standard_normal((2, 6, 4))
        assert np.array_equal(plan(x), rebuilt(x))
