"""Tests for sparsity-aware kernel lowering (repro.nn.sparse + compiler)."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor, no_grad
from repro.nn.inference import (
    DENSE_ONLY,
    SPARSE_ALWAYS,
    DenseKernel,
    InferencePlan,
    LSTMKernel,
    SoftmaxKernel,
    SparseDenseKernel,
    SparsityConfig,
    compile_network,
)
from repro.nn.layers import Dense
from repro.nn.lstm import LSTM
from repro.nn.module import Sequential
from repro.nn.sparse import BlockSparseWeight, ColumnSparseWeight


def _forward_autograd(module, x):
    module.eval()
    with no_grad():
        return module(Tensor(x)).data


def _prune_to(param, sparsity, seed=0):
    """Zero the smallest-magnitude fraction of one parameter in place."""
    flat = np.abs(param.data).reshape(-1)
    k = int(sparsity * flat.size)
    if k:
        threshold = np.partition(flat, k - 1)[k - 1]
        param.data[np.abs(param.data) <= threshold] = 0.0


#: Lowering config with no size floor, so tiny test matrices qualify.
TINY_ALWAYS = SparsityConfig(mode="always", min_size=0)
TINY_DENSE = SparsityConfig(mode="never")


class TestColumnSparseWeight:
    @pytest.mark.parametrize("sparsity", [0.5, 0.9, 0.99])
    def test_matmul_matches_dense(self, sparsity):
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((40, 25)).astype(np.float32)
        dense[rng.random(dense.shape) < sparsity] = 0.0
        weight = ColumnSparseWeight.from_dense(dense)
        x = rng.standard_normal((7, 40)).astype(np.float32)
        np.testing.assert_allclose(weight.matmul(x), x @ dense, atol=1e-5)
        assert weight.nnz == int(np.count_nonzero(dense))

    def test_bound_buffers_match_allocating_path_bitwise(self):
        rng = np.random.default_rng(1)
        dense = rng.standard_normal((30, 12)).astype(np.float32)
        dense[rng.random(dense.shape) < 0.8] = 0.0
        weight = ColumnSparseWeight.from_dense(dense)
        x = rng.standard_normal((5, 30)).astype(np.float32)
        out = np.empty((5, 12), dtype=np.float32)
        gather = weight.gather_scratch(5, np.float32)
        weight.matmul(x, out=out, gather=gather)
        assert np.array_equal(out, weight.matmul(x))

    def test_fully_zero_rows_are_never_gathered(self):
        dense = np.zeros((10, 4), dtype=np.float32)
        dense[3, :] = 1.0  # single surviving input row
        weight = ColumnSparseWeight.from_dense(dense)
        assert set(np.unique(weight.indices[weight.values != 0])) == {3}
        assert weight.kmax == 1

    def test_fully_zero_columns_yield_zero_output(self):
        rng = np.random.default_rng(2)
        dense = rng.standard_normal((8, 5)).astype(np.float32)
        dense[:, 2] = 0.0
        weight = ColumnSparseWeight.from_dense(dense)
        out = weight.matmul(rng.standard_normal((3, 8)).astype(np.float32))
        np.testing.assert_array_equal(out[:, 2], np.zeros(3, dtype=np.float32))

    def test_all_zero_matrix_supported(self):
        weight = ColumnSparseWeight.from_dense(np.zeros((6, 4), dtype=np.float32))
        out = weight.matmul(np.ones((2, 6), dtype=np.float32))
        np.testing.assert_array_equal(out, np.zeros((2, 4), dtype=np.float32))

    def test_construction_is_deterministic(self):
        rng = np.random.default_rng(3)
        dense = rng.standard_normal((20, 9)).astype(np.float32)
        dense[rng.random(dense.shape) < 0.7] = 0.0
        a = ColumnSparseWeight.from_dense(dense)
        b = ColumnSparseWeight.from_dense(dense.copy())
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.values, b.values)


class TestSparseLowering:
    def test_pruned_dense_lowers_to_sparse_kernel(self):
        layer = Dense(30, 12, seed=0)
        _prune_to(layer.weight, 0.8)
        plan = compile_network(Sequential(layer), sparsity=TINY_ALWAYS)
        assert isinstance(plan.kernels[0], SparseDenseKernel)
        assert "sparse-dense" in plan.describe()[0]

    def test_below_threshold_stays_dense(self):
        layer = Dense(30, 12, seed=0)
        _prune_to(layer.weight, 0.5)  # under the 0.7 threshold
        plan = compile_network(
            Sequential(layer), sparsity=SparsityConfig(mode="always", min_size=0)
        )
        assert isinstance(plan.kernels[0], DenseKernel)

    def test_min_size_keeps_tiny_matrices_dense(self):
        layer = Dense(30, 12, seed=0)
        _prune_to(layer.weight, 0.9)
        plan = compile_network(Sequential(layer), sparsity=SPARSE_ALWAYS)
        assert isinstance(plan.kernels[0], DenseKernel)  # 360 < min_size

    def test_dense_only_suppresses_lowering(self):
        layer = Dense(30, 12, seed=0)
        _prune_to(layer.weight, 0.95)
        plan = compile_network(Sequential(layer), sparsity=TINY_DENSE)
        assert isinstance(plan.kernels[0], DenseKernel)

    def test_sparse_dense_matches_autograd_with_fused_activation(self):
        net = Sequential(Dense(30, 12, seed=0, activation="relu"), Dense(12, 3, seed=1))
        _prune_to(net.layers[0].weight, 0.85)
        plan = compile_network(net, sparsity=TINY_ALWAYS)
        assert isinstance(plan.kernels[0], SparseDenseKernel)
        assert plan.kernels[0].activation == "relu"
        x = np.random.default_rng(4).standard_normal((6, 30))
        np.testing.assert_allclose(plan(x), _forward_autograd(net, x), atol=1e-5)

    def test_pruned_lstm_lowers_recurrent_projection(self):
        lstm = LSTM(input_size=6, hidden_size=16, seed=0)
        _prune_to(lstm.cells[0].weight_hh, 0.85)
        plan = compile_network(Sequential(lstm), sparsity=TINY_ALWAYS)
        kernel = plan.kernels[0]
        assert isinstance(kernel, LSTMKernel)
        _, w_hh, _ = kernel.layers[0]
        assert isinstance(w_hh, ColumnSparseWeight)
        assert "sparse" in kernel.describe()
        x = np.random.default_rng(5).standard_normal((4, 9, 6))
        np.testing.assert_allclose(plan(x), _forward_autograd(lstm, x), atol=1e-5)

    def test_sparse_lstm_specialized_is_bit_for_bit_generic(self):
        lstm = LSTM(input_size=6, hidden_size=16, num_layers=2, seed=1)
        for cell in lstm.cells:
            _prune_to(cell.weight_hh, 0.9)
            _prune_to(cell.weight_ih, 0.9)
        plan = compile_network(Sequential(lstm), sparsity=TINY_ALWAYS)
        plan.append(SoftmaxKernel())
        x = np.random.default_rng(6).standard_normal((5, 9, 6))
        generic = plan(x).copy()
        assert plan.specialize(5)
        plan(x)
        assert np.array_equal(generic, plan(x))

    def test_quantized_plans_never_lower_sparse(self):
        layer = Dense(30, 12, seed=0)
        _prune_to(layer.weight, 0.9)

        def quantizer(values):
            scale = float(np.max(np.abs(values)) / 127 or 1.0)
            return np.round(values / scale), scale

        plan = compile_network(
            Sequential(layer), quantizer=quantizer, sparsity=TINY_ALWAYS
        )
        assert isinstance(plan.kernels[0], DenseKernel)

    def test_auto_mode_is_a_valid_config(self):
        layer = Dense(30, 12, seed=0)
        _prune_to(layer.weight, 0.9)
        # auto calibrates on the actual matrix; either outcome is legal,
        # but the plan must match the network regardless.
        plan = compile_network(
            Sequential(layer), sparsity=SparsityConfig(mode="auto", min_size=0)
        )
        x = np.random.default_rng(7).standard_normal((3, 30))
        np.testing.assert_allclose(plan(x), _forward_autograd(layer, x), atol=1e-5)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            SparsityConfig(mode="sometimes")


class TestSparseTransport:
    def test_sparse_dense_round_trips_exactly(self):
        layer = Dense(30, 12, seed=0)
        _prune_to(layer.weight, 0.85)
        plan = compile_network(Sequential(layer), sparsity=TINY_ALWAYS)
        rebuilt = InferencePlan.from_payload(plan.to_payload())
        kernel, copy = plan.kernels[0], rebuilt.kernels[0]
        assert isinstance(copy, SparseDenseKernel)
        assert np.array_equal(kernel.weight.indices, copy.weight.indices)
        assert np.array_equal(kernel.weight.values, copy.weight.values)
        x = np.random.default_rng(8).standard_normal((4, 30))
        assert np.array_equal(plan(x), rebuilt(x))

    def test_sparse_lstm_round_trips_exactly(self):
        lstm = LSTM(input_size=6, hidden_size=16, seed=2)
        _prune_to(lstm.cells[0].weight_hh, 0.9)
        _prune_to(lstm.cells[0].weight_ih, 0.9)
        plan = compile_network(Sequential(lstm), sparsity=TINY_ALWAYS)
        rebuilt = InferencePlan.from_payload(plan.to_payload())
        x = np.random.default_rng(9).standard_normal((3, 7, 6))
        assert np.array_equal(plan(x), rebuilt(x))

    def test_legacy_dense_lstm_payload_still_loads(self):
        """Pre-sparse payloads carried a flat per-layer scale list."""
        lstm = LSTM(input_size=4, hidden_size=8, seed=3)
        plan = compile_network(Sequential(lstm), sparsity=TINY_DENSE)
        payload = plan.to_payload()
        import json

        meta = json.loads(str(payload[InferencePlan.META_KEY]))
        kernel_meta = meta["kernels"][0]
        kernel_meta["scales"] = [
            [entry["ih"]["scale"], entry["hh"]["scale"]]
            for entry in kernel_meta.pop("layers")
        ]
        payload[InferencePlan.META_KEY] = np.asarray(json.dumps(meta))
        rebuilt = InferencePlan.from_payload(payload)
        x = np.random.default_rng(10).standard_normal((2, 6, 4))
        assert np.array_equal(plan(x), rebuilt(x))


# ---------------------------------------------------------------------- #
# Block-structured layout (tile slabs)
# ---------------------------------------------------------------------- #
def _block_pruned(shape, tile, keep=0.2, seed=0, dtype=np.float32):
    """A dense matrix keeping exactly ``keep`` of its tiles (rest all-zero)."""
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal(shape).astype(dtype)
    th, tw = tile
    n_row, n_col = shape[0] // th, shape[1] // tw
    n_tiles = n_row * n_col
    n_keep = max(1, int(round(keep * n_tiles)))
    mask = np.zeros(n_tiles, dtype=bool)
    mask[rng.permutation(n_tiles)[:n_keep]] = True
    tiles = dense.reshape(n_row, th, n_col, tw)
    tiles *= mask.reshape(n_row, n_col)[:, None, :, None]
    return dense


class TestBlockSparseWeight:
    @pytest.mark.parametrize("tile", [(8, 8), (16, 1), (4, 2)])
    @pytest.mark.parametrize("batch", [1, 7, 64])
    def test_matmul_matches_dense(self, tile, batch):
        dense = _block_pruned((32, 16), tile, seed=1)
        weight = BlockSparseWeight.from_dense(dense, tile)
        x = np.random.default_rng(2).standard_normal((batch, 32)).astype(np.float32)
        np.testing.assert_allclose(weight.matmul(x), x @ dense, atol=1e-5)
        assert weight.nnz == int(np.count_nonzero(dense))

    @pytest.mark.parametrize("tile", [(8, 8), (16, 1)])
    def test_bound_scratch_matches_allocating_path_bitwise(self, tile):
        dense = _block_pruned((32, 16), tile, seed=3)
        weight = BlockSparseWeight.from_dense(dense, tile)
        x = np.random.default_rng(4).standard_normal((5, 32)).astype(np.float32)
        out = np.empty((5, 16), dtype=np.float32)
        panels, prod = weight.matmul_scratch(5, np.float32)
        weight.matmul(x, out=out, panels=panels, prod=prod)
        assert np.array_equal(out, weight.matmul(x))

    def test_tile_must_divide_the_matrix(self):
        with pytest.raises(ValueError):
            BlockSparseWeight.from_dense(np.zeros((30, 16), dtype=np.float32), (8, 8))
        with pytest.raises(ValueError):
            BlockSparseWeight.from_dense(np.zeros((32, 15), dtype=np.float32), (8, 8))

    def test_all_zero_matrix_supported(self):
        weight = BlockSparseWeight.from_dense(np.zeros((16, 8), dtype=np.float32), (8, 8))
        out = weight.matmul(np.ones((3, 16), dtype=np.float32))
        np.testing.assert_array_equal(out, np.zeros((3, 8), dtype=np.float32))
        assert weight.tiles_kept == 0

    def test_occupancy_reports_the_tile_grid(self):
        dense = np.zeros((16, 16), dtype=np.float32)
        dense[:8, :8] = 1.0  # exactly one of four (8, 8) tiles survives
        weight = BlockSparseWeight.from_dense(dense, (8, 8))
        assert weight.tiles_total == 4
        assert weight.tiles_kept == 1
        assert weight.block_occupancy == 0.25
        assert weight.kmax == 1

    def test_construction_is_deterministic(self):
        dense = _block_pruned((32, 16), (8, 8), seed=5)
        a = BlockSparseWeight.from_dense(dense, (8, 8))
        b = BlockSparseWeight.from_dense(dense.copy(), (8, 8))
        assert np.array_equal(a.block_indices, b.block_indices)
        assert np.array_equal(a.blocks, b.blocks)

    def test_state_round_trips_exactly(self):
        dense = _block_pruned((32, 16), (16, 1), seed=6)
        weight = BlockSparseWeight.from_dense(dense, (16, 1))
        rebuilt = BlockSparseWeight.from_state(
            weight.shape, weight.tile, weight.state_arrays(), np.float32
        )
        x = np.random.default_rng(7).standard_normal((4, 32)).astype(np.float32)
        assert np.array_equal(weight.matmul(x), rebuilt.matmul(x))

    def test_slab_is_smaller_than_dense_at_high_sparsity(self):
        dense = _block_pruned((128, 64), (8, 8), keep=0.1, seed=8)
        weight = BlockSparseWeight.from_dense(dense, (8, 8))
        assert weight.nbytes < dense.nbytes


def _gate_coupled_pruned(hidden=64, groups=4, grid=(32, 8), keep=0.15, seed=0):
    """A (hidden, groups*hidden) matrix pruned gate-coupled on the LCM grid.

    Every kept super-tile spans the same column slice of all ``groups`` gate
    panels — the pattern ``apply_block_magnitude_pruning`` produces for LSTM
    projections, under which the fused union occupancy equals the per-gate
    occupancy exactly.
    """
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((hidden, groups * hidden)).astype(np.float32)
    rows_g, cols_g = hidden // grid[0], hidden // grid[1]
    mask = rng.random((rows_g, cols_g)) < keep
    view = dense.reshape(rows_g, grid[0], groups, cols_g, grid[1])
    view *= mask[:, None, None, :, None]
    return dense


class TestFusedGateSlabs:
    """The gate-fused block layout: one slab per column across all four gates."""

    TILES = [(8, 8), (16, 1), (32, 1)]

    @pytest.mark.parametrize("tile", TILES)
    @pytest.mark.parametrize("batch", [1, 7, 64])
    def test_fused_matmul_matches_dense(self, tile, batch):
        dense = _gate_coupled_pruned(seed=31)
        fused = BlockSparseWeight.from_dense(dense, tile, groups=4)
        assert fused.groups == 4
        assert fused.nnz == int(np.count_nonzero(dense))
        x = np.random.default_rng(32).standard_normal((batch, 64)).astype(np.float32)
        np.testing.assert_allclose(fused.matmul(x), x @ dense, atol=1e-5)

    @pytest.mark.parametrize("tile", TILES)
    @pytest.mark.parametrize("batch", [1, 7, 64])
    def test_fused_matches_the_split_layout(self, tile, batch):
        """Same matrix, split (groups=1) vs fused slabs: same product.

        Not bit-for-bit — fusing changes the BLAS problem shape, and with it
        the kernel's accumulation order — but within float32 rounding of the
        identical sum.
        """
        dense = _gate_coupled_pruned(seed=33)
        split = BlockSparseWeight.from_dense(dense, tile)
        fused = BlockSparseWeight.from_dense(dense, tile, groups=4)
        x = np.random.default_rng(34).standard_normal((batch, 64)).astype(np.float32)
        np.testing.assert_allclose(fused.matmul(x), split.matmul(x), atol=1e-5)

    def test_gate_coupling_makes_fusion_free(self):
        """Coupled patterns: the fused union keeps exactly the split tiles."""
        dense = _gate_coupled_pruned(seed=35)
        split = BlockSparseWeight.from_dense(dense, (8, 8))
        fused = BlockSparseWeight.from_dense(dense, (8, 8), groups=4)
        # Four split tiles collapse into one 4x-wide slab: same stored count.
        assert fused.tiles_kept * 4 == split.tiles_kept
        assert fused.blocks.size == split.blocks.size

    @pytest.mark.parametrize("tile", [(8, 8), (16, 1)])
    def test_fused_bound_scratch_matches_allocating_path_bitwise(self, tile):
        dense = _gate_coupled_pruned(seed=36)
        fused = BlockSparseWeight.from_dense(dense, tile, groups=4)
        x = np.random.default_rng(37).standard_normal((5, 64)).astype(np.float32)
        out = np.empty((5, 256), dtype=np.float32)
        panels, prod = fused.matmul_scratch(5, np.float32)
        fused.matmul(x, out=out, panels=panels, prod=prod)
        assert np.array_equal(out, fused.matmul(x))

    def test_fused_state_round_trips_exactly(self):
        dense = _gate_coupled_pruned(seed=38)
        fused = BlockSparseWeight.from_dense(dense, (8, 8), groups=4)
        rebuilt = BlockSparseWeight.from_state(
            fused.shape, fused.tile, fused.state_arrays(), np.float32, groups=4
        )
        assert rebuilt.groups == 4
        x = np.random.default_rng(39).standard_normal((4, 64)).astype(np.float32)
        assert np.array_equal(fused.matmul(x), rebuilt.matmul(x))

    def test_groups_must_divide_the_columns(self):
        with pytest.raises(ValueError):
            BlockSparseWeight.from_dense(
                np.zeros((16, 24), dtype=np.float32), (8, 8), groups=4
            )

    def test_repr_names_the_slab_geometry(self):
        dense = _gate_coupled_pruned(seed=40)
        fused = BlockSparseWeight.from_dense(dense, (8, 8), groups=4)
        assert "groups=4" in repr(fused)


class TestFusedGateLowering:
    """Gate-coupled pruned LSTMs lower to ONE fused slab per projection."""

    def _coupled_lstm(self, seed=41):
        from repro.compression.pruning import apply_block_magnitude_pruning

        lstm = LSTM(input_size=32, hidden_size=64, seed=seed)
        apply_block_magnitude_pruning(Sequential(lstm), 0.9)
        return lstm

    def test_coupled_lstm_lowers_fused_slabs(self):
        lstm = self._coupled_lstm()
        plan = compile_network(Sequential(lstm), sparsity=TINY_ALWAYS)
        kernel = plan.kernels[0]
        assert isinstance(kernel, LSTMKernel)
        w_ih, w_hh, _ = kernel.layers[0]
        assert isinstance(w_ih, BlockSparseWeight) and w_ih.groups == 4
        assert isinstance(w_hh, BlockSparseWeight) and w_hh.groups == 4
        x = np.random.default_rng(42).standard_normal((4, 9, 32))
        np.testing.assert_allclose(plan(x), _forward_autograd(lstm, x), atol=1e-5)

    @pytest.mark.parametrize("batch", [1, 7, 64])
    def test_fused_plan_matches_autograd_across_batches(self, batch):
        lstm = self._coupled_lstm(seed=43)
        plan = compile_network(Sequential(lstm), sparsity=TINY_ALWAYS)
        x = np.random.default_rng(44 + batch).standard_normal((batch, 9, 32))
        np.testing.assert_allclose(plan(x), _forward_autograd(lstm, x), atol=1e-5)

    def test_fused_specialized_is_bit_for_bit_generic(self):
        lstm = self._coupled_lstm(seed=45)
        plan = compile_network(Sequential(lstm), sparsity=TINY_ALWAYS)
        plan.append(SoftmaxKernel())
        x = np.random.default_rng(46).standard_normal((5, 9, 32))
        generic = plan(x).copy()
        assert plan.specialize(5)
        plan(x)  # bind the arena
        assert np.array_equal(generic, plan(x))

    def test_fused_plan_round_trips_through_payloads(self):
        lstm = self._coupled_lstm(seed=47)
        plan = compile_network(Sequential(lstm), sparsity=TINY_ALWAYS)
        rebuilt = InferencePlan.from_payload(plan.to_payload())
        w_ih, w_hh, _ = rebuilt.kernels[0].layers[0]
        assert isinstance(w_ih, BlockSparseWeight) and w_ih.groups == 4
        assert isinstance(w_hh, BlockSparseWeight) and w_hh.groups == 4
        x = np.random.default_rng(48).standard_normal((3, 7, 32))
        assert np.array_equal(plan(x), rebuilt(x))


class TestBlockLowering:
    def test_block_pruned_dense_lowers_to_block_kernel(self):
        layer = Dense(32, 16, seed=0)
        layer.weight.data = _block_pruned((32, 16), (8, 8), keep=0.1, seed=9)
        plan = compile_network(Sequential(layer), sparsity=TINY_ALWAYS)
        kernel = plan.kernels[0]
        assert isinstance(kernel, SparseDenseKernel)
        assert isinstance(kernel.weight, BlockSparseWeight)
        assert "block8x8" in plan.describe()[0]

    def test_elementwise_pruning_stays_ell(self):
        layer = Dense(32, 16, seed=0)
        _prune_to(layer.weight, 0.9)  # unstructured zeros ignore the tile grid
        plan = compile_network(Sequential(layer), sparsity=TINY_ALWAYS)
        assert isinstance(plan.kernels[0].weight, ColumnSparseWeight)

    def test_indivisible_shape_falls_back_to_ell(self):
        layer = Dense(30, 12, seed=0)  # no configured tile divides (30, 12)
        layer.weight.data[np.random.default_rng(10).random((30, 12)) < 0.9] = 0.0
        plan = compile_network(Sequential(layer), sparsity=TINY_ALWAYS)
        assert isinstance(plan.kernels[0].weight, ColumnSparseWeight)

    def test_block_dense_matches_autograd(self):
        net = Sequential(Dense(32, 16, seed=0, activation="relu"), Dense(16, 3, seed=1))
        net.layers[0].weight.data = _block_pruned((32, 16), (8, 8), keep=0.2, seed=11)
        plan = compile_network(net, sparsity=TINY_ALWAYS)
        assert isinstance(plan.kernels[0].weight, BlockSparseWeight)
        assert plan.kernels[0].activation == "relu"
        x = np.random.default_rng(12).standard_normal((6, 32))
        np.testing.assert_allclose(plan(x), _forward_autograd(net, x), atol=1e-5)

    def test_block_pruned_lstm_lowers_row_tiles(self):
        lstm = LSTM(input_size=16, hidden_size=32, seed=0)
        cell = lstm.cells[0]
        cell.weight_ih.data = _block_pruned((16, 128), (16, 1), keep=0.1, seed=13)
        cell.weight_hh.data = _block_pruned((32, 128), (16, 1), keep=0.1, seed=14)
        plan = compile_network(Sequential(lstm), sparsity=TINY_ALWAYS)
        kernel = plan.kernels[0]
        assert isinstance(kernel, LSTMKernel)
        w_ih, w_hh, _ = kernel.layers[0]
        assert isinstance(w_ih, BlockSparseWeight) and w_ih.tile == (16, 1)
        assert isinstance(w_hh, BlockSparseWeight) and w_hh.tile == (16, 1)
        assert "block" in kernel.describe()
        x = np.random.default_rng(15).standard_normal((4, 9, 16))
        np.testing.assert_allclose(plan(x), _forward_autograd(lstm, x), atol=1e-5)

    def test_block_lstm_specialized_is_bit_for_bit_generic(self):
        lstm = LSTM(input_size=16, hidden_size=32, seed=1)
        cell = lstm.cells[0]
        cell.weight_ih.data = _block_pruned((16, 128), (16, 1), keep=0.15, seed=16)
        cell.weight_hh.data = _block_pruned((32, 128), (16, 1), keep=0.15, seed=17)
        plan = compile_network(Sequential(lstm), sparsity=TINY_ALWAYS)
        plan.append(SoftmaxKernel())
        x = np.random.default_rng(18).standard_normal((5, 9, 16))
        generic = plan(x).copy()
        assert plan.specialize(5)
        plan(x)
        assert np.array_equal(generic, plan(x))

    def test_block_plans_round_trip_through_payloads(self):
        lstm = LSTM(input_size=16, hidden_size=32, seed=2)
        cell = lstm.cells[0]
        cell.weight_ih.data = _block_pruned((16, 128), (16, 1), keep=0.1, seed=19)
        cell.weight_hh.data = _block_pruned((32, 128), (16, 1), keep=0.1, seed=20)
        plan = compile_network(Sequential(lstm), sparsity=TINY_ALWAYS)
        rebuilt = InferencePlan.from_payload(plan.to_payload())
        w_ih, _, _ = rebuilt.kernels[0].layers[0]
        assert isinstance(w_ih, BlockSparseWeight)
        x = np.random.default_rng(21).standard_normal((3, 7, 16))
        assert np.array_equal(plan(x), rebuilt(x))


class TestBlockEquivalenceAtPaperLevels:
    """Block-sparse serving matches the autograd oracle at every paper level."""

    @pytest.mark.parametrize("level", [0.3, 0.5, 0.7, 0.9])
    @pytest.mark.parametrize("batch", [1, 7, 64])
    def test_dense_network(self, level, batch):
        from repro.compression.pruning import apply_block_magnitude_pruning

        net = Sequential(Dense(32, 16, seed=3, activation="relu"), Dense(16, 8, seed=4))
        apply_block_magnitude_pruning(net, level, tile=(8, 8))
        plan = compile_network(net, sparsity=TINY_ALWAYS)
        x = np.random.default_rng(int(level * 10) + batch).standard_normal((batch, 32))
        np.testing.assert_allclose(plan(x), _forward_autograd(net, x), atol=1e-5)

    @pytest.mark.parametrize("level", [0.3, 0.5, 0.7, 0.9])
    @pytest.mark.parametrize("batch", [1, 7, 64])
    def test_lstm_network(self, level, batch):
        from repro.compression.pruning import apply_block_magnitude_pruning

        lstm = LSTM(input_size=16, hidden_size=32, seed=5)
        apply_block_magnitude_pruning(Sequential(lstm), level)
        plan = compile_network(Sequential(lstm), sparsity=TINY_ALWAYS)
        x = np.random.default_rng(int(level * 100) + batch).standard_normal((batch, 9, 16))
        np.testing.assert_allclose(plan(x), _forward_autograd(lstm, x), atol=1e-5)
