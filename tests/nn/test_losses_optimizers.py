"""Tests for losses and optimizers, including small end-to-end training runs."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.layers import Dense
from repro.nn.losses import accuracy, cross_entropy, mse_loss
from repro.nn.module import Sequential
from repro.nn.layers import ReLU
from repro.nn.optimizers import SGD, Adam, AdamW, RMSProp, build_optimizer
from tests.nn.gradcheck import check_gradient

RNG = np.random.default_rng(3)


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        logits = Tensor(np.array([[2.0, 0.0, -1.0], [0.5, 0.5, 0.5]]))
        targets = np.array([0, 2])
        loss = cross_entropy(logits, targets)
        probs = np.exp(logits.data) / np.exp(logits.data).sum(axis=1, keepdims=True)
        expected = -np.mean(np.log(probs[np.arange(2), targets]))
        assert loss.item() == pytest.approx(expected, rel=1e-10)

    def test_gradient_check(self):
        logits = RNG.standard_normal((4, 3))
        targets = np.array([0, 1, 2, 1])
        check_gradient(lambda t: cross_entropy(t, targets), logits)

    def test_class_weights_change_loss(self):
        logits = Tensor(RNG.standard_normal((6, 3)))
        targets = np.array([0, 0, 0, 1, 2, 2])
        unweighted = cross_entropy(logits, targets).item()
        weighted = cross_entropy(logits, targets, class_weights=np.array([10.0, 1.0, 1.0])).item()
        assert weighted != pytest.approx(unweighted)

    def test_invalid_targets_rejected(self):
        logits = Tensor(RNG.standard_normal((2, 3)))
        with pytest.raises(ValueError):
            cross_entropy(logits, np.array([0, 5]))
        with pytest.raises(ValueError):
            cross_entropy(logits, np.array([0]))

    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        assert cross_entropy(logits, np.array([0, 1])).item() < 1e-4


class TestMSEAndAccuracy:
    def test_mse_zero_for_identical(self):
        pred = Tensor(np.ones((3, 2)))
        assert mse_loss(pred, np.ones((3, 2))).item() == pytest.approx(0.0)

    def test_mse_gradient(self):
        x = RNG.standard_normal((3, 2))
        target = RNG.standard_normal((3, 2))
        check_gradient(lambda t: mse_loss(t, target), x)

    def test_mse_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse_loss(Tensor(np.ones((2, 2))), np.ones((3, 2)))

    def test_accuracy_values(self):
        logits = Tensor(np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]]))
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_empty_is_zero(self):
        assert accuracy(Tensor(np.zeros((0, 3))), np.zeros(0)) == 0.0


def _quadratic_parameter():
    from repro.nn.module import Parameter

    return Parameter(np.array([5.0, -3.0]))


class TestOptimizersOnQuadratic:
    """Every optimizer must drive x towards the minimum of f(x) = ||x||^2."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda p: SGD([p], lr=0.1),
            lambda p: SGD([p], lr=0.05, momentum=0.9),
            lambda p: Adam([p], lr=0.2),
            lambda p: AdamW([p], lr=0.2, weight_decay=1e-3),
            lambda p: RMSProp([p], lr=0.05),
        ],
        ids=["sgd", "sgd-momentum", "adam", "adamw", "rmsprop"],
    )
    def test_converges_to_zero(self, factory):
        param = _quadratic_parameter()
        optimizer = factory(param)
        for _ in range(200):
            optimizer.zero_grad()
            loss = (param * param).sum()
            loss.backward()
            optimizer.step()
        assert np.abs(param.data).max() < 0.1

    def test_zero_grad_clears_gradients(self):
        param = _quadratic_parameter()
        optimizer = SGD([param], lr=0.1)
        (param * param).sum().backward()
        optimizer.zero_grad()
        assert param.grad is None

    def test_step_skips_parameters_without_grad(self):
        param = _quadratic_parameter()
        before = param.data.copy()
        SGD([param], lr=0.1).step()
        np.testing.assert_allclose(param.data, before)

    def test_invalid_hyperparameters_rejected(self):
        param = _quadratic_parameter()
        with pytest.raises(ValueError):
            SGD([param], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([param], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            RMSProp([param], lr=0.1, alpha=2.0)
        with pytest.raises(ValueError):
            Adam([param], lr=0.1, betas=(1.5, 0.9))
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_build_optimizer_by_name(self):
        param = _quadratic_parameter()
        assert isinstance(build_optimizer("adam", [param], 1e-3), Adam)
        assert isinstance(build_optimizer("AdamW", [param], 1e-3), AdamW)
        with pytest.raises(ValueError):
            build_optimizer("lion", [param], 1e-3)

    def test_weight_decay_shrinks_weights(self):
        param = _quadratic_parameter()
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        optimizer.zero_grad()
        (param * 0.0).sum().backward()
        before = np.abs(param.data).sum()
        optimizer.step()
        assert np.abs(param.data).sum() < before


class TestEndToEndTraining:
    def test_small_mlp_learns_linearly_separable_data(self):
        rng = np.random.default_rng(0)
        n = 120
        x = rng.standard_normal((n, 2))
        y = (x[:, 0] + x[:, 1] > 0).astype(int)
        model = Sequential(Dense(2, 16, seed=0), ReLU(), Dense(16, 2, seed=1))
        optimizer = Adam(model.parameters(), lr=0.05)
        for _ in range(60):
            optimizer.zero_grad()
            logits = model(Tensor(x))
            loss = cross_entropy(logits, y)
            loss.backward()
            optimizer.step()
        final_acc = accuracy(model(Tensor(x)), y)
        assert final_acc > 0.95

    def test_loss_decreases_during_training(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((64, 4))
        y = (x.sum(axis=1) > 0).astype(int)
        model = Sequential(Dense(4, 8, seed=2), ReLU(), Dense(8, 2, seed=3))
        optimizer = SGD(model.parameters(), lr=0.1, momentum=0.9)
        losses = []
        for _ in range(40):
            optimizer.zero_grad()
            loss = cross_entropy(model(Tensor(x)), y)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.5
