"""Gradient checks and behavioural tests for the autograd engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.autograd import Tensor, concatenate, no_grad, stack, where
from tests.nn.gradcheck import check_gradient

RNG = np.random.default_rng(0)


class TestBasics:
    def test_tensor_wraps_data(self):
        t = Tensor([[1.0, 2.0]])
        assert t.shape == (1, 2)
        assert t.size == 2
        assert not t.requires_grad

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_on_non_scalar_requires_grad_argument(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_no_grad_disables_graph(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = t * 3.0
        assert not out.requires_grad

    def test_detach_breaks_graph(self):
        t = Tensor([2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad

    def test_zero_grad_clears_accumulated_gradient(self):
        t = Tensor([2.0], requires_grad=True)
        (t * t).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_gradient_accumulates_across_backward_calls(self):
        t = Tensor([3.0], requires_grad=True)
        (t * 2).sum().backward()
        (t * 2).sum().backward()
        np.testing.assert_allclose(t.grad, [4.0])

    def test_reused_tensor_accumulates_through_graph(self):
        t = Tensor([2.0], requires_grad=True)
        out = (t * t + t).sum()  # d/dt = 2t + 1 = 5
        out.backward()
        np.testing.assert_allclose(t.grad, [5.0])


class TestElementwiseGradients:
    def test_add_broadcast(self):
        x = RNG.standard_normal((3, 4))
        bias = RNG.standard_normal(4)
        check_gradient(lambda t: (t + bias).sum(), x)
        check_gradient(lambda t: (Tensor(x) + t).sum(), bias)

    def test_mul(self):
        x = RNG.standard_normal((2, 5))
        other = RNG.standard_normal((2, 5))
        check_gradient(lambda t: (t * other * 2.0).sum(), x)

    def test_div(self):
        x = RNG.standard_normal((3, 3)) + 3.0
        denom = RNG.standard_normal((3, 3)) + 5.0
        check_gradient(lambda t: (t / denom).sum(), x)
        check_gradient(lambda t: (Tensor(x) / t).sum(), denom)

    def test_pow(self):
        x = np.abs(RNG.standard_normal((4,))) + 0.5
        check_gradient(lambda t: (t**3).sum(), x)
        check_gradient(lambda t: (t**0.5).sum(), x)

    def test_exp_log(self):
        x = np.abs(RNG.standard_normal((3, 2))) + 0.5
        check_gradient(lambda t: t.exp().sum(), x)
        check_gradient(lambda t: t.log().sum(), x)

    def test_tanh_sigmoid_relu(self):
        x = RNG.standard_normal((3, 4))
        check_gradient(lambda t: t.tanh().sum(), x)
        check_gradient(lambda t: t.sigmoid().sum(), x)
        # Shift away from zero so the ReLU kink does not corrupt the check.
        x_shifted = x + np.where(x >= 0, 0.5, -0.5)
        check_gradient(lambda t: t.relu().sum(), x_shifted)

    def test_clip(self):
        x = np.array([-2.0, -0.3, 0.4, 2.5])
        check_gradient(lambda t: t.clip(-1.0, 1.0).sum(), x)

    def test_neg_sub(self):
        x = RNG.standard_normal((2, 2))
        y = RNG.standard_normal((2, 2))
        check_gradient(lambda t: (-t).sum(), x)
        check_gradient(lambda t: (t - y).sum(), x)
        check_gradient(lambda t: (Tensor(x) - t).sum(), y)


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        x = RNG.standard_normal((3, 4, 2))
        check_gradient(lambda t: (t.sum(axis=1) ** 2).sum(), x)
        check_gradient(lambda t: (t.sum(axis=2, keepdims=True) ** 2).sum(), x)

    def test_mean(self):
        x = RNG.standard_normal((4, 3))
        check_gradient(lambda t: (t.mean(axis=0) ** 2).sum(), x)
        check_gradient(lambda t: t.mean(), x)

    def test_max(self):
        x = RNG.standard_normal((3, 5))
        check_gradient(lambda t: (t.max(axis=1) ** 2).sum(), x)

    def test_reshape_transpose(self):
        x = RNG.standard_normal((2, 3, 4))
        check_gradient(lambda t: (t.reshape(6, 4) ** 2).sum(), x)
        check_gradient(lambda t: (t.transpose(2, 0, 1) ** 2).sum(), x)

    def test_getitem(self):
        x = RNG.standard_normal((4, 5))
        check_gradient(lambda t: (t[1:3, ::2] ** 2).sum(), x)
        idx = np.array([0, 2, 2])
        check_gradient(lambda t: (t[idx] ** 2).sum(), x)

    def test_matmul_2d(self):
        a = RNG.standard_normal((3, 4))
        b = RNG.standard_normal((4, 2))
        check_gradient(lambda t: (t.matmul(b) ** 2).sum(), a)
        check_gradient(lambda t: (Tensor(a).matmul(t) ** 2).sum(), b)

    def test_matmul_batched(self):
        a = RNG.standard_normal((2, 3, 4))
        b = RNG.standard_normal((2, 4, 5))
        check_gradient(lambda t: (t.matmul(b) ** 2).sum(), a)
        check_gradient(lambda t: (Tensor(a).matmul(t) ** 2).sum(), b)

    def test_matmul_broadcast_weight(self):
        a = RNG.standard_normal((2, 3, 4))
        w = RNG.standard_normal((4, 5))
        check_gradient(lambda t: (Tensor(a).matmul(t) ** 2).sum(), w)

    def test_softmax_and_log_softmax(self):
        x = RNG.standard_normal((3, 6))
        check_gradient(lambda t: (t.softmax(axis=-1) ** 2).sum(), x)
        check_gradient(lambda t: (t.log_softmax(axis=-1) ** 2).sum(), x)

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(RNG.standard_normal((5, 7)))
        np.testing.assert_allclose(x.softmax(axis=-1).data.sum(axis=-1), np.ones(5))


class TestFreeFunctions:
    def test_concatenate_gradient(self):
        a = RNG.standard_normal((2, 3))
        b = RNG.standard_normal((2, 2))
        check_gradient(
            lambda t: (concatenate([t, Tensor(b)], axis=1) ** 2).sum(), a
        )
        check_gradient(
            lambda t: (concatenate([Tensor(a), t], axis=1) ** 2).sum(), b
        )

    def test_stack_gradient(self):
        a = RNG.standard_normal((3,))
        check_gradient(lambda t: (stack([t, Tensor(a)], axis=0) ** 2).sum(), a)

    def test_where_gradient(self):
        cond = np.array([True, False, True, False])
        a = RNG.standard_normal(4)
        b = RNG.standard_normal(4)
        check_gradient(lambda t: (where(cond, t, Tensor(b)) ** 2).sum(), a)
        check_gradient(lambda t: (where(cond, Tensor(a), t) ** 2).sum(), b)

    def test_concatenate_without_grads_returns_plain_tensor(self):
        out = concatenate([Tensor(np.ones(2)), Tensor(np.ones(2))])
        assert not out.requires_grad


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=5),
        cols=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_linear_chain_gradient(self, rows, cols, seed):
        """d/dx sum(x*w + x) == w + 1 for elementwise operations."""
        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal((rows, cols)), requires_grad=True)
        w = rng.standard_normal((rows, cols))
        (x * w + x).sum().backward()
        np.testing.assert_allclose(x.grad, w + 1.0, rtol=1e-10, atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_property_softmax_gradient_sums_to_zero(self, seed):
        """Softmax outputs sum to 1, so gradients of any row-sum vanish."""
        rng = np.random.default_rng(seed)
        x = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
        x.softmax(axis=-1).sum().backward()
        np.testing.assert_allclose(x.grad, np.zeros_like(x.grad), atol=1e-10)
