"""Tests for layers: shapes, gradients, train/eval behaviour."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Dense,
    Dropout,
    Embedding,
    Flatten,
    LayerNorm,
    MaxPool2d,
    ReLU,
    Tanh,
)
from repro.nn.module import Sequential
from tests.nn.gradcheck import numeric_gradient

RNG = np.random.default_rng(1)


def _param_gradcheck(module, x, param, rtol=1e-4, atol=1e-6):
    """Finite-difference check of d loss / d param for loss = sum(module(x)^2)."""

    def loss_value(values):
        param.data = values.reshape(param.data.shape).copy()
        out = module(Tensor(x))
        return float((out.data**2).sum())

    original = param.data.copy()
    out = module(Tensor(x))
    loss = (out * out).sum()
    module.zero_grad()
    loss.backward()
    analytic = param.grad.copy()
    numeric = numeric_gradient(loss_value, original.copy().reshape(-1)).reshape(
        param.data.shape
    )
    param.data = original
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


class TestDense:
    def test_output_shape(self):
        layer = Dense(8, 3)
        out = layer(Tensor(RNG.standard_normal((5, 8))))
        assert out.shape == (5, 3)

    def test_weight_and_bias_gradients(self):
        layer = Dense(4, 3, seed=2)
        x = RNG.standard_normal((6, 4))
        _param_gradcheck(layer, x, layer.weight)
        _param_gradcheck(layer, x, layer.bias)

    def test_no_bias_option(self):
        layer = Dense(4, 2, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_relu_activation_clamps_negative(self):
        layer = Dense(3, 3, activation="relu")
        out = layer(Tensor(RNG.standard_normal((10, 3))))
        assert (out.data >= 0).all()

    def test_invalid_activation_rejected(self):
        layer = Dense(3, 3, activation="gelu")
        with pytest.raises(ValueError):
            layer(Tensor(RNG.standard_normal((2, 3))))

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Dense(0, 3)


class TestConv2d:
    def test_output_shape_valid_padding(self):
        conv = Conv2d(1, 32, kernel_size=5, stride=2)
        x = Tensor(RNG.standard_normal((2, 1, 16, 150)))
        out = conv(x)
        assert out.shape == (2, 32, 6, 73)

    def test_output_shape_with_padding(self):
        conv = Conv2d(1, 4, kernel_size=3, stride=1, padding=1)
        out = conv(Tensor(RNG.standard_normal((1, 1, 8, 8))))
        assert out.shape == (1, 4, 8, 8)

    def test_too_small_input_rejected(self):
        conv = Conv2d(1, 2, kernel_size=5)
        with pytest.raises(ValueError):
            conv(Tensor(RNG.standard_normal((1, 1, 3, 3))))

    def test_weight_gradient_matches_finite_difference(self):
        conv = Conv2d(1, 2, kernel_size=3, stride=1, seed=3)
        x = RNG.standard_normal((2, 1, 5, 6))
        _param_gradcheck(conv, x, conv.weight, rtol=1e-3)
        _param_gradcheck(conv, x, conv.bias, rtol=1e-3)

    def test_input_gradient_matches_finite_difference(self):
        conv = Conv2d(1, 2, kernel_size=3, stride=2, seed=4)
        x = RNG.standard_normal((1, 1, 6, 7))

        def loss_value(values):
            out = conv(Tensor(values.reshape(x.shape)))
            return float((out.data**2).sum())

        inp = Tensor(x.copy(), requires_grad=True)
        loss = (conv(inp) * conv(inp)).sum()
        # Re-run forward once: use single forward for gradient correctness.
        inp.zero_grad()
        conv.zero_grad()
        out = conv(inp)
        (out * out).sum().backward()
        numeric = numeric_gradient(loss_value, x.copy().reshape(-1)).reshape(x.shape)
        np.testing.assert_allclose(inp.grad, numeric, rtol=1e-3, atol=1e-6)

    def test_parameter_count(self):
        conv = Conv2d(1, 32, kernel_size=5)
        assert conv.parameter_count() == 32 * 1 * 5 * 5 + 32


class TestPooling:
    def test_maxpool_shape_and_values(self):
        pool = MaxPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = pool(Tensor(x))
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_avgpool_values(self):
        pool = AvgPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = pool(Tensor(x))
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_maxpool_gradient_routes_to_argmax(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4), requires_grad=True)
        out = MaxPool2d(2)(x)
        out.sum().backward()
        expected = np.zeros((1, 1, 4, 4))
        expected[0, 0, 1, 1] = expected[0, 0, 1, 3] = 1
        expected[0, 0, 3, 1] = expected[0, 0, 3, 3] = 1
        np.testing.assert_allclose(x.grad, expected)

    def test_avgpool_gradient_is_uniform(self):
        x = Tensor(RNG.standard_normal((1, 1, 4, 4)), requires_grad=True)
        AvgPool2d(2)(x).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))

    def test_pool_input_too_small_rejected(self):
        with pytest.raises(ValueError):
            MaxPool2d(4)(Tensor(np.zeros((1, 1, 2, 2))))

    def test_non_4d_input_rejected(self):
        with pytest.raises(ValueError):
            MaxPool2d(2)(Tensor(np.zeros((4, 4))))


class TestDropoutNormEmbedding:
    def test_dropout_identity_in_eval(self):
        layer = Dropout(0.5)
        layer.eval()
        x = Tensor(RNG.standard_normal((10, 10)))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_dropout_zeroes_in_train_mode(self):
        layer = Dropout(0.5, seed=0)
        x = Tensor(np.ones((50, 50)))
        out = layer(x)
        zero_fraction = float(np.mean(out.data == 0))
        assert 0.3 < zero_fraction < 0.7

    def test_dropout_preserves_expected_value(self):
        layer = Dropout(0.3, seed=1)
        x = Tensor(np.ones((200, 200)))
        assert np.mean(layer(x).data) == pytest.approx(1.0, abs=0.05)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_layernorm_normalises_last_axis(self):
        layer = LayerNorm(16)
        x = Tensor(RNG.standard_normal((4, 16)) * 10 + 3)
        out = layer(x)
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(4), atol=1e-6)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(4), atol=1e-2)

    def test_layernorm_gradients(self):
        layer = LayerNorm(6)
        x = RNG.standard_normal((3, 6))
        _param_gradcheck(layer, x, layer.gamma)
        _param_gradcheck(layer, x, layer.beta)

    def test_embedding_lookup_shape(self):
        emb = Embedding(10, 4)
        out = emb(np.array([1, 3, 3]))
        assert out.shape == (3, 4)

    def test_embedding_gradient_accumulates_for_repeated_indices(self):
        emb = Embedding(5, 2, seed=0)
        out = emb(np.array([2, 2]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])


class TestContainers:
    def test_sequential_applies_in_order(self):
        model = Sequential(Dense(4, 8, seed=0), ReLU(), Dense(8, 2, seed=1))
        out = model(Tensor(RNG.standard_normal((3, 4))))
        assert out.shape == (3, 2)

    def test_flatten(self):
        out = Flatten()(Tensor(RNG.standard_normal((2, 3, 4, 5))))
        assert out.shape == (2, 60)

    def test_tanh_layer_bounded(self):
        out = Tanh()(Tensor(RNG.standard_normal((5, 5)) * 10))
        assert np.abs(out.data).max() <= 1.0

    def test_sequential_parameter_discovery(self):
        model = Sequential(Dense(4, 8), Dense(8, 2))
        assert model.parameter_count() == (4 * 8 + 8) + (8 * 2 + 2)

    def test_train_eval_propagates(self):
        model = Sequential(Dense(4, 4), Dropout(0.5))
        model.eval()
        assert not model.layers[1].training
        model.train()
        assert model.layers[1].training

    def test_state_dict_round_trip(self):
        model = Sequential(Dense(4, 3, seed=0), Dense(3, 2, seed=1))
        state = model.state_dict()
        clone = Sequential(Dense(4, 3, seed=5), Dense(3, 2, seed=6))
        clone.load_state_dict(state)
        x = Tensor(RNG.standard_normal((2, 4)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_state_dict_mismatch_rejected(self):
        model = Sequential(Dense(4, 3))
        with pytest.raises(KeyError):
            model.load_state_dict({"bogus": np.zeros(3)})
