"""Finite-difference gradient checking helper shared by the nn tests."""

import numpy as np

from repro.nn.autograd import Tensor


def numeric_gradient(func, value, eps=1e-6):
    """Central finite-difference gradient of scalar-valued ``func`` at ``value``."""
    value = np.asarray(value, dtype=np.float64)
    grad = np.zeros_like(value)
    it = np.nditer(value, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = value[idx]
        value[idx] = original + eps
        plus = func(value)
        value[idx] = original - eps
        minus = func(value)
        value[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(build_scalar, value, rtol=1e-4, atol=1e-6):
    """Compare autograd and finite-difference gradients.

    ``build_scalar(tensor)`` must return a scalar Tensor built from the given
    input tensor; gradients are compared at ``value``.
    """
    value = np.asarray(value, dtype=np.float64)
    tensor = Tensor(value.copy(), requires_grad=True)
    out = build_scalar(tensor)
    out.backward()
    analytic = tensor.grad

    def as_scalar(v):
        return float(build_scalar(Tensor(v)).data)

    numeric = numeric_gradient(as_scalar, value.copy())
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)
