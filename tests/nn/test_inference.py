"""Tests for the compiled inference engine (repro.nn.inference)."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor, no_grad
from repro.nn.inference import (
    ActivationKernel,
    DenseKernel,
    InferencePlan,
    LSTMKernel,
    PlanCompilationError,
    SoftmaxKernel,
    compile_network,
)
from repro.nn.layers import Conv2d, Dense, Dropout, Flatten, LayerNorm, MaxPool2d, ReLU
from repro.nn.lstm import LSTM
from repro.nn.module import Module, Sequential
from repro.nn.attention import TransformerEncoderLayer


def _forward_autograd(module, x):
    module.eval()
    with no_grad():
        return module(Tensor(x)).data


class TestCompileSequential:
    def test_dense_stack_matches_autograd(self):
        net = Sequential(
            Dense(10, 16, seed=0, activation="relu"),
            Dense(16, 8, seed=1, activation="tanh"),
            Dense(8, 3, seed=2),
        )
        plan = compile_network(net)
        x = np.random.default_rng(0).standard_normal((5, 10))
        np.testing.assert_allclose(plan(x), _forward_autograd(net, x), atol=1e-5)

    def test_standalone_activation_fused_into_dense(self):
        net = Sequential(Dense(6, 4, seed=0), ReLU(), Dense(4, 2, seed=1))
        plan = compile_network(net)
        # ReLU folded into the first dense kernel: 2 kernels, not 3.
        assert len(plan) == 2
        assert isinstance(plan.kernels[0], DenseKernel)
        assert plan.kernels[0].activation == "relu"
        x = np.random.default_rng(1).standard_normal((3, 6))
        np.testing.assert_allclose(plan(x), _forward_autograd(net, x), atol=1e-5)

    def test_unfusable_activation_stays_standalone(self):
        net = Sequential(Flatten(), ReLU(), Dense(6, 2, seed=0))
        plan = compile_network(net)
        assert isinstance(plan.kernels[1], ActivationKernel)
        x = np.random.default_rng(2).standard_normal((4, 2, 3))
        np.testing.assert_allclose(plan(x), _forward_autograd(net, x), atol=1e-5)

    def test_dropout_compiles_away(self):
        net = Sequential(Dense(5, 5, seed=0), Dropout(0.5), Dense(5, 2, seed=1))
        plan = compile_network(net)
        assert len(plan) == 2

    def test_conv_pool_flatten_matches_autograd(self):
        net = Sequential(
            Conv2d(1, 4, kernel_size=3, stride=1, seed=0),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Dense(4 * 3 * 9, 3, seed=1),
        )
        plan = compile_network(net)
        x = np.random.default_rng(3).standard_normal((2, 1, 8, 20))
        np.testing.assert_allclose(plan(x), _forward_autograd(net, x), atol=1e-5)

    def test_padded_conv_matches_autograd(self):
        net = Sequential(Conv2d(2, 3, kernel_size=3, stride=2, padding=1, seed=4))
        plan = compile_network(net)
        x = np.random.default_rng(4).standard_normal((3, 2, 9, 11))
        np.testing.assert_allclose(plan(x), _forward_autograd(net, x), atol=1e-5)

    def test_layernorm_matches_autograd(self):
        net = Sequential(LayerNorm(12))
        plan = compile_network(net)
        x = np.random.default_rng(5).standard_normal((4, 7, 12))
        np.testing.assert_allclose(plan(x), _forward_autograd(net, x), atol=1e-5)


class TestRecurrentAndAttention:
    @pytest.mark.parametrize("num_layers", [1, 2])
    def test_lstm_kernel_matches_autograd(self, num_layers):
        lstm = LSTM(input_size=6, hidden_size=13, num_layers=num_layers, seed=0)
        plan = compile_network(lstm)
        assert isinstance(plan.kernels[0], LSTMKernel)
        x = np.random.default_rng(6).standard_normal((4, 9, 6))
        np.testing.assert_allclose(plan(x), _forward_autograd(lstm, x), atol=1e-5)

    def test_lstm_buffers_reused_across_calls_and_batches(self):
        lstm = LSTM(input_size=3, hidden_size=5, seed=1)
        plan = compile_network(lstm)
        kernel = plan.kernels[0]
        rng = np.random.default_rng(7)
        first = plan(rng.standard_normal((2, 4, 3)))
        assert len(kernel._buffers) == 1
        plan(rng.standard_normal((6, 4, 3)))
        assert len(kernel._buffers) == 2
        # Same-batch calls reuse the same scratch buffers and must not
        # corrupt previously returned outputs.
        again = plan(rng.standard_normal((2, 4, 3)))
        assert len(kernel._buffers) == 2
        assert not np.shares_memory(first, again)

    def test_encoder_block_matches_autograd(self):
        layer = TransformerEncoderLayer(
            d_model=16, n_heads=4, dim_feedforward=24, dropout=0.3, seed=2
        )
        plan = compile_network(layer)
        x = np.random.default_rng(8).standard_normal((3, 6, 16))
        np.testing.assert_allclose(plan(x), _forward_autograd(layer, x), atol=1e-5)


class TestPlanMechanics:
    def test_unsupported_module_raises(self):
        class Exotic(Module):
            def forward(self, x):
                return x

        with pytest.raises(PlanCompilationError):
            compile_network(Sequential(Exotic()))

    def test_plan_casts_input_to_serving_dtype(self):
        net = Sequential(Dense(4, 2, seed=0))
        plan = compile_network(net)
        out = plan(np.random.default_rng(9).standard_normal((2, 4)))
        assert out.dtype == np.float32

    def test_float64_plan_supported(self):
        net = Sequential(Dense(4, 2, seed=0))
        plan = compile_network(net, dtype=np.float64)
        out = plan(np.random.default_rng(10).standard_normal((2, 4)))
        assert out.dtype == np.float64

    def test_softmax_kernel_rows_sum_to_one_in_float64(self):
        plan = InferencePlan([SoftmaxKernel()])
        logits = np.random.default_rng(11).standard_normal((5, 3)).astype(np.float32)
        out = plan(logits)
        assert out.dtype == np.float64
        np.testing.assert_allclose(out.sum(axis=1), np.ones(5), atol=1e-12)

    def test_nbytes_counts_weight_storage(self):
        net = Sequential(Dense(4, 2, bias=False, seed=0))
        plan = compile_network(net)
        assert plan.nbytes == 4 * 2 * 4  # float32

    def test_describe_lists_kernels(self):
        net = Sequential(Dense(4, 2, seed=0), ReLU())
        plan = compile_network(net)
        assert plan.describe() == ["dense[4x2]+relu"]


# ---------------------------------------------------------------------- #
# Shape specialisation: pre-bound arenas
# ---------------------------------------------------------------------- #
def _alloc_profile(call, warm=3):
    """(net_bytes, peak_bytes) of one steady-state ``call`` under tracemalloc."""
    import gc
    import tracemalloc

    for _ in range(warm):
        call()
    gc.collect()
    tracemalloc.start()
    try:
        call()
        call()
        tracemalloc.reset_peak()
        before = tracemalloc.get_traced_memory()[0]
        call()
        current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return current - before, peak - before


def _small_lstm_net():
    return Sequential(LSTM(input_size=6, hidden_size=24, num_layers=2, seed=3))


def _small_cnn_net():
    return Sequential(
        Conv2d(1, 4, kernel_size=3, padding=1, seed=0),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Dense(4 * 4 * 5, 8, seed=1, activation="relu"),
        LayerNorm(8),
        Dense(8, 3, seed=3),
    )


def _small_encoder_net():
    return Sequential(
        TransformerEncoderLayer(
            d_model=16, n_heads=4, dim_feedforward=24, dropout=0.1, seed=2
        ),
        Dense(16, 3, seed=4),
    )


class TestShapeSpecialization:
    @pytest.mark.parametrize("batch", [1, 7, 64])
    @pytest.mark.parametrize(
        "net_fn,shape",
        [
            (_small_lstm_net, (9, 6)),
            (_small_cnn_net, (1, 8, 10)),
            (_small_encoder_net, (6, 16)),
        ],
        ids=["lstm", "cnn", "encoder"],
    )
    def test_specialized_is_bit_for_bit_generic(self, net_fn, shape, batch):
        plan = compile_network(net_fn())
        plan.append(SoftmaxKernel())
        x = np.random.default_rng(batch).standard_normal((batch,) + shape)
        generic = plan(x).copy()
        assert plan.specialize(batch)
        first = plan(x)  # binds the arena
        steady = plan(x)  # pure arena replay
        assert np.array_equal(generic, first)
        assert np.array_equal(generic, steady)
        assert plan.specialized_calls == 2
        assert plan.generic_calls == 1

    def test_steady_state_flush_allocates_no_arrays(self):
        """The zero-allocation claim, asserted.

        A specialised plan call must not allocate any data arrays: its
        tracemalloc peak stays within numpy's constant-size internal
        iteration buffers (independent of model and batch geometry), while
        the generic path's peak scales with the intermediates it allocates.
        The bound covers every kernel family at once.
        """
        bound = 128 * 1024
        for net_fn, shape in [
            (_small_lstm_net, (9, 6)),
            (_small_cnn_net, (1, 8, 10)),
            (_small_encoder_net, (6, 16)),
        ]:
            plan = compile_network(net_fn())
            plan.append(SoftmaxKernel())
            x = np.random.default_rng(0).standard_normal((32,) + shape).astype(
                np.float32
            )
            plan.specialize(32)
            net_bytes, peak = _alloc_profile(lambda: plan(x))
            assert peak < bound, f"specialised peak {peak}B blows {bound}B"
            assert net_bytes < 4096, f"specialised call retains {net_bytes}B"

    def test_generic_path_allocates_beyond_the_specialized_bound(self):
        """Contrast for the assertion above: generic allocations scale."""
        plan = compile_network(_small_lstm_net())
        plan.append(SoftmaxKernel())
        x = np.random.default_rng(1).standard_normal((32, 9, 6)).astype(np.float32)
        _, generic_peak = _alloc_profile(lambda: plan(x))
        assert generic_peak > 128 * 1024

    def test_mismatched_batch_falls_back_to_generic(self):
        plan = compile_network(_small_lstm_net())
        plan.specialize(4)
        x4 = np.random.default_rng(2).standard_normal((4, 9, 6))
        x5 = np.random.default_rng(3).standard_normal((5, 9, 6))
        plan(x4)
        before = plan.generic_calls
        plan(x5)
        assert plan.generic_calls == before + 1
        assert plan.specialized_calls == 1

    def test_despecialize_releases_arenas(self):
        plan = compile_network(_small_lstm_net())
        x = np.random.default_rng(4).standard_normal((3, 9, 6))
        plan.specialize(3)
        plan(x)
        assert plan.specialization_stats()["arenas"] == 1
        plan.despecialize(3)
        assert plan.specialization_stats()["arenas"] == 0
        plan(x)  # generic again
        assert plan.generic_calls == 1

    def test_auto_specialization_binds_after_streak_and_evicts_lru(self):
        plan = compile_network(_small_lstm_net())
        plan.enable_auto_specialization(streak=2, max_arenas=2)
        rng = np.random.default_rng(5)
        x2 = rng.standard_normal((2, 9, 6))
        x3 = rng.standard_normal((3, 9, 6))
        x4 = rng.standard_normal((4, 9, 6))
        plan(x2)  # streak 1: generic
        assert plan.specialization_stats()["arenas"] == 0
        plan(x2)  # streak 2: binds and serves from the arena
        assert plan.specialization_stats()["arenas"] == 1
        assert plan.specialized_calls == 1
        # A fleet resize re-specialises; the LRU cap bounds held scratch.
        for x in (x3, x3, x4, x4):
            plan(x)
        stats = plan.specialization_stats()
        assert stats["arenas"] == 2  # batch-2 arena evicted
        assert plan((np.asarray(x2))) is not None
        assert plan.specialization_stats()["arenas"] == 2

    def test_custom_kernel_refuses_specialization_but_keeps_serving(self):
        from repro.nn.inference import Kernel

        class Doubler(Kernel):
            def __call__(self, x):
                return x * 2.0

        plan = InferencePlan([Doubler()])
        assert plan.specialize(2)  # optimistic until the first bind attempt
        x = np.random.default_rng(6).standard_normal((2, 4)).astype(np.float32)
        out = plan(x)
        np.testing.assert_array_equal(out, x * 2.0)
        assert plan.generic_calls == 1
        assert not plan.can_specialize
        assert not plan.specialize(3)

    def test_specialized_output_buffer_is_reused_across_calls(self):
        """The documented ownership contract: rows are valid until the next
        call, so retaining callers must copy (MicroBatcher.finalize does)."""
        plan = compile_network(Sequential(Dense(4, 3, seed=0)))
        plan.append(SoftmaxKernel())
        plan.specialize(2)
        rng = np.random.default_rng(7)
        a = rng.standard_normal((2, 4)).astype(np.float32)
        b = rng.standard_normal((2, 4)).astype(np.float32)
        plan(a)
        out_a = plan(a)
        expected_b = plan(b).copy()
        assert np.array_equal(out_a, expected_b)  # same buffer, overwritten

    def test_append_invalidates_existing_arenas(self):
        plan = compile_network(Sequential(Dense(4, 3, seed=0)))
        plan.specialize(2)
        x = np.random.default_rng(8).standard_normal((2, 4)).astype(np.float32)
        plan(x)
        assert plan.specialization_stats()["arenas"] == 1
        plan.append(SoftmaxKernel())
        assert plan.specialization_stats()["arenas"] == 0
        out = plan(x)  # rebinds through the full kernel list
        np.testing.assert_allclose(out.sum(axis=1), np.ones(2), atol=1e-12)

    def test_conv_pad_buffer_is_reused_across_calls(self):
        conv = Conv2d(1, 2, kernel_size=3, padding=2, seed=0)
        plan = compile_network(Sequential(conv))
        kernel = plan.kernels[0]
        x = np.random.default_rng(9).standard_normal((2, 1, 6, 7)).astype(np.float32)
        first = plan(x).copy()
        assert len(kernel._pad_buffers) == 1
        buf = next(iter(kernel._pad_buffers.values()))
        plan(x)
        assert next(iter(kernel._pad_buffers.values())) is buf
        np.testing.assert_array_equal(plan(x), first)

    def test_conv_pad_buffer_cache_is_lru_capped(self):
        from repro.nn.inference import Conv2dKernel

        conv = Conv2d(1, 2, kernel_size=3, padding=1, seed=0)
        plan = compile_network(Sequential(conv))
        kernel = plan.kernels[0]
        rng = np.random.default_rng(10)
        for batch in range(1, Conv2dKernel.MAX_PAD_BUFFERS + 4):
            plan(rng.standard_normal((batch, 1, 6, 7)).astype(np.float32))
        assert len(kernel._pad_buffers) == Conv2dKernel.MAX_PAD_BUFFERS


class TestBlockSparseSpecialization:
    """The zero-allocation arena contract extends to block-sparse plans.

    The fused-gate slab kernels add their own scratch (gathered input
    panels, the micro-GEMM product buffer); a specialised block plan must
    pre-bind ALL of it, so a steady-state flush stays within numpy's
    constant-size iteration buffers exactly like the dense plans gated in
    :class:`TestShapeSpecialization`.
    """

    @staticmethod
    def _block_plan():
        from repro.compression.pruning import apply_block_magnitude_pruning
        from repro.nn.inference import SparsityConfig
        from repro.nn.sparse import BlockSparseWeight

        net = Sequential(
            LSTM(input_size=32, hidden_size=64, seed=7),
            Dense(64, 8, seed=8),
        )
        apply_block_magnitude_pruning(net, 0.9)
        plan = compile_network(
            net, sparsity=SparsityConfig(mode="always", min_size=0)
        )
        plan.append(SoftmaxKernel())
        w_ih, w_hh, _ = plan.kernels[0].layers[0]
        assert isinstance(w_hh, BlockSparseWeight) and w_hh.groups == 4
        assert isinstance(w_ih, BlockSparseWeight) and w_ih.groups == 4
        return plan

    def test_steady_state_block_flush_allocates_no_arrays(self):
        plan = self._block_plan()
        x = np.random.default_rng(11).standard_normal((32, 9, 32)).astype(
            np.float32
        )
        assert plan.specialize(32)
        bound = 128 * 1024
        net_bytes, peak = _alloc_profile(lambda: plan(x))
        assert peak < bound, f"specialised block peak {peak}B blows {bound}B"
        assert net_bytes < 4096, f"specialised block call retains {net_bytes}B"

    @pytest.mark.parametrize("batch", [1, 7, 64])
    def test_specialized_block_plan_is_bit_for_bit_generic(self, batch):
        plan = self._block_plan()
        x = np.random.default_rng(12 + batch).standard_normal((batch, 9, 32))
        generic = plan(x).copy()
        assert plan.specialize(batch)
        plan(x)  # binds the arena
        assert np.array_equal(generic, plan(x))
