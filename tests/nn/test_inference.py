"""Tests for the compiled inference engine (repro.nn.inference)."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor, no_grad
from repro.nn.inference import (
    ActivationKernel,
    DenseKernel,
    InferencePlan,
    LSTMKernel,
    PlanCompilationError,
    SoftmaxKernel,
    compile_network,
)
from repro.nn.layers import Conv2d, Dense, Dropout, Flatten, LayerNorm, MaxPool2d, ReLU
from repro.nn.lstm import LSTM
from repro.nn.module import Module, Sequential
from repro.nn.attention import TransformerEncoderLayer


def _forward_autograd(module, x):
    module.eval()
    with no_grad():
        return module(Tensor(x)).data


class TestCompileSequential:
    def test_dense_stack_matches_autograd(self):
        net = Sequential(
            Dense(10, 16, seed=0, activation="relu"),
            Dense(16, 8, seed=1, activation="tanh"),
            Dense(8, 3, seed=2),
        )
        plan = compile_network(net)
        x = np.random.default_rng(0).standard_normal((5, 10))
        np.testing.assert_allclose(plan(x), _forward_autograd(net, x), atol=1e-5)

    def test_standalone_activation_fused_into_dense(self):
        net = Sequential(Dense(6, 4, seed=0), ReLU(), Dense(4, 2, seed=1))
        plan = compile_network(net)
        # ReLU folded into the first dense kernel: 2 kernels, not 3.
        assert len(plan) == 2
        assert isinstance(plan.kernels[0], DenseKernel)
        assert plan.kernels[0].activation == "relu"
        x = np.random.default_rng(1).standard_normal((3, 6))
        np.testing.assert_allclose(plan(x), _forward_autograd(net, x), atol=1e-5)

    def test_unfusable_activation_stays_standalone(self):
        net = Sequential(Flatten(), ReLU(), Dense(6, 2, seed=0))
        plan = compile_network(net)
        assert isinstance(plan.kernels[1], ActivationKernel)
        x = np.random.default_rng(2).standard_normal((4, 2, 3))
        np.testing.assert_allclose(plan(x), _forward_autograd(net, x), atol=1e-5)

    def test_dropout_compiles_away(self):
        net = Sequential(Dense(5, 5, seed=0), Dropout(0.5), Dense(5, 2, seed=1))
        plan = compile_network(net)
        assert len(plan) == 2

    def test_conv_pool_flatten_matches_autograd(self):
        net = Sequential(
            Conv2d(1, 4, kernel_size=3, stride=1, seed=0),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Dense(4 * 3 * 9, 3, seed=1),
        )
        plan = compile_network(net)
        x = np.random.default_rng(3).standard_normal((2, 1, 8, 20))
        np.testing.assert_allclose(plan(x), _forward_autograd(net, x), atol=1e-5)

    def test_padded_conv_matches_autograd(self):
        net = Sequential(Conv2d(2, 3, kernel_size=3, stride=2, padding=1, seed=4))
        plan = compile_network(net)
        x = np.random.default_rng(4).standard_normal((3, 2, 9, 11))
        np.testing.assert_allclose(plan(x), _forward_autograd(net, x), atol=1e-5)

    def test_layernorm_matches_autograd(self):
        net = Sequential(LayerNorm(12))
        plan = compile_network(net)
        x = np.random.default_rng(5).standard_normal((4, 7, 12))
        np.testing.assert_allclose(plan(x), _forward_autograd(net, x), atol=1e-5)


class TestRecurrentAndAttention:
    @pytest.mark.parametrize("num_layers", [1, 2])
    def test_lstm_kernel_matches_autograd(self, num_layers):
        lstm = LSTM(input_size=6, hidden_size=13, num_layers=num_layers, seed=0)
        plan = compile_network(lstm)
        assert isinstance(plan.kernels[0], LSTMKernel)
        x = np.random.default_rng(6).standard_normal((4, 9, 6))
        np.testing.assert_allclose(plan(x), _forward_autograd(lstm, x), atol=1e-5)

    def test_lstm_buffers_reused_across_calls_and_batches(self):
        lstm = LSTM(input_size=3, hidden_size=5, seed=1)
        plan = compile_network(lstm)
        kernel = plan.kernels[0]
        rng = np.random.default_rng(7)
        first = plan(rng.standard_normal((2, 4, 3)))
        assert len(kernel._buffers) == 1
        plan(rng.standard_normal((6, 4, 3)))
        assert len(kernel._buffers) == 2
        # Same-batch calls reuse the same scratch buffers and must not
        # corrupt previously returned outputs.
        again = plan(rng.standard_normal((2, 4, 3)))
        assert len(kernel._buffers) == 2
        assert not np.shares_memory(first, again)

    def test_encoder_block_matches_autograd(self):
        layer = TransformerEncoderLayer(
            d_model=16, n_heads=4, dim_feedforward=24, dropout=0.3, seed=2
        )
        plan = compile_network(layer)
        x = np.random.default_rng(8).standard_normal((3, 6, 16))
        np.testing.assert_allclose(plan(x), _forward_autograd(layer, x), atol=1e-5)


class TestPlanMechanics:
    def test_unsupported_module_raises(self):
        class Exotic(Module):
            def forward(self, x):
                return x

        with pytest.raises(PlanCompilationError):
            compile_network(Sequential(Exotic()))

    def test_plan_casts_input_to_serving_dtype(self):
        net = Sequential(Dense(4, 2, seed=0))
        plan = compile_network(net)
        out = plan(np.random.default_rng(9).standard_normal((2, 4)))
        assert out.dtype == np.float32

    def test_float64_plan_supported(self):
        net = Sequential(Dense(4, 2, seed=0))
        plan = compile_network(net, dtype=np.float64)
        out = plan(np.random.default_rng(10).standard_normal((2, 4)))
        assert out.dtype == np.float64

    def test_softmax_kernel_rows_sum_to_one_in_float64(self):
        plan = InferencePlan([SoftmaxKernel()])
        logits = np.random.default_rng(11).standard_normal((5, 3)).astype(np.float32)
        out = plan(logits)
        assert out.dtype == np.float64
        np.testing.assert_allclose(out.sum(axis=1), np.ones(5), atol=1e-12)

    def test_nbytes_counts_weight_storage(self):
        net = Sequential(Dense(4, 2, bias=False, seed=0))
        plan = compile_network(net)
        assert plan.nbytes == 4 * 2 * 4  # float32

    def test_describe_lists_kernels(self):
        net = Sequential(Dense(4, 2, seed=0), ReLU())
        plan = compile_network(net)
        assert plan.describe() == ["dense[4x2]+relu"]
