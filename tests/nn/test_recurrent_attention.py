"""Tests for LSTM and Transformer building blocks."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadAttention, TransformerEncoderLayer, positional_encoding
from repro.nn.autograd import Tensor
from repro.nn.lstm import LSTM, LSTMCell
from tests.nn.gradcheck import numeric_gradient

RNG = np.random.default_rng(2)


class TestLSTMCell:
    def test_state_shapes(self):
        cell = LSTMCell(input_size=6, hidden_size=8)
        h, c = cell.initial_state(4)
        assert h.shape == (4, 8)
        h2, c2 = cell(Tensor(RNG.standard_normal((4, 6))), (h, c))
        assert h2.shape == (4, 8)
        assert c2.shape == (4, 8)

    def test_forget_bias_initialised_to_one(self):
        cell = LSTMCell(3, 5)
        np.testing.assert_allclose(cell.bias.data[5:10], np.ones(5))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            LSTMCell(0, 4)

    def test_gradients_flow_to_all_parameters(self):
        cell = LSTMCell(3, 4, seed=1)
        state = cell.initial_state(2)
        # Two steps so the recurrent weights see a non-zero hidden state.
        h, c = cell(Tensor(RNG.standard_normal((2, 3))), state)
        h, _ = cell(Tensor(RNG.standard_normal((2, 3))), (h, c))
        (h * h).sum().backward()
        for param in cell.parameters():
            assert param.grad is not None
            assert np.abs(param.grad).sum() > 0

    def test_cell_weight_gradient_finite_difference(self):
        cell = LSTMCell(2, 3, seed=2)
        x = RNG.standard_normal((2, 2))

        def loss_value(values):
            cell.weight_ih.data = values.reshape(cell.weight_ih.data.shape).copy()
            h, c = cell.initial_state(2)
            out, _ = cell(Tensor(x), (h, c))
            return float((out.data**2).sum())

        original = cell.weight_ih.data.copy()
        h, c = cell.initial_state(2)
        out, _ = cell(Tensor(x), (h, c))
        cell.zero_grad()
        (out * out).sum().backward()
        analytic = cell.weight_ih.grad.copy()
        numeric = numeric_gradient(loss_value, original.copy().reshape(-1)).reshape(
            original.shape
        )
        cell.weight_ih.data = original
        np.testing.assert_allclose(analytic, numeric, rtol=1e-3, atol=1e-6)


class TestLSTM:
    def test_final_hidden_shape(self):
        lstm = LSTM(input_size=16, hidden_size=32, num_layers=2)
        out = lstm(Tensor(RNG.standard_normal((4, 10, 16))))
        assert out.shape == (4, 32)

    def test_return_sequence_shape(self):
        lstm = LSTM(input_size=8, hidden_size=16)
        out = lstm(Tensor(RNG.standard_normal((2, 7, 8))), return_sequence=True)
        assert out.shape == (2, 7, 16)

    def test_rejects_non_3d_input(self):
        lstm = LSTM(4, 4)
        with pytest.raises(ValueError):
            lstm(Tensor(RNG.standard_normal((4, 4))))

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            LSTM(4, 4, num_layers=0)

    def test_parameter_count_scales_with_layers(self):
        one = LSTM(8, 16, num_layers=1).parameter_count()
        two = LSTM(8, 16, num_layers=2).parameter_count()
        assert two > one

    def test_gradients_reach_first_layer(self):
        lstm = LSTM(4, 6, num_layers=2, seed=3)
        x = Tensor(RNG.standard_normal((2, 5, 4)), requires_grad=True)
        out = lstm(x)
        (out * out).sum().backward()
        assert x.grad is not None
        assert np.abs(lstm.cells[0].weight_ih.grad).sum() > 0


class TestPositionalEncoding:
    def test_shape(self):
        enc = positional_encoding(50, 32)
        assert enc.shape == (50, 32)

    def test_values_bounded(self):
        enc = positional_encoding(100, 16)
        assert np.abs(enc).max() <= 1.0

    def test_rows_are_distinct(self):
        enc = positional_encoding(20, 8)
        assert not np.allclose(enc[0], enc[1])

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            positional_encoding(0, 8)


class TestAttention:
    def test_output_shape_preserved(self):
        attn = MultiHeadAttention(d_model=16, n_heads=4)
        x = Tensor(RNG.standard_normal((2, 9, 16)))
        assert attn(x).shape == (2, 9, 16)

    def test_d_model_must_divide_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(d_model=10, n_heads=3)

    def test_rejects_2d_input(self):
        attn = MultiHeadAttention(8, 2)
        with pytest.raises(ValueError):
            attn(Tensor(RNG.standard_normal((3, 8))))

    def test_gradients_flow_to_projections(self):
        attn = MultiHeadAttention(8, 2, seed=1)
        x = Tensor(RNG.standard_normal((2, 4, 8)), requires_grad=True)
        out = attn(x)
        (out * out).sum().backward()
        assert np.abs(attn.query.weight.grad).sum() > 0
        assert np.abs(x.grad).sum() > 0


class TestTransformerEncoderLayer:
    def test_output_shape(self):
        layer = TransformerEncoderLayer(d_model=16, n_heads=2, dim_feedforward=32)
        x = Tensor(RNG.standard_normal((3, 6, 16)))
        assert layer(x).shape == (3, 6, 16)

    def test_dropout_disabled_in_eval_gives_deterministic_output(self):
        layer = TransformerEncoderLayer(d_model=8, n_heads=2, dropout=0.5)
        layer.eval()
        x = Tensor(RNG.standard_normal((1, 5, 8)))
        np.testing.assert_allclose(layer(x).data, layer(x).data)

    def test_residual_path_keeps_information(self):
        layer = TransformerEncoderLayer(d_model=8, n_heads=2, dropout=0.0)
        layer.eval()
        x = Tensor(RNG.standard_normal((1, 5, 8)))
        out = layer(x)
        # Residual connections mean the output correlates with the input.
        corr = np.corrcoef(out.data.reshape(-1), x.data.reshape(-1))[0, 1]
        assert corr > 0.3

    def test_all_parameters_receive_gradients(self):
        layer = TransformerEncoderLayer(d_model=8, n_heads=2, dim_feedforward=16, dropout=0.0)
        x = Tensor(RNG.standard_normal((2, 4, 8)))
        out = layer(x)
        (out * out).sum().backward()
        for name, param in layer.named_parameters():
            assert param.grad is not None, f"{name} missing gradient"
