"""Tests for the persistent per-host autotune cache (repro.nn.autotune)."""

import json
import os
import threading

import numpy as np
import pytest

from repro.nn import autotune
from repro.nn.autotune import (
    CACHE_ENV_VAR,
    CACHE_VERSION,
    AutotuneCache,
    choose_matmul_variant,
    host_fingerprint,
    matmul_cache_key,
    resolve_cache_path,
    set_default_cache,
    sparsity_bucket,
    variant_name,
)
from repro.nn.inference import SparsityConfig, compile_network
from repro.nn.layers import Dense
from repro.nn.module import Sequential
from repro.nn.sparse import BlockSparseWeight, ColumnSparseWeight


@pytest.fixture
def isolated_default_cache(tmp_path):
    """Swap the process-wide cache for a throwaway one for the test's duration."""
    cache = AutotuneCache(path=str(tmp_path / "autotune.json"))
    previous = set_default_cache(cache)
    try:
        yield cache
    finally:
        set_default_cache(previous)


def _pruned_matrix(shape=(64, 32), sparsity=0.9, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal(shape).astype(np.float32)
    dense[rng.random(shape) < sparsity] = 0.0
    return dense


def _candidates(dense):
    return {"ell": ColumnSparseWeight.from_dense(dense)}


def _count_timings(monkeypatch, value=1e-4):
    """Replace the timing primitive with a deterministic call counter."""
    calls = {"n": 0}

    def fake(call, repeats=5):
        calls["n"] += 1
        call()
        return value

    monkeypatch.setattr(autotune, "median_call_time_s", fake)
    return calls


class TestKeying:
    def test_sparsity_bucket_rounds_to_width(self):
        assert sparsity_bucket(0.9) == "0.90"
        assert sparsity_bucket(0.91) == "0.90"
        assert sparsity_bucket(0.93) == "0.95"
        assert sparsity_bucket(1.7) == "1.00"  # clamped
        assert sparsity_bucket(-0.2) == "0.00"

    def test_key_includes_every_dimension(self):
        key = matmul_cache_key(
            "dense", (64, 32), np.float32, 0.9, tile=(8, 8), fingerprint="abc"
        )
        assert key == "dense|64x32|float32|s0.90|t8x8|abc"
        # No tile → placeholder, not absence (keys stay fixed-arity).
        assert "|t-|" in matmul_cache_key(
            "dense", (64, 32), np.float32, 0.9, fingerprint="abc"
        )

    def test_tile_token_encodes_groups(self):
        from repro.nn.autotune import tile_token

        assert tile_token((8, 8)) == "8x8"
        assert tile_token((16, 1), groups=4) == "16x1g4"
        assert tile_token((32, 1), groups=1) == "32x1"

    def test_menu_keys_are_order_insensitive_and_distinct(self):
        menu = matmul_cache_key(
            "lstm-hh",
            (64, 256),
            np.float32,
            0.9,
            tile=["16x1g4", "8x8g4", "32x1g4"],
            fingerprint="abc",
        )
        reordered = matmul_cache_key(
            "lstm-hh",
            (64, 256),
            np.float32,
            0.9,
            tile=["8x8g4", "32x1g4", "16x1g4"],
            fingerprint="abc",
        )
        assert menu == reordered  # tokens are sorted before joining
        assert "|t16x1g4+32x1g4+8x8g4|" in menu
        single = matmul_cache_key(
            "lstm-hh", (64, 256), np.float32, 0.9, tile="8x8g4", fingerprint="abc"
        )
        assert single != menu  # a one-tile decision never answers a menu query

    def test_key_defaults_to_this_hosts_fingerprint(self):
        key = matmul_cache_key("dense", (8, 8), np.float64, 0.5)
        assert key.endswith(host_fingerprint())

    def test_fingerprint_is_stable_and_short(self):
        assert host_fingerprint() == host_fingerprint()
        assert len(host_fingerprint()) == 12


class TestCachePathResolution:
    def test_default_is_under_home_cache(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        path = resolve_cache_path()
        assert path is not None and path.endswith(os.path.join("repro", "autotune.json"))

    def test_env_var_relocates_the_file(self, monkeypatch, tmp_path):
        target = str(tmp_path / "tuned.json")
        monkeypatch.setenv(CACHE_ENV_VAR, target)
        assert resolve_cache_path() == target

    @pytest.mark.parametrize("raw", ["", "off", "OFF", "0", "none"])
    def test_env_var_disables_persistence(self, monkeypatch, raw):
        monkeypatch.setenv(CACHE_ENV_VAR, raw)
        assert resolve_cache_path() is None


class TestAutotuneCachePersistence:
    def test_put_creates_a_versioned_json_file(self, tmp_path):
        path = tmp_path / "cache" / "autotune.json"
        cache = AutotuneCache(path=str(path))
        cache.put("k1", {"variant": "ell"})
        payload = json.loads(path.read_text())
        assert payload["version"] == CACHE_VERSION
        assert payload["entries"]["k1"]["variant"] == "ell"

    def test_second_cache_instance_reads_the_file(self, tmp_path):
        path = str(tmp_path / "autotune.json")
        AutotuneCache(path=path).put("k1", {"variant": "dense"})
        fresh = AutotuneCache(path=path)
        assert fresh.get("k1") == {"variant": "dense"}

    def test_corrupt_file_degrades_to_empty_and_is_rewritten(self, tmp_path):
        path = tmp_path / "autotune.json"
        path.write_text("{ not json !!")
        cache = AutotuneCache(path=str(path))
        assert cache.get("anything") is None
        assert cache.persist_errors == 0
        cache.put("k1", {"variant": "ell"})
        assert json.loads(path.read_text())["entries"]["k1"]["variant"] == "ell"

    def test_wrong_version_file_is_ignored(self, tmp_path):
        path = tmp_path / "autotune.json"
        path.write_text(
            json.dumps({"version": CACHE_VERSION + 1, "entries": {"k1": {"variant": "ell"}}})
        )
        assert AutotuneCache(path=str(path)).get("k1") is None

    def test_newer_version_file_is_never_clobbered(self, tmp_path):
        """Forward compatibility: a foreign-version file degrades this
        process to memory-only operation instead of being rewritten.

        A wrong-version file was plausibly written by a NEWER release sharing
        the same home directory; destroying its measurements to store ours
        would make the two releases fight over the file on every compile.
        """
        path = tmp_path / "autotune.json"
        foreign = json.dumps(
            {"version": CACHE_VERSION + 1, "entries": {"k1": {"variant": "ell"}}}
        )
        path.write_text(foreign)
        cache = AutotuneCache(path=str(path))
        cache.put("mine", {"variant": "dense"})  # must not raise, must not write
        assert path.read_text() == foreign  # file byte-identical
        assert cache.get("mine") == {"variant": "dense"}  # memory still serves
        assert cache.persist_errors == 0  # degraded, not broken
        assert cache.stats()["writable"] is False

    def test_file_turning_foreign_between_load_and_save_is_preserved(self, tmp_path):
        """The merge-on-write re-read must honour a version flip under us."""
        path = tmp_path / "autotune.json"
        cache = AutotuneCache(path=str(path))
        cache.put("k1", {"variant": "ell"})  # loads + writes a v-current file
        foreign = json.dumps({"version": CACHE_VERSION + 1, "entries": {}})
        path.write_text(foreign)  # a newer release replaces the file mid-run
        cache.put("k2", {"variant": "dense"})
        assert path.read_text() == foreign
        assert cache.stats()["writable"] is False
        assert cache.get("k2") == {"variant": "dense"}

    def test_unknown_entry_keys_are_ignored_not_fatal(self, tmp_path, monkeypatch):
        """Entries may grow fields we do not know; a hit must still replay."""
        calls = _count_timings(monkeypatch)
        path = tmp_path / "autotune.json"
        dense = _pruned_matrix()
        cache = AutotuneCache(path=str(path))
        cold = choose_matmul_variant(
            "dense", dense, _candidates(dense), rows=8, cache=cache
        )
        entry = json.loads(path.read_text())["entries"][cold.key]
        entry["a_future_field"] = {"nested": [1, 2, 3]}
        path.write_text(
            json.dumps({"version": CACHE_VERSION, "entries": {cold.key: entry}})
        )
        before = calls["n"]
        fresh = AutotuneCache(path=str(path))  # re-reads the annotated file
        warm = choose_matmul_variant(
            "dense", dense, _candidates(dense), rows=8, cache=fresh
        )
        assert warm.cached is True and warm.variant == cold.variant
        assert calls["n"] == before  # the unknown field cost no re-measure

    def test_non_dict_entries_are_dropped_on_load(self, tmp_path):
        path = tmp_path / "autotune.json"
        path.write_text(
            json.dumps(
                {"version": CACHE_VERSION, "entries": {"ok": {"variant": "ell"}, "bad": 7}}
            )
        )
        cache = AutotuneCache(path=str(path))
        assert cache.get("ok") == {"variant": "ell"}
        assert cache.get("bad") is None

    def test_unwritable_location_counts_instead_of_raising(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        cache = AutotuneCache(path=str(blocker / "nested" / "autotune.json"))
        cache.put("k1", {"variant": "ell"})  # must not raise
        assert cache.persist_errors == 1
        assert cache.get("k1") == {"variant": "ell"}  # memory still works

    def test_memory_only_mode_never_touches_disk(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        cache = AutotuneCache(path=None)
        cache.put("k1", {"variant": "dense"})
        assert cache.get("k1") == {"variant": "dense"}
        assert list(tmp_path.iterdir()) == []

    def test_merge_on_write_unions_concurrent_compiles(self, tmp_path):
        path = str(tmp_path / "autotune.json")
        a = AutotuneCache(path=path)
        b = AutotuneCache(path=path)
        a.put("ka", {"variant": "ell"})
        b.put("kb", {"variant": "dense"})  # b loaded before a's write? either way:
        entries = json.loads((tmp_path / "autotune.json").read_text())["entries"]
        assert entries["ka"]["variant"] == "ell"
        assert entries["kb"]["variant"] == "dense"

    def test_concurrent_threads_on_one_cache_lose_nothing(self, tmp_path):
        path = str(tmp_path / "autotune.json")
        cache = AutotuneCache(path=path)

        def writer(tag):
            for i in range(10):
                cache.put(f"{tag}-{i}", {"variant": "ell", "i": i})

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        payload = json.loads((tmp_path / "autotune.json").read_text())
        assert payload["version"] == CACHE_VERSION
        assert len(payload["entries"]) == 40
        # The atomic-replace discipline leaves no temp droppings behind.
        assert [p.name for p in tmp_path.iterdir()] == ["autotune.json"]

    def test_racing_cache_instances_never_tear_the_file(self, tmp_path):
        """Independent processes may lose a race, but never corrupt the file."""
        path = str(tmp_path / "autotune.json")
        caches = [AutotuneCache(path=path) for _ in range(4)]

        def writer(cache, tag):
            for i in range(10):
                cache.put(f"{tag}-{i}", {"variant": "ell", "i": i})

        threads = [
            threading.Thread(target=writer, args=(cache, t))
            for t, cache in enumerate(caches)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        payload = json.loads((tmp_path / "autotune.json").read_text())
        assert payload["version"] == CACHE_VERSION
        # Every surviving entry is intact; each writer's own view is complete.
        assert all(v["variant"] == "ell" for v in payload["entries"].values())
        for tag, cache in enumerate(caches):
            assert all(cache.get(f"{tag}-{i}") is not None for i in range(10))
        assert [p.name for p in tmp_path.iterdir()] == ["autotune.json"]


class TestSeeding:
    def test_seed_adds_only_new_entries_local_wins(self, tmp_path):
        cache = AutotuneCache(path=str(tmp_path / "autotune.json"))
        cache.put("local", {"variant": "ell"})
        added = cache.seed(
            {"local": {"variant": "dense"}, "remote": {"variant": "block8x8"}, "junk": 3}
        )
        assert added == 1
        assert cache.get("local") == {"variant": "ell"}  # local measurement wins
        assert cache.get("remote") == {"variant": "block8x8"}

    def test_seed_does_not_write_the_file(self, tmp_path):
        path = tmp_path / "autotune.json"
        cache = AutotuneCache(path=str(path))
        cache.seed({"remote": {"variant": "ell"}})
        assert not path.exists()

    def test_export_entries_selects_the_requested_keys(self, tmp_path):
        cache = AutotuneCache(path=None)
        cache.put("a", {"variant": "ell"})
        cache.put("b", {"variant": "dense"})
        assert cache.export_entries(["a", "missing"]) == {"a": {"variant": "ell"}}


class TestChooseMatmulVariant:
    def test_cold_call_measures_and_persists(self, tmp_path, monkeypatch):
        calls = _count_timings(monkeypatch)
        cache = AutotuneCache(path=str(tmp_path / "autotune.json"))
        dense = _pruned_matrix()
        decision = choose_matmul_variant(
            "dense", dense, _candidates(dense), rows=8, cache=cache
        )
        assert decision.cached is False
        # Interleaved timing: 5 rounds x (dense baseline + one candidate).
        assert calls["n"] == 10
        assert set(decision.timings) == {"dense", "ell"}
        assert decision.key is not None
        assert cache.misses == 1 and cache.hits == 0
        assert cache.get(decision.key)["variant"] == decision.variant

    def test_warm_call_performs_zero_timings(self, tmp_path, monkeypatch):
        calls = _count_timings(monkeypatch)
        cache = AutotuneCache(path=str(tmp_path / "autotune.json"))
        dense = _pruned_matrix()
        cold = choose_matmul_variant("dense", dense, _candidates(dense), rows=8, cache=cache)
        before = calls["n"]
        warm = choose_matmul_variant("dense", dense, _candidates(dense), rows=8, cache=cache)
        assert calls["n"] == before  # no new measurements
        assert warm.cached is True
        assert warm.variant == cold.variant
        assert cache.hits == 1

    def test_warm_across_processes_via_the_file(self, tmp_path, monkeypatch):
        calls = _count_timings(monkeypatch)
        path = str(tmp_path / "autotune.json")
        dense = _pruned_matrix()
        choose_matmul_variant(
            "dense", dense, _candidates(dense), rows=8, cache=AutotuneCache(path=path)
        )
        before = calls["n"]
        # A fresh cache instance = a fresh process reading the same file.
        warm = choose_matmul_variant(
            "dense", dense, _candidates(dense), rows=8, cache=AutotuneCache(path=path)
        )
        assert warm.cached is True and calls["n"] == before

    def test_margin_keeps_borderline_matrices_dense(self, tmp_path, monkeypatch):
        # Sparse exactly as fast as dense: must NOT win under margin < 1.
        _count_timings(monkeypatch, value=1e-4)
        cache = AutotuneCache(path=None)
        dense = _pruned_matrix()
        decision = choose_matmul_variant(
            "dense", dense, _candidates(dense), rows=8, margin=0.9, cache=cache
        )
        assert decision.variant == "dense"

    def test_mismatched_fingerprint_entries_are_not_hits(self, tmp_path, monkeypatch):
        calls = _count_timings(monkeypatch)
        path = str(tmp_path / "autotune.json")
        dense = _pruned_matrix()
        other_host = AutotuneCache(path=path, fingerprint="cafecafecafe")
        choose_matmul_variant("dense", dense, _candidates(dense), rows=8, cache=other_host)
        before = calls["n"]
        here = AutotuneCache(path=path)  # this host's real fingerprint
        decision = choose_matmul_variant(
            "dense", dense, _candidates(dense), rows=8, cache=here
        )
        assert decision.cached is False  # foreign timings are not trusted
        assert calls["n"] > before
        # Both hosts' entries coexist in the shared file.
        assert len(json.loads((tmp_path / "autotune.json").read_text())["entries"]) == 2

    def test_stale_entry_naming_a_gone_variant_remeasures(self, monkeypatch):
        calls = _count_timings(monkeypatch)
        cache = AutotuneCache(path=None)
        dense = _pruned_matrix()
        cold = choose_matmul_variant(
            "dense", dense, _candidates(dense), rows=8, cache=cache
        )
        cache.put(cold.key, {"variant": "block8x8"})  # not in candidates
        before = calls["n"]
        redo = choose_matmul_variant("dense", dense, _candidates(dense), rows=8, cache=cache)
        assert redo.cached is False and calls["n"] > before

    def test_no_candidates_short_circuits_to_dense(self, monkeypatch):
        calls = _count_timings(monkeypatch)
        decision = choose_matmul_variant(
            "dense", _pruned_matrix(), {}, rows=8, cache=AutotuneCache(path=None)
        )
        assert decision.variant == "dense" and calls["n"] == 0

    def test_variant_name_distinguishes_layouts(self):
        dense = _pruned_matrix(shape=(16, 16))
        assert variant_name(ColumnSparseWeight.from_dense(dense)) == "ell"
        assert variant_name(BlockSparseWeight.from_dense(dense, (8, 8))) == "block8x8"
        wide = _pruned_matrix(shape=(16, 64))
        assert (
            variant_name(BlockSparseWeight.from_dense(wide, (8, 8), groups=4))
            == "block8x8g4"
        )

    def test_tile_selection_keys_round_trip_per_menu(self, monkeypatch):
        """A decision under one tile menu never answers a different one.

        An entry recorded while racing the (8, 8) candidate must be a MISS
        for a compile racing (16, 1) on the same matrix — the menus name
        different layout spaces, and replaying across them would pin a
        variant the new menu cannot even construct.
        """
        calls = _count_timings(monkeypatch)
        cache = AutotuneCache(path=None)
        dense = _pruned_matrix(shape=(64, 32))

        def menu(*tiles):
            candidates = {"ell": ColumnSparseWeight.from_dense(dense)}
            for tile in tiles:
                weight = BlockSparseWeight.from_dense(dense, tile)
                candidates[variant_name(weight)] = weight
            return candidates

        first = choose_matmul_variant(
            "dense", dense, menu((8, 8)), rows=8, cache=cache
        )
        assert first.cached is False and "t8x8" in first.key
        other = choose_matmul_variant(
            "dense", dense, menu((16, 1)), rows=8, cache=cache
        )
        assert other.cached is False  # t16x1 query: the t8x8 entry stays silent
        assert other.key != first.key and "t16x1" in other.key
        both = choose_matmul_variant(
            "dense", dense, menu((8, 8), (16, 1)), rows=8, cache=cache
        )
        assert both.cached is False  # the two-tile menu is a third key
        assert "t16x1+8x8" in both.key
        before = calls["n"]
        replay = choose_matmul_variant(
            "dense", dense, menu((8, 8)), rows=8, cache=cache
        )
        assert replay.cached is True and replay.key == first.key
        assert calls["n"] == before


class TestCompileLevelCaching:
    """The acceptance claim: the second compile performs zero timings."""

    def _pruned_net(self):
        net = Sequential(Dense(64, 32, seed=0), Dense(32, 3, seed=1))
        rng = np.random.default_rng(2)
        for layer in net.layers:
            layer.weight.data[rng.random(layer.weight.data.shape) < 0.9] = 0.0
        return net

    def test_second_compile_is_pure_cache_hits(self, tmp_path, monkeypatch):
        calls = _count_timings(monkeypatch)
        cache = AutotuneCache(path=str(tmp_path / "autotune.json"))
        cfg = SparsityConfig(mode="auto", min_size=0)
        net = self._pruned_net()
        first = compile_network(net, sparsity=cfg, tuner=cache)
        assert calls["n"] > 0
        before = calls["n"]
        second = compile_network(net, sparsity=cfg, tuner=cache)
        assert calls["n"] == before  # zero calibration timings
        assert [r["variant"] for r in first.lowering_report()] == [
            r["variant"] for r in second.lowering_report()
        ]
        assert all(
            r["cached"] is True
            for r in second.lowering_report()
            if r["reason"] == "calibrated"
        )
        x = np.random.default_rng(3).standard_normal((5, 64))
        assert np.array_equal(first(x), second(x))

    def test_lowering_report_records_calibration_rows(self, tmp_path, monkeypatch):
        _count_timings(monkeypatch)
        cache = AutotuneCache(path=None)
        cfg = SparsityConfig(mode="auto", min_size=0, calibration_rows=8)
        plan = compile_network(self._pruned_net(), sparsity=cfg, tuner=cache)
        calibrated = [r for r in plan.lowering_report() if r["reason"] == "calibrated"]
        assert calibrated and all(r["rows"] == 8 for r in calibrated)

    def test_default_cache_is_used_when_no_tuner_given(
        self, isolated_default_cache, monkeypatch
    ):
        _count_timings(monkeypatch)
        cfg = SparsityConfig(mode="auto", min_size=0)
        compile_network(self._pruned_net(), sparsity=cfg)
        assert isolated_default_cache.misses > 0

    def _coupled_lstm_net(self, seed=12):
        from repro.compression.pruning import apply_block_magnitude_pruning
        from repro.nn.lstm import LSTM
        from repro.nn.module import Sequential as Seq

        lstm = LSTM(input_size=32, hidden_size=64, seed=seed)
        net = Seq(lstm)
        apply_block_magnitude_pruning(net, 0.9)
        return net

    def test_warm_block_lstm_compile_performs_zero_timings(
        self, tmp_path, monkeypatch
    ):
        """The acceptance claim at full menu width: a seeded cache replays
        the fused/split/ELL race for a gate-coupled LSTM without a single
        timing call, asserted through the hit/miss counters."""
        calls = _count_timings(monkeypatch)
        path = str(tmp_path / "autotune.json")
        cfg = SparsityConfig(mode="auto", min_size=0)
        net = self._coupled_lstm_net()
        cold_cache = AutotuneCache(path=path)
        first = compile_network(net, sparsity=cfg, tuner=cold_cache)
        assert calls["n"] > 0
        assert cold_cache.misses > 0 and cold_cache.hits == 0
        calibrated = [
            r for r in first.lowering_report() if r["reason"] == "calibrated"
        ]
        # The LSTM projections raced the fused-slab menu, not just ELL.
        assert any(
            any(name.endswith("g4") for name in record["timings"])
            for record in calibrated
        )
        before = calls["n"]
        # A fresh cache instance on the same file = a new process, warm disk.
        warm_cache = AutotuneCache(path=path)
        second = compile_network(net, sparsity=cfg, tuner=warm_cache)
        assert calls["n"] == before  # zero timing calls end to end
        assert warm_cache.misses == 0
        assert warm_cache.hits == len(
            [r for r in second.lowering_report() if r["reason"] == "calibrated"]
        )
        assert [r["variant"] for r in first.lowering_report()] == [
            r["variant"] for r in second.lowering_report()
        ]
