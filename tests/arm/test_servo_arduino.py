"""Tests for servo dynamics, calibration and the Arduino serial protocol."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arm.arduino import (
    ArduinoLink,
    ProtocolError,
    ServoCommand,
    decode_frame,
    encode_frame,
)
from repro.arm.servo import ServoCalibration, ServoMotor, ServoSpec


class TestServoSpec:
    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            ServoSpec("bad", min_angle_deg=90, max_angle_deg=10)
        with pytest.raises(ValueError):
            ServoSpec("bad", slew_rate_dps=0)
        with pytest.raises(ValueError):
            ServoSpec("bad", min_pulse_us=2000, max_pulse_us=1000)


class TestServoMotor:
    def test_command_clamped_to_range(self):
        servo = ServoMotor(ServoSpec("elbow"))
        assert servo.command(500.0) == 180.0
        assert servo.command(-50.0) == 0.0

    def test_slew_rate_limits_motion(self):
        servo = ServoMotor(ServoSpec("elbow", slew_rate_dps=100.0), initial_angle_deg=0.0)
        servo.command(180.0)
        servo.step(0.1)  # can move at most 10 degrees
        assert servo.angle_deg == pytest.approx(10.0)

    def test_settle_reaches_target(self):
        servo = ServoMotor(ServoSpec("elbow"), initial_angle_deg=0.0)
        servo.command(90.0)
        assert servo.settle() == pytest.approx(90.0, abs=1e-3)

    def test_pulse_width_command_maps_linearly(self):
        servo = ServoMotor(ServoSpec("elbow"))
        assert servo.command_pulse(1000.0) == pytest.approx(0.0)
        assert servo.command_pulse(1500.0) == pytest.approx(90.0)
        assert servo.command_pulse(2000.0) == pytest.approx(180.0)

    def test_invalid_step_rejected(self):
        servo = ServoMotor(ServoSpec("elbow"))
        with pytest.raises(ValueError):
            servo.step(0.0)

    def test_calibration_corrects_distortion(self):
        distortion = ServoCalibration(offset_deg=-8.0, scale=1.1)
        servo = ServoMotor(ServoSpec("elbow"), distortion=distortion)
        servo.calibrate()
        servo.command_calibrated(90.0)
        servo.settle()
        assert servo.angle_deg == pytest.approx(90.0, abs=1.0)

    def test_calibration_identity_when_no_distortion(self):
        servo = ServoMotor(ServoSpec("elbow"))
        calibration = servo.calibrate()
        assert calibration.scale == pytest.approx(1.0, abs=1e-6)
        assert calibration.offset_deg == pytest.approx(0.0, abs=1e-6)

    def test_zero_scale_calibration_invert_rejected(self):
        with pytest.raises(ValueError):
            ServoCalibration(scale=0.0).invert(90.0)


class TestSerialProtocol:
    def test_round_trip(self):
        commands = [ServoCommand(0, 45.5), ServoCommand(3, 170.25)]
        decoded = decode_frame(encode_frame(commands))
        assert len(decoded) == 2
        assert decoded[0].channel == 0
        assert decoded[0].angle_deg == pytest.approx(45.5, abs=0.01)
        assert decoded[1].angle_deg == pytest.approx(170.25, abs=0.01)

    def test_invalid_commands_rejected(self):
        with pytest.raises(ValueError):
            ServoCommand(16, 90.0)
        with pytest.raises(ValueError):
            ServoCommand(0, 200.0)

    def test_empty_frame_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame([])

    def test_corrupted_checksum_detected(self):
        frame = bytearray(encode_frame([ServoCommand(0, 90.0)]))
        frame[-1] ^= 0xFF
        with pytest.raises(ProtocolError):
            decode_frame(bytes(frame))

    def test_truncated_frame_detected(self):
        frame = encode_frame([ServoCommand(0, 90.0), ServoCommand(1, 45.0)])
        with pytest.raises(ProtocolError):
            decode_frame(frame[:-4])

    def test_bad_header_detected(self):
        frame = bytearray(encode_frame([ServoCommand(0, 90.0)]))
        frame[0] = 0x00
        with pytest.raises(ProtocolError):
            decode_frame(bytes(frame))

    @settings(max_examples=40, deadline=None)
    @given(
        channels=st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=5,
                          unique=True),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_round_trip_preserves_commands(self, channels, seed):
        rng = np.random.default_rng(seed)
        commands = [ServoCommand(c, float(rng.uniform(0, 180))) for c in channels]
        decoded = decode_frame(encode_frame(commands))
        assert [d.channel for d in decoded] == channels
        for original, restored in zip(commands, decoded):
            assert restored.angle_deg == pytest.approx(original.angle_deg, abs=0.01)


class TestArduinoLink:
    def _link(self, corruption=0.0):
        servos = {0: ServoMotor(ServoSpec("elbow")), 1: ServoMotor(ServoSpec("wrist"))}
        return ArduinoLink(servos, corruption_probability=corruption, seed=0), servos

    def test_send_applies_setpoints(self):
        link, servos = self._link()
        link.send([ServoCommand(0, 120.0)])
        assert servos[0].commanded_angle_deg == pytest.approx(120.0)

    def test_latency_scales_with_frame_size(self):
        link, _ = self._link()
        short = link.transmission_time_s(encode_frame([ServoCommand(0, 1.0)]))
        long = link.transmission_time_s(
            encode_frame([ServoCommand(c, 1.0) for c in range(5)])
        )
        assert long > short

    def test_corrupted_frames_rejected_but_counted(self):
        link, servos = self._link(corruption=1.0)
        before = servos[0].commanded_angle_deg
        for _ in range(10):
            link.send([ServoCommand(0, 175.0)])
        assert link.rejection_rate == pytest.approx(1.0)
        assert servos[0].commanded_angle_deg == before

    def test_unknown_channel_ignored(self):
        link, _ = self._link()
        link.send([ServoCommand(9, 90.0)])  # no servo attached to channel 9
        assert link.frames_rejected == 0

    def test_step_advances_all_servos(self):
        link, servos = self._link()
        link.send([ServoCommand(0, 180.0), ServoCommand(1, 0.0)])
        angles = link.step(0.05)
        assert set(angles) == {0, 1}

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ArduinoLink({})
        with pytest.raises(ValueError):
            ArduinoLink({0: ServoMotor(ServoSpec("x"))}, baud_rate=0)
        with pytest.raises(ValueError):
            ArduinoLink({0: ServoMotor(ServoSpec("x"))}, corruption_probability=1.5)
        with pytest.raises(ValueError):
            ArduinoLink({0: ServoMotor(ServoSpec("x"))}, corruption_probability=-0.1)
