"""Tests for kinematics, the pose library and the arm controller."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arm.controller import ActionMapping, ArmController, ProstheticArm
from repro.arm.kinematics import ArmGeometry, ArmKinematics, JointLimits, JointState
from repro.arm.poses import POSE_LIBRARY, TaskScript, task_library
from repro.asr.commands import MODE_ARM, MODE_ELBOW, MODE_FINGERS
from repro.signals.synthetic import ACTION_IDLE, ACTION_LEFT, ACTION_RIGHT


class TestJointLimits:
    def test_clamp_and_contains(self):
        limits = JointLimits(10.0, 160.0)
        assert limits.clamp(200.0) == 160.0
        assert limits.clamp(-5.0) == 10.0
        assert limits.contains(90.0)
        assert not limits.contains(0.0)

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            JointLimits(100.0, 50.0)

    def test_normalised_maps_to_unit_interval(self):
        limits = JointLimits(0.0, 100.0)
        assert limits.normalised(50.0) == pytest.approx(0.5)
        assert limits.normalised(150.0) == 1.0


class TestKinematics:
    @pytest.fixture()
    def kin(self):
        return ArmKinematics()

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            ArmGeometry(upper_arm_cm=-1.0)

    def test_missing_limits_rejected(self):
        with pytest.raises(ValueError):
            ArmKinematics(limits={"elbow_deg": JointLimits(0, 10)})

    def test_fully_extended_reach_is_maximal(self, kin):
        extended = JointState(elbow_deg=0.0, wrist_rotation_deg=0.0, grip_percent=0.0)
        # elbow 0 deg is outside the limits, so use the clamped version.
        clamped = kin.clamp(extended)
        reach = kin.reach_cm(clamped)
        assert reach <= kin.max_reach_cm()
        assert reach > 0.5 * kin.max_reach_cm()

    def test_elbow_flexion_raises_fingertip(self, kin):
        low = kin.fingertip_position_cm(JointState(elbow_deg=20.0))
        high = kin.fingertip_position_cm(JointState(elbow_deg=150.0))
        assert high[2] > low[2]

    def test_wrist_rotation_moves_fingertip_laterally(self, kin):
        neutral = kin.fingertip_position_cm(JointState(elbow_deg=90.0, wrist_rotation_deg=0.0))
        rotated = kin.fingertip_position_cm(JointState(elbow_deg=90.0, wrist_rotation_deg=60.0))
        assert abs(rotated[1]) > abs(neutral[1])

    def test_grip_shortens_reach(self, kin):
        open_hand = kin.reach_cm(JointState(elbow_deg=90.0, grip_percent=0.0))
        closed = kin.reach_cm(JointState(elbow_deg=90.0, grip_percent=100.0))
        assert closed < open_hand

    def test_servo_targets_within_servo_range(self, kin):
        targets = kin.servo_targets(JointState(elbow_deg=90.0, wrist_rotation_deg=45.0,
                                                grip_percent=50.0))
        assert set(targets) == {"elbow", "wrist", "finger_thumb", "finger_index", "finger_rest"}
        for angle in targets.values():
            assert 0.0 <= angle <= 180.0

    def test_finger_servos_share_grip_command(self, kin):
        targets = kin.servo_targets(JointState(grip_percent=30.0))
        assert targets["finger_thumb"] == targets["finger_index"] == targets["finger_rest"]

    @settings(max_examples=40, deadline=None)
    @given(
        elbow=st.floats(min_value=-50, max_value=250),
        wrist=st.floats(min_value=-200, max_value=200),
        grip=st.floats(min_value=-50, max_value=150),
    )
    def test_property_clamp_always_within_limits(self, elbow, wrist, grip):
        kin = ArmKinematics()
        clamped = kin.clamp(JointState(elbow_deg=elbow, wrist_rotation_deg=wrist,
                                       grip_percent=grip))
        assert kin.within_limits(clamped)
        assert kin.reach_cm(clamped) <= kin.max_reach_cm() + 1e-9


class TestPoses:
    def test_pose_library_states_within_limits(self):
        kin = ArmKinematics()
        for pose in POSE_LIBRARY.values():
            assert kin.within_limits(kin.clamp(pose.state))

    def test_blend_endpoints(self):
        rest, raised = POSE_LIBRARY["rest"], POSE_LIBRARY["raised"]
        assert rest.blend(raised, 0.0).elbow_deg == rest.state.elbow_deg
        assert rest.blend(raised, 1.0).elbow_deg == raised.state.elbow_deg
        with pytest.raises(ValueError):
            rest.blend(raised, 1.5)

    def test_task_library_contains_paper_tasks(self):
        tasks = task_library()
        assert {"handshake", "cup_picking", "ball_catch"} <= set(tasks)

    def test_task_script_validation(self):
        with pytest.raises(ValueError):
            TaskScript("empty", ())
        with pytest.raises(ValueError):
            TaskScript("bad", ((POSE_LIBRARY["rest"], 0.0),))

    def test_pose_at_interpolates_over_time(self):
        script = task_library()["handshake"]
        start = script.pose_at(0.0)
        end = script.pose_at(script.duration_s + 1.0)
        middle = script.pose_at(script.duration_s / 2)
        assert start.grip_percent == POSE_LIBRARY["rest"].state.grip_percent
        assert end.grip_percent == POSE_LIBRARY["rest"].state.grip_percent
        assert middle.grip_percent != start.grip_percent


class TestController:
    @pytest.fixture()
    def controller(self):
        return ArmController()

    def test_invalid_mode_rejected(self, controller):
        with pytest.raises(ValueError):
            controller.set_mode("shoulder")
        with pytest.raises(ValueError):
            ArmController(initial_mode="leg")

    def test_idle_action_keeps_state(self, controller):
        before = controller.joint_state().as_dict()
        controller.apply_action(ACTION_IDLE)
        assert controller.joint_state().as_dict() == before

    def test_arm_mode_right_raises_elbow(self, controller):
        controller.set_mode(MODE_ARM)
        before = controller.joint_state().elbow_deg
        controller.apply_action(ACTION_RIGHT)
        assert controller.joint_state().elbow_deg > before

    def test_arm_mode_left_lowers_elbow(self, controller):
        controller.set_mode(MODE_ARM)
        before = controller.joint_state().elbow_deg
        controller.apply_action(ACTION_LEFT)
        assert controller.joint_state().elbow_deg < before

    def test_elbow_mode_rotates_wrist(self, controller):
        controller.set_mode(MODE_ELBOW)
        controller.apply_action(ACTION_RIGHT)
        assert controller.joint_state().wrist_rotation_deg > 0

    def test_fingers_mode_changes_grip(self, controller):
        controller.set_mode(MODE_FINGERS)
        controller.apply_action(ACTION_RIGHT)
        closed = controller.joint_state().grip_percent
        controller.apply_action(ACTION_LEFT)
        assert closed > 0
        assert controller.joint_state().grip_percent < closed

    def test_confidence_scales_increment(self):
        confident = ArmController()
        hesitant = ArmController()
        confident.apply_action(ACTION_RIGHT, confidence=1.0)
        hesitant.apply_action(ACTION_RIGHT, confidence=0.25)
        assert (
            confident.joint_state().elbow_deg - 90.0
            > hesitant.joint_state().elbow_deg - 90.0
        )

    def test_invalid_action_and_confidence_rejected(self, controller):
        with pytest.raises(ValueError):
            controller.apply_action("jump")
        with pytest.raises(ValueError):
            controller.apply_action(ACTION_RIGHT, confidence=2.0)

    def test_joint_limits_respected_under_repeated_actions(self, controller):
        controller.set_mode(MODE_ARM)
        for _ in range(40):
            controller.apply_action(ACTION_RIGHT)
        assert controller.joint_state().elbow_deg <= 160.0

    def test_action_log_records_mode_and_action(self, controller):
        controller.set_mode(MODE_FINGERS)
        controller.apply_action(ACTION_RIGHT)
        assert controller.action_log[-1] == (MODE_FINGERS, ACTION_RIGHT)

    def test_invalid_mapping_rejected(self):
        with pytest.raises(ValueError):
            ActionMapping(elbow_step_deg=0.0)

    def test_prosthetic_arm_trajectory_recorded(self):
        arm = ProstheticArm()
        arm.move_to(JointState(elbow_deg=120.0))
        assert len(arm.trajectory) == 2
        assert arm.fingertip_position_cm() is not None
