"""Tests for system configuration, event log and mode multiplexer."""

import pytest

from repro.asr.commands import CommandGrammar, DetectedCommand
from repro.core.config import CognitiveArmConfig
from repro.core.events import ActionEvent, EventLog, ModeChangeEvent, SystemEvent
from repro.core.multiplexer import ModeMultiplexer


class TestConfig:
    def test_defaults_match_paper(self):
        config = CognitiveArmConfig()
        assert config.sampling_rate_hz == 125.0
        assert config.n_channels == 16
        assert config.label_rate_hz == 15.0

    def test_label_period(self):
        assert CognitiveArmConfig(label_rate_hz=10.0).label_period_s == pytest.approx(0.1)

    def test_window_config_uses_system_window_size(self):
        assert CognitiveArmConfig(window_size=130).window_config().window_size == 130

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            CognitiveArmConfig(sampling_rate_hz=0)
        with pytest.raises(ValueError):
            CognitiveArmConfig(n_channels=0)
        with pytest.raises(ValueError):
            CognitiveArmConfig(window_size=0)
        with pytest.raises(ValueError):
            CognitiveArmConfig(label_rate_hz=0)
        with pytest.raises(ValueError):
            CognitiveArmConfig(confidence_threshold=1.0)
        with pytest.raises(ValueError):
            CognitiveArmConfig(smoothing_window=0)


class TestEventLog:
    def _populated_log(self):
        log = EventLog()
        log.record_action(ActionEvent(0.1, "left", 0.9, "arm", True))
        log.record_action(ActionEvent(0.2, "idle", 0.5, "arm", False))
        log.record_action(ActionEvent(1.2, "right", 0.8, "fingers", True))
        log.record_mode_change(ModeChangeEvent(1.0, "fingers", "fingers"))
        log.record_system(SystemEvent(0.0, "session_start"))
        return log

    def test_len_counts_all_events(self):
        assert len(self._populated_log()) == 5

    def test_actions_between_filters_by_time(self):
        log = self._populated_log()
        assert len(log.actions_between(0.0, 1.0)) == 2

    def test_actuation_rate(self):
        assert self._populated_log().actuation_rate() == pytest.approx(2 / 3)
        assert EventLog().actuation_rate() == 0.0

    def test_action_counts(self):
        counts = self._populated_log().action_counts()
        assert counts == {"left": 1, "idle": 1, "right": 1}

    def test_final_mode(self):
        assert self._populated_log().final_mode() == "fingers"
        assert EventLog().final_mode() is None


class TestModeMultiplexer:
    def test_initial_mode_and_validation(self):
        assert ModeMultiplexer().mode == "arm"
        with pytest.raises(ValueError):
            ModeMultiplexer(initial_mode="shoulder")
        with pytest.raises(ValueError):
            ModeMultiplexer(debounce_s=-1.0)

    def test_keyword_switches_mode(self):
        mux = ModeMultiplexer()
        assert mux.handle_keyword("fingers", 1.0)
        assert mux.mode == "fingers"
        assert mux.switch_count() == 1

    def test_non_command_keyword_ignored(self):
        mux = ModeMultiplexer()
        assert not mux.handle_keyword("hello", 1.0)
        assert mux.mode == "arm"

    def test_debounce_blocks_rapid_switches(self):
        mux = ModeMultiplexer(debounce_s=1.0)
        assert mux.handle_keyword("elbow", 1.0)
        assert not mux.handle_keyword("fingers", 1.4)
        assert mux.mode == "elbow"
        assert mux.handle_keyword("fingers", 2.5)

    def test_same_mode_is_not_a_switch(self):
        mux = ModeMultiplexer()
        assert not mux.handle_keyword("arm", 1.0)
        assert mux.switch_count() == 0

    def test_handle_command_uses_keyword_and_time(self):
        mux = ModeMultiplexer()
        command = DetectedCommand(time_s=2.0, keyword="fingers", mode="fingers")
        assert mux.handle_command(command)
        assert mux.mode == "fingers"

    def test_mode_at_returns_historical_mode(self):
        mux = ModeMultiplexer()
        mux.handle_keyword("elbow", 5.0)
        mux.handle_keyword("fingers", 10.0)
        assert mux.mode_at(2.0) == "arm"
        assert mux.mode_at(7.0) == "elbow"
        assert mux.mode_at(12.0) == "fingers"
