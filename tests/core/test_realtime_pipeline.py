"""Tests for the real-time loop and the integrated pipeline."""

import numpy as np
import pytest

from repro.acquisition.board import BoardConfig, SimulatedCytonDaisyBoard
from repro.core.config import CognitiveArmConfig
from repro.core.pipeline import CognitiveArmPipeline, ScriptedIntent
from repro.core.realtime import RealTimeInferenceLoop
from repro.models.base import EEGClassifier, TrainingHistory
from repro.signals.synthetic import ACTION_IDLE, ACTION_LEFT, ACTION_RIGHT, ParticipantProfile


class _OracleClassifier(EEGClassifier):
    """Classifier that decodes the lateralised band power directly.

    Uses the same physical signature the real models learn (C3/C4 mu power
    asymmetry) so pipeline tests exercise realistic behaviour without any
    training cost.
    """

    family = "oracle"

    def __init__(self, c3_index=7, c4_index=8, sampling_rate_hz=125.0):
        self.c3_index = c3_index
        self.c4_index = c4_index
        self.sampling_rate_hz = sampling_rate_hz

    def fit(self, train, validation=None):
        return TrainingHistory()

    def predict_proba(self, windows):
        from repro.signals.quality import band_power

        windows = np.asarray(windows)
        if windows.ndim == 2:
            windows = windows[None, ...]
        probs = np.zeros((windows.shape[0], 3))
        for i, window in enumerate(windows):
            p3 = band_power(window[self.c3_index], (8, 30), self.sampling_rate_hz)
            p4 = band_power(window[self.c4_index], (8, 30), self.sampling_rate_hz)
            asymmetry = (p4 - p3) / max(p4 + p3, 1e-12)
            # Positive asymmetry (C3 suppressed) => right imagery.
            scores = np.array([
                max(-asymmetry, 0.0) * 3 + 0.2,   # left
                max(asymmetry, 0.0) * 3 + 0.2,    # right
                0.45 - abs(asymmetry),            # idle
            ])
            scores = np.clip(scores, 0.01, None)
            probs[i] = scores / scores.sum()
        return probs

    def parameter_count(self):
        return 2


@pytest.fixture()
def strong_profile():
    profile = ParticipantProfile(participant_id="RT", seed=9)
    profile.rhythms.erd_depth = 0.85
    profile.artifacts.white_noise_uv = 1.0
    return profile


@pytest.fixture()
def config():
    return CognitiveArmConfig(window_size=100, smoothing_window=3, confidence_threshold=0.3,
                              label_rate_hz=10.0)


class TestRealTimeLoop:
    def _loop(self, profile, config):
        board = SimulatedCytonDaisyBoard(profile=profile)
        board.prepare_session()
        board.start_stream()
        loop = RealTimeInferenceLoop(board, _OracleClassifier(), config)
        loop.warmup()
        return loop, board

    def test_channel_mismatch_rejected(self, strong_profile, config):
        board = SimulatedCytonDaisyBoard(profile=strong_profile)
        bad_config = CognitiveArmConfig(n_channels=8)
        with pytest.raises(ValueError):
            RealTimeInferenceLoop(board, _OracleClassifier(), bad_config)

    def test_tick_produces_valid_label(self, strong_profile, config):
        loop, _ = self._loop(strong_profile, config)
        tick = loop.tick()
        assert tick.action in ("left", "right", "idle")
        assert 0.0 <= tick.confidence <= 1.0
        assert tick.processing_latency_s > 0

    def test_run_produces_expected_tick_count(self, strong_profile, config):
        loop, _ = self._loop(strong_profile, config)
        ticks = loop.run(2.0)
        assert len(ticks) == 20

    def test_invalid_run_duration(self, strong_profile, config):
        loop, _ = self._loop(strong_profile, config)
        with pytest.raises(ValueError):
            loop.run(0.0)

    def test_right_imagery_dominates_right_labels(self, strong_profile, config):
        loop, board = self._loop(strong_profile, config)
        board.set_action(ACTION_RIGHT)
        ticks = loop.run(4.0)
        actions = [t.smoothed_action for t in ticks[5:]]
        assert actions.count("right") > actions.count("left")

    def test_latency_accounting(self, strong_profile, config):
        loop, _ = self._loop(strong_profile, config)
        loop.run(1.0)
        assert loop.mean_processing_latency_s() > 0
        assert loop.p95_processing_latency_s() > 0
        latencies = [t.processing_latency_s for t in loop.ticks]
        assert loop.p95_processing_latency_s() >= min(latencies)
        assert loop.p95_processing_latency_s() <= max(latencies)
        assert isinstance(loop.label_rate_achievable(), bool)

    def test_majority_vote_ties_resolve_toward_most_recent(
        self, strong_profile, config
    ):
        loop, _ = self._loop(strong_profile, config)
        loop._history.clear()
        loop._history.extend(["left", "right"])  # 1-1 tie -> freshest wins
        assert loop._majority_vote() == "right"
        loop._history.clear()
        loop._history.extend(["right", "left"])
        assert loop._majority_vote() == "left"
        loop._history.clear()
        loop._history.extend(["right", "left", "right"])  # clear majority
        assert loop._majority_vote() == "right"

    def test_two_phase_api_matches_tick(self, strong_profile, config):
        loop, _ = self._loop(strong_profile, config)
        window = loop.prepare_window()
        assert window.shape == (config.n_channels, config.window_size)
        probabilities = loop.classifier.predict_proba(window[None])[0]
        tick = loop.apply_result(probabilities, classify_latency_s=0.002)
        assert tick.processing_latency_s > 0.002
        assert tick.action in ("left", "right", "idle")

    def test_tick_without_classifier_raises(self, strong_profile, config):
        board = SimulatedCytonDaisyBoard(profile=strong_profile)
        board.prepare_session()
        board.start_stream()
        loop = RealTimeInferenceLoop(board, None, config)
        loop.warmup()
        with pytest.raises(RuntimeError):
            loop.tick()
        loop.prepare_window()  # two-phase API still works


class TestScriptedIntent:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScriptedIntent(0.0, ACTION_LEFT)
        with pytest.raises(ValueError):
            ScriptedIntent(1.0, "jump")


class TestCognitiveArmPipeline:
    @pytest.fixture()
    def pipeline(self, strong_profile, config):
        return CognitiveArmPipeline(_OracleClassifier(), profile=strong_profile, config=config)

    def test_empty_script_rejected(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.run_scripted_session([])

    def test_scripted_session_report(self, pipeline):
        script = [
            ScriptedIntent(1.0, ACTION_IDLE),
            ScriptedIntent(2.0, ACTION_RIGHT, voice_keyword="arm"),
            ScriptedIntent(2.0, ACTION_LEFT, voice_keyword="fingers"),
        ]
        report = pipeline.run_scripted_session(script, success_threshold=0.2)
        assert 0.0 <= report.intent_accuracy <= 1.0
        assert len(report.per_phase_accuracy) == 3
        assert report.mode_switches >= 1
        assert report.events.actions  # actions were logged
        assert report.label_rate_hz == pipeline.config.label_rate_hz
        assert set(report.summary()) == {
            "intent_accuracy", "mean_processing_latency_s",
            "p95_processing_latency_s", "label_rate_hz",
            "mode_switches", "success",
        }
        assert report.p95_processing_latency_s >= 0.0

    def test_voice_commands_switch_controller_mode(self, strong_profile, config):
        pipeline = CognitiveArmPipeline(_OracleClassifier(), profile=strong_profile, config=config)
        script = [
            ScriptedIntent(1.0, ACTION_RIGHT, voice_keyword="fingers"),
        ]
        pipeline.run_scripted_session(script, success_threshold=0.0)
        assert pipeline.controller.mode == "fingers"

    def test_arm_moves_during_right_imagery_in_arm_mode(self, strong_profile, config):
        pipeline = CognitiveArmPipeline(_OracleClassifier(), profile=strong_profile, config=config)
        initial_elbow = pipeline.controller.joint_state().elbow_deg
        script = [ScriptedIntent(3.0, ACTION_RIGHT, voice_keyword="arm")]
        pipeline.run_scripted_session(script, success_threshold=0.0)
        assert pipeline.controller.joint_state().elbow_deg != initial_elbow

    def test_validation_campaign_counts_successes(self, strong_profile, config):
        pipeline = CognitiveArmPipeline(_OracleClassifier(), profile=strong_profile, config=config)
        script = [ScriptedIntent(1.5, ACTION_RIGHT, voice_keyword="arm")]
        successes, reports = pipeline.run_validation_campaign(
            script, n_sessions=2, success_threshold=0.1
        )
        assert len(reports) == 2
        assert 0 <= successes <= 2
