"""StreamConsumerScheduler tests: group draining, deadlines, supersession,
crash recovery via pending/claim, and worker-death requeue."""

import numpy as np
import pytest

from tests.helpers import ClockedStubClassifier, FakeClock

from repro.serving.executors import CompletedTicket, WorkerDiedError
from repro.serving.scheduler import SchedulerConfig
from repro.streams import (
    SCHEDULER_GROUP,
    FlushResult,
    StreamConsumerScheduler,
    StreamTopology,
    WindowSubmission,
)


def submission(session_id, cohort, clock, sequence=0):
    return WindowSubmission(
        session_id=session_id,
        cohort=cohort,
        window=np.full((2, 4), 0.1),
        submitted_at_s=clock.now(),
        sequence=sequence,
    )


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def topology(clock):
    return StreamTopology(clock=clock)


def make_consumer(topology, clock, cohorts=("a",), executor=None, **cfg):
    config = SchedulerConfig(**{"deadline_s": 0.05, "max_batch_size": 4, **cfg})
    classifiers = {
        cohort: ClockedStubClassifier(clock, base_latency_s=0.001)
        for cohort in cohorts
    }
    return StreamConsumerScheduler(
        classifiers,
        {cohort: topology.cohort_stream(cohort) for cohort in cohorts},
        topology.result_stream,
        scheduler_config=config,
        clock=clock,
        executor=executor,
    )


def harvest_results(topology):
    return [e.payload for e in topology.result_stream.range()]


class TestDraining:
    def test_poll_reads_entries_into_backlog(self, topology, clock):
        consumer = make_consumer(topology, clock)
        stream = topology.cohort_stream("a")
        stream.append(submission("s0", "a", clock))
        assert consumer.backlog_depth() == 0
        consumer.poll()
        assert consumer.backlog_depth() == 1
        # entry is pending (delivered, unacked) until its flush completes
        assert len(stream.pending(SCHEDULER_GROUP)) == 1

    def test_full_batch_flushes_inline_on_poll(self, topology, clock):
        consumer = make_consumer(topology, clock, max_batch_size=2)
        stream = topology.cohort_stream("a")
        stream.append(submission("s0", "a", clock, 0))
        stream.append(submission("s1", "a", clock, 0))
        events = consumer.poll()
        assert len(events) == 1
        assert events[0].reason == "full"
        assert events[0].batch_size == 2
        (result,) = harvest_results(topology)
        assert isinstance(result, FlushResult)
        assert result.session_ids == ("s0", "s1")
        assert result.entry_ids == (1, 2)
        assert result.probabilities.shape == (2, 3)
        # flush acked the served entries
        assert stream.pending(SCHEDULER_GROUP) == []

    def test_pump_flushes_at_the_deadline(self, topology, clock):
        consumer = make_consumer(topology, clock)
        topology.cohort_stream("a").append(submission("s0", "a", clock))
        consumer.poll()
        due = consumer.next_flush_due_s()
        assert due == pytest.approx(0.05)
        assert consumer.pump() == []  # not due yet
        clock.advance_to(due)
        (event,) = consumer.pump()
        assert event.reason == "deadline"
        assert event.deadline_violations == 0

    def test_late_pump_counts_violations(self, topology, clock):
        consumer = make_consumer(topology, clock)
        topology.cohort_stream("a").append(submission("s0", "a", clock))
        consumer.poll()
        clock.advance(1.0)  # way past the 0.05s deadline
        (event,) = consumer.pump()
        assert event.deadline_violations == 1
        assert event.max_queue_wait_s == pytest.approx(1.0)

    def test_results_carry_stream_lag_and_depth(self, topology, clock):
        consumer = make_consumer(topology, clock)
        stream = topology.cohort_stream("a")
        stream.append(submission("s0", "a", clock))
        clock.advance(0.02)
        consumer.poll()
        clock.advance(0.04)
        consumer.pump()
        (result,) = harvest_results(topology)
        assert result.stream_lag_s == pytest.approx(0.06)
        assert result.stream_depth == 1
        (record,) = consumer.telemetry.records
        assert record.stream_lag_s == pytest.approx(0.06)
        assert record.stream_depth == 1

    def test_drain_flushes_everything_before_deadlines(self, topology, clock):
        consumer = make_consumer(topology, clock, cohorts=("a", "b"))
        topology.cohort_stream("a").append(submission("s0", "a", clock))
        topology.cohort_stream("b").append(submission("s1", "b", clock))
        consumer.poll()
        events = consumer.drain()
        assert sorted(e.cohort for e in events) == ["a", "b"]
        assert all(e.reason == "drain" for e in events)

    def test_wrong_payload_type_is_rejected(self, topology, clock):
        consumer = make_consumer(topology, clock)
        topology.cohort_stream("a").append("not-a-submission")
        with pytest.raises(TypeError, match="expected WindowSubmission"):
            consumer.poll()

    def test_deadline_origin_read_measures_from_delivery(self, topology, clock):
        config = dict(deadline_s=0.05, max_batch_size=4)
        stream = topology.cohort_stream("a")
        stream.append(submission("s0", "a", clock))
        clock.advance(10.0)  # entry is ancient by the time the consumer reads
        consumer = StreamConsumerScheduler(
            {"a": ClockedStubClassifier(clock)},
            {"a": stream},
            topology.result_stream,
            scheduler_config=SchedulerConfig(**config),
            clock=clock,
            deadline_origin="read",
        )
        consumer.poll()
        # deadline counts from the read, not the 10s-old timestamp
        assert consumer.next_flush_due_s() == pytest.approx(10.05)

    def test_invalid_deadline_origin_rejected(self, topology, clock):
        with pytest.raises(ValueError, match="deadline_origin"):
            make_consumer(topology, clock).__class__(
                {"a": ClockedStubClassifier(clock)},
                {"a": topology.cohort_stream("a")},
                topology.result_stream,
                clock=clock,
                deadline_origin="sometimes",
            )


class TestSupersession:
    def test_fresher_window_supersedes_stale_backlog(self, topology, clock):
        consumer = make_consumer(topology, clock)
        stream = topology.cohort_stream("a")
        stream.append(submission("s0", "a", clock, sequence=0))
        consumer.poll()
        clock.advance(0.01)
        stream.append(submission("s0", "a", clock, sequence=1))
        consumer.poll()
        assert consumer.backlog_depth() == 1  # stale window dropped
        assert consumer.superseded_count == 1
        clock.advance(0.05)
        consumer.pump()
        (result,) = harvest_results(topology)
        assert result.sequences == (1,)  # the fresh window was served
        assert result.superseded == (("s0", 0),)
        assert stream.pending(SCHEDULER_GROUP) == []  # stale entry acked too

    def test_drain_reports_orphaned_supersessions(self, topology, clock):
        consumer = make_consumer(topology, clock)
        stream = topology.cohort_stream("a")
        stream.append(submission("s0", "a", clock, sequence=0))
        consumer.poll()
        stream.append(submission("s0", "a", clock, sequence=1))
        consumer.poll()
        # serve the fresh window, then supersede again with nothing queued
        clock.advance(0.05)
        consumer.pump()
        stream.append(submission("s0", "a", clock, sequence=2))
        consumer.poll()
        stream.append(submission("s0", "a", clock, sequence=3))
        consumer.poll()
        consumer.drain()
        results = harvest_results(topology)
        reported = [pair for r in results for pair in r.superseded]
        assert ("s0", 0) in reported and ("s0", 2) in reported
        assert stream.pending(SCHEDULER_GROUP) == []  # nothing left unacked


class TestCrashRecovery:
    def test_abandoned_pending_is_claimed_by_restarted_consumer(
        self, topology, clock
    ):
        # Consumer reads two entries, then "dies" before flushing.
        dead = make_consumer(topology, clock)
        stream = topology.cohort_stream("a")
        stream.append(submission("s0", "a", clock, 0))
        stream.append(submission("s1", "a", clock, 0))
        dead.poll()
        assert len(stream.pending(SCHEDULER_GROUP)) == 2
        del dead
        # A replacement under the same identity claims the orphans at start.
        revived = StreamConsumerScheduler(
            {"a": ClockedStubClassifier(clock)},
            {"a": stream},
            topology.result_stream,
            scheduler_config=SchedulerConfig(deadline_s=0.05, max_batch_size=4),
            clock=clock,
        )
        assert revived.backlog_depth() == 2
        revived.drain()
        (result,) = harvest_results(topology)
        assert result.session_ids == ("s0", "s1")
        assert stream.pending(SCHEDULER_GROUP) == []

    def test_worker_death_restores_backlog_and_keeps_entries_pending(
        self, topology, clock
    ):
        class DyingTicket:
            def done(self):
                return True

            def result(self, timeout=None):
                raise WorkerDiedError("a", detail="test kill")

        class DyingExecutor:
            serializes_flushes = False
            remote_execution = False

            def __init__(self):
                self.fail_next = True

            def bind(self, classifiers, clock):
                from repro.serving.batcher import execute_windows

                self._classifiers = dict(classifiers)
                self._clock = clock
                self._execute = execute_windows

            def submit_flush(self, cohort, prepared):
                if self.fail_next:
                    return DyingTicket()
                return CompletedTicket(
                    self._execute(
                        self._classifiers[cohort],
                        prepared.windows,
                        prepared.chunk_size,
                        clock=self._clock,
                    )
                )

            def shutdown(self):
                pass

        executor = DyingExecutor()
        consumer = make_consumer(topology, clock, executor=executor)
        stream = topology.cohort_stream("a")
        stream.append(submission("s0", "a", clock, 0))
        stream.append(submission("s1", "a", clock, 0))
        consumer.poll()
        clock.advance(0.05)
        with pytest.raises(WorkerDiedError):
            consumer.pump()
        assert consumer.worker_deaths == 1
        # Work is not lost: windows back in the local backlog, entries still
        # pending in the group (so even a full process death is recoverable).
        assert consumer.backlog_depth() == 2
        assert len(stream.pending(SCHEDULER_GROUP)) == 2
        assert consumer.inflight_cohorts == ()
        # Requeued windows get a fresh deadline from the failed flush start;
        # a recovered executor serves them on the next due pump.
        executor.fail_next = False
        assert consumer.next_flush_due_s() == pytest.approx(0.10)
        clock.advance_to(consumer.next_flush_due_s())
        (event,) = consumer.pump()
        assert event.batch_size == 2
        assert stream.pending(SCHEDULER_GROUP) == []


class TestCompetingConsumers:
    def test_same_group_consumers_split_one_stream_disjointly(self, topology, clock):
        stream = topology.cohort_stream("a")
        config = SchedulerConfig(deadline_s=0.05, max_batch_size=8)

        def build(name):
            return StreamConsumerScheduler(
                {"a": ClockedStubClassifier(clock)},
                {"a": stream},
                topology.result_stream,
                consumer=name,
                scheduler_config=config,
                clock=clock,
            )

        left, right = build("left"), build("right")
        for i in range(6):
            stream.append(submission(f"s{i}", "a", clock, 0))
        left.poll(count=3)
        right.poll(count=3)
        left.drain()
        right.drain()
        results = harvest_results(topology)
        served = [sid for r in results for sid in r.session_ids]
        assert sorted(served) == [f"s{i}" for i in range(6)]
        consumers = {r.consumer for r in results}
        assert consumers == {"left", "right"}


class TestSupervisedHealing:
    """With a supervised executor the consumer absorbs deaths and hot-swaps."""

    def _supervised(self, topology, clock, **cfg):
        from repro.serving.chaos import SimulatedShardExecutor
        from repro.serving.executors import SupervisorConfig

        executor = SimulatedShardExecutor(
            supervisor_config=SupervisorConfig(
                backoff_initial_s=0.02, jitter_fraction=0.0
            )
        )
        return make_consumer(topology, clock, executor=executor, **cfg), executor

    def test_worker_death_is_healed_not_raised(self, topology, clock):
        consumer, executor = self._supervised(topology, clock)
        stream = topology.cohort_stream("a")
        stream.append(submission("s0", "a", clock, 0))
        stream.append(submission("s1", "a", clock, 0))
        consumer.poll()
        executor.inject_kill("a", phase="idle")
        clock.advance(0.05)
        # No raise: the idle death is discovered at submit and absorbed
        # (no flush started, so no FlushEvent — telemetry carries the mark).
        assert consumer.pump() == []
        assert consumer.worker_deaths == 1
        assert consumer.backlog_depth() == 2
        assert len(stream.pending(SCHEDULER_GROUP)) == 2
        died = [
            r
            for r in consumer.telemetry.records
            if r.flush_reason == "worker-died"
        ]
        assert len(died) == 1
        # Once the respawn backoff elapses the requeued windows are served.
        clock.advance(0.05)
        (event,) = consumer.pump()
        assert event.batch_size == 2
        assert stream.pending(SCHEDULER_GROUP) == []
        (result,) = harvest_results(topology)
        assert result.session_ids == ("s0", "s1")

    def test_hot_swap_versions_flushes_on_the_result_path(self, topology, clock):
        consumer, executor = self._supervised(topology, clock)
        stream = topology.cohort_stream("a")
        stream.append(submission("s0", "a", clock, 0))
        consumer.poll()
        clock.advance(0.05)
        consumer.pump()
        version = consumer.swap_plan(
            "a", classifier=ClockedStubClassifier(clock, peak_class=2)
        )
        assert version == 2
        assert consumer.plan_version("a") == 2
        stream.append(submission("s0", "a", clock, 1))
        consumer.poll()
        clock.advance(0.05)
        consumer.pump()
        served = [r for r in consumer.telemetry.records if r.batch_size > 0]
        assert [r.plan_version for r in served] == [1, 2]
        transitions = consumer.telemetry.plan_version_transitions()
        assert [t[1:] for t in transitions["a"]] == [(1, 2)]
        assert consumer.plan_swaps == 1
        health = consumer.fleet_health()
        assert health["a"]["plan_version"] == 2

    def test_swap_requires_exactly_one_plan_source(self, topology, clock):
        consumer, _ = self._supervised(topology, clock)
        with pytest.raises(ValueError, match="exactly one"):
            consumer.swap_plan("a")
