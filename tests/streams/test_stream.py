"""WindowStream unit tests: log semantics, consumer groups, lag, registry."""

import threading

import pytest

from tests.helpers import FakeClock

from repro.streams import StreamError, StreamRegistry, WindowStream


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def stream(clock):
    return WindowStream("t", clock=clock)


class TestLog:
    def test_ids_are_monotonic_from_one(self, stream):
        assert [stream.append(i) for i in range(5)] == [1, 2, 3, 4, 5]
        assert stream.last_id == 5
        assert stream.first_id == 1
        assert len(stream) == 5

    def test_entries_carry_clock_timestamps(self, stream, clock):
        stream.append("a")
        clock.advance(1.5)
        stream.append("b")
        (first, second) = stream.range()
        assert first.timestamp_s == 0.0
        assert second.timestamp_s == 1.5

    def test_explicit_timestamp_overrides_clock(self, stream, clock):
        clock.advance(10.0)
        stream.append("a", timestamp_s=3.25)
        assert stream.range()[0].timestamp_s == 3.25

    def test_range_filters_by_id_and_count(self, stream):
        for i in range(10):
            stream.append(i)
        assert [e.entry_id for e in stream.range(start_id=4)] == list(range(4, 11))
        assert [e.entry_id for e in stream.range(start_id=4, end_id=6)] == [4, 5, 6]
        assert [e.entry_id for e in stream.range(count=3)] == [1, 2, 3]

    def test_maxlen_trims_oldest_but_never_reuses_ids(self, clock):
        stream = WindowStream("t", maxlen=3, clock=clock)
        for i in range(5):
            stream.append(i)
        assert len(stream) == 3
        assert [e.entry_id for e in stream.range()] == [3, 4, 5]
        assert stream.append("x") == 6  # ids keep counting past trims
        assert stream.trimmed == 3  # 1, 2, 3 were never delivered

    def test_trim_spares_entries_a_group_already_saw(self, clock):
        stream = WindowStream("t", maxlen=2, clock=clock)
        stream.create_group("g")
        stream.append("a")
        stream.read_group("g", "c0")  # entry 1 delivered (pending)
        stream.append("b")
        stream.append("c")  # trims entry 1 from the log...
        assert stream.trimmed == 0  # ...but it was delivered, not lost
        # and the pending copy still acks fine
        assert stream.ack("g", 1) == 1

    def test_maxlen_must_be_positive(self):
        with pytest.raises(ValueError, match="maxlen"):
            WindowStream("t", maxlen=0)


class TestConsumerGroups:
    def test_read_group_delivers_each_entry_once(self, stream):
        stream.create_group("g")
        stream.append("a")
        stream.append("b")
        first = stream.read_group("g", "c0")
        assert [e.payload for e in first] == ["a", "b"]
        assert stream.read_group("g", "c0") == []  # cursor advanced
        assert stream.read_group("g", "c1") == []  # same group: disjoint

    def test_two_groups_each_see_every_entry(self, stream):
        stream.create_group("g1")
        stream.create_group("g2")
        stream.append("a")
        assert [e.payload for e in stream.read_group("g1", "x")] == ["a"]
        assert [e.payload for e in stream.read_group("g2", "y")] == ["a"]

    def test_group_starts_after_start_id(self, stream):
        stream.append("a")
        stream.append("b")
        stream.create_group("late", start_id=1)
        assert [e.payload for e in stream.read_group("late", "c")] == ["b"]

    def test_duplicate_create_raises_unless_exists_ok(self, stream):
        assert stream.create_group("g") is True
        with pytest.raises(StreamError, match="already has consumer group"):
            stream.create_group("g")
        assert stream.create_group("g", exists_ok=True) is False

    def test_unknown_group_raises(self, stream):
        with pytest.raises(StreamError, match="no consumer group"):
            stream.read_group("missing", "c")

    def test_read_count_limits_delivery(self, stream):
        stream.create_group("g")
        for i in range(5):
            stream.append(i)
        assert len(stream.read_group("g", "c", count=2)) == 2
        assert len(stream.read_group("g", "c")) == 3

    def test_pending_until_acked(self, stream):
        stream.create_group("g")
        i1 = stream.append("a")
        i2 = stream.append("b")
        stream.read_group("g", "c0")
        assert [p.entry.entry_id for p in stream.pending("g")] == [i1, i2]
        assert stream.ack("g", i1) == 1
        assert [p.entry.entry_id for p in stream.pending("g")] == [i2]
        assert stream.ack("g", i1) == 0  # double-ack is a counted no-op

    def test_pending_filters_by_consumer(self, stream):
        stream.create_group("g")
        stream.append("a")
        stream.read_group("g", "c0")
        stream.append("b")
        stream.read_group("g", "c1")
        assert len(stream.pending("g", "c0")) == 1
        assert len(stream.pending("g", "c1")) == 1
        assert len(stream.pending("g")) == 2

    def test_claim_redelivers_idle_pending(self, stream, clock):
        stream.create_group("g")
        stream.append("a")
        stream.read_group("g", "dead")
        clock.advance(5.0)
        claimed = stream.claim("g", "alive", min_idle_s=1.0)
        assert [e.payload for e in claimed] == ["a"]
        (pending,) = stream.pending("g")
        assert pending.consumer == "alive"
        assert pending.deliveries == 2  # redelivery is observable

    def test_claim_respects_min_idle(self, stream, clock):
        stream.create_group("g")
        stream.append("a")
        stream.read_group("g", "busy")
        clock.advance(0.5)
        assert stream.claim("g", "thief", min_idle_s=1.0) == []


class TestObservability:
    def test_depth_counts_undelivered_plus_pending(self, stream):
        stream.create_group("g")
        for i in range(4):
            stream.append(i)
        stream.read_group("g", "c", count=3)
        stream.ack("g", 1)
        assert stream.depth("g") == 3  # 2 pending + 1 undelivered

    def test_lag_is_oldest_unacked_age(self, stream, clock):
        stream.create_group("g")
        stream.append("a")
        clock.advance(2.0)
        stream.append("b")
        clock.advance(1.0)
        assert stream.lag_s("g") == pytest.approx(3.0)  # entry 1 aged 3s
        stream.read_group("g", "c")
        assert stream.lag_s("g") == pytest.approx(3.0)  # delivery is not ack
        stream.ack("g", 1)
        assert stream.lag_s("g") == pytest.approx(1.0)  # now entry 2 is oldest
        stream.ack("g", 2)
        assert stream.lag_s("g") == 0.0

    def test_has_group_and_info(self, stream):
        assert not stream.has_group("g")
        stream.create_group("g")
        assert stream.has_group("g")
        stream.append("a")
        info = stream.info()
        assert info["length"] == 1.0
        assert info["last_id"] == 1.0
        assert info["groups"] == 1.0


class TestConcurrency:
    def test_concurrent_appends_never_lose_or_duplicate_ids(self, stream):
        ids = []
        lock = threading.Lock()

        def worker():
            mine = [stream.append(i) for i in range(200)]
            with lock:
                ids.extend(mine)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(ids) == list(range(1, 801))

    def test_competing_consumers_split_the_stream_disjointly(self, stream):
        stream.create_group("g")
        for i in range(100):
            stream.append(i)
        got = {"c0": [], "c1": []}

        def drain(name):
            while True:
                batch = stream.read_group("g", name, count=5)
                if not batch:
                    return
                got[name].extend(e.entry_id for e in batch)

        threads = [threading.Thread(target=drain, args=(n,)) for n in got]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(got["c0"] + got["c1"]) == list(range(1, 101))
        assert not set(got["c0"]) & set(got["c1"])


class TestRegistry:
    def test_create_is_atomic_get_or_create(self):
        registry = StreamRegistry()
        first, created1 = registry.create("s")
        second, created2 = registry.create("s")
        assert first is second
        assert created1 and not created2
        assert registry.names == ("s",)

    def test_maxlen_mismatch_refused(self):
        registry = StreamRegistry()
        registry.create("s", maxlen=10)
        with pytest.raises(StreamError, match="maxlen"):
            registry.create("s", maxlen=20)

    def test_get_unknown_raises(self):
        with pytest.raises(StreamError, match="no stream named"):
            StreamRegistry().get("nope")

    def test_registry_streams_share_one_arrival_sequence(self):
        registry = StreamRegistry()
        left, _ = registry.create("left")
        right, _ = registry.create("right")
        left.append("a")
        right.append("b")
        left.append("c")
        seqs = {
            (s.name, e.entry_id): e.seq
            for s in (left, right)
            for e in s.range()
        }
        # interleaved appends get globally ordered seqs, per-stream ids
        assert seqs[("left", 1)] < seqs[("right", 1)] < seqs[("left", 2)]
        # a standalone stream counts privately from 1
        lone = WindowStream("lone")
        lone.append("x")
        assert lone.range()[0].seq == 1
