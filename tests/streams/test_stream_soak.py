"""Long-horizon soaks for the streaming data plane.

Two tripwires, mirroring ``tests/serving/test_soak.py``:

- A virtual-clock soak drives the in-process :class:`StreamDuplex` through
  thousands of virtual seconds of ``SimulatedLoad`` traffic (10k in CI's
  ``stream-soak`` job via ``REPRO_STREAM_SOAK=1``, a shorter horizon in the
  default suite) and asserts the plane's conservation invariants held the
  whole way: every admitted window came back as exactly one applied row or
  one supersession, every consumer group drained to depth zero, and no
  window waited past its deadline.

- A real-clock soak (full-soak only) runs two *actual* scheduler processes
  against a :class:`StreamServer`, pushes a sustained multi-round load
  through both cohort streams, and asserts the same conservation plus clean
  worker exits.

Both carry SIGALRM hard timeouts so a wedged scheduler fails fast and
attributably instead of stalling the run.
"""

import multiprocessing
import os
import time

import pytest

from repro.serving.scheduler import SchedulerConfig
from repro.streams import (
    DEFAULT_AUTHKEY,
    SCHEDULER_GROUP,
    STOP_COMMAND,
    StreamDuplex,
    StreamRegistry,
    StreamServer,
    WindowSubmission,
    stream_consumer_worker,
)
from tests.helpers import (
    ClockedStubClassifier,
    FakeClock,
    ScriptedSession,
    SimulatedLoad,
    hard_timeout,
)

FULL_SOAK = os.environ.get("REPRO_STREAM_SOAK") == "1"
VIRTUAL_SECONDS = 10_000.0 if FULL_SOAK else 1_000.0
HARD_TIMEOUT_S = 180 if FULL_SOAK else 90
DEADLINE_S = 0.015


def test_stream_duplex_soak_invariants_over_virtual_hours():
    clock = FakeClock()
    adults = ClockedStubClassifier(clock, base_latency_s=0.001, per_row_s=0.0002)
    kids = ClockedStubClassifier(clock, base_latency_s=0.0015, per_row_s=0.0002)
    duplex = StreamDuplex(
        {"adults": adults, "kids": kids},
        scheduler_config=SchedulerConfig(
            deadline_s=DEADLINE_S,
            max_batch_size=16,
            stream_lag_budget_s=1.0,  # generous: nominal load must not shed
        ),
        clock=clock,
    )
    for i in range(8):
        duplex.add_session(
            ScriptedSession(f"s{i}", stall_every=7 if i < 2 else None, seed=i),
            cohort="adults" if i % 2 == 0 else "kids",
        )
    load = SimulatedLoad(duplex, clock, period_s=0.25, jitter_s=0.05, seed=1)

    with hard_timeout(HARD_TIMEOUT_S, what="stream duplex soak"):
        load.run(VIRTUAL_SECONDS)

    assert clock.now() >= VIRTUAL_SECONDS - (0.25 + 0.05)
    producer = duplex.producer
    consumer = duplex.consumer

    # Conservation: every admitted window is exactly one applied row (the
    # 0.25 s period dwarfs the deadline, so nothing is ever superseded —
    # assert the precondition so a parameter tweak fails here, loudly).
    assert producer.superseded_count == 0
    assert producer.labels_applied == producer.submitted
    applied = sum(len(s.applied) for s in duplex.sessions)
    assert applied == producer.submitted
    assert consumer.telemetry.total_labels == producer.submitted

    # Every log fully drained: nothing pending in any consumer group, no
    # unharvested results, and the producer shed nothing.
    for cohort in ("adults", "kids"):
        stream = duplex.topology.cohort_stream(cohort)
        assert stream.depth(SCHEDULER_GROUP) == 0
        assert stream.pending(SCHEDULER_GROUP) == []
    assert producer.pending_results() == 0
    assert not producer.admission.shedding
    assert producer.admission.shed_count == 0

    # Deadline accounting is exact on the serial in-process plane.
    assert consumer.telemetry.total_deadline_violations == 0
    assert consumer.telemetry.max_queue_wait_s() <= DEADLINE_S + 1e-9
    # Observed stream lag can never exceed flush wait (acks trail flushes).
    assert consumer.telemetry.max_stream_lag_s() <= DEADLINE_S + 1e-9

    # Both cohorts really ran on their own classifier.
    assert adults.batch_sizes and kids.batch_sizes
    assert sum(adults.batch_sizes) + sum(kids.batch_sizes) == producer.submitted


@pytest.mark.skipif(
    not FULL_SOAK, reason="two-process stream soak runs in CI (REPRO_STREAM_SOAK=1)"
)
def test_two_process_stream_soak_conserves_every_window():
    import numpy as np

    from repro.models.cnn import CNNConfig, EEGCNN

    cohorts = ("alpha", "beta")
    config = SchedulerConfig(deadline_s=0.05, max_batch_size=8)
    sessions_per_cohort = 8
    rounds = 40

    def compiled(seed):
        classifier = EEGCNN(
            CNNConfig(
                n_conv_layers=2,
                filters=(6, 8),
                kernel_size=3,
                stride=1,
                pooling="max",
                hidden_units=12,
            ),
            seed=seed,
        )
        classifier.ensure_network(4, 50)
        return classifier.ensure_compiled()

    with hard_timeout(HARD_TIMEOUT_S, what="two-process stream soak"):
        registry = StreamRegistry()
        server = StreamServer(registry).start()
        payloads = {c: compiled(i).to_payload() for i, c in enumerate(cohorts)}
        streams = {c: registry.create(f"fleet/{c}")[0] for c in cohorts}
        result_stream, _ = registry.create("fleet/#results")
        control_stream, _ = registry.create("fleet/#control")
        ctx = multiprocessing.get_context("spawn")
        workers = [
            ctx.Process(
                target=stream_consumer_worker,
                args=(
                    server.address,
                    DEFAULT_AUTHKEY,
                    {cohort: f"fleet/{cohort}"},
                    "fleet/#results",
                    "fleet/#control",
                    {cohort: payloads[cohort]},
                    config,
                    SCHEDULER_GROUP,
                    f"worker-{index}",
                ),
                daemon=True,
            )
            for index, cohort in enumerate(cohorts)
        ]
        for worker in workers:
            worker.start()
        rng = np.random.default_rng(3)
        appended = 0
        try:
            # Sustained load: every round submits a fresh window for every
            # session; backlogged stale windows get superseded, which the
            # conservation check below counts as served.
            for sequence in range(rounds):
                for cohort in cohorts:
                    for i in range(sessions_per_cohort):
                        streams[cohort].append(
                            WindowSubmission(
                                session_id=f"{cohort}-s{i}",
                                cohort=cohort,
                                window=rng.standard_normal((4, 50)),
                                submitted_at_s=registry.clock.now(),
                                sequence=sequence,
                            )
                        )
                        appended += 1
                time.sleep(0.01)
            settle_by = time.monotonic() + 90
            while time.monotonic() < settle_by:
                if all(
                    s.has_group(SCHEDULER_GROUP) and s.depth(SCHEDULER_GROUP) == 0
                    for s in streams.values()
                ):
                    break
                time.sleep(0.02)
            else:
                pytest.fail("workers never drained the soak load")
            control_stream.append(STOP_COMMAND)
            for worker in workers:
                worker.join(timeout=60)
            assert all(worker.exitcode == 0 for worker in workers)
        finally:
            for worker in workers:
                if worker.is_alive():
                    worker.terminate()
            server.stop()

        # Conservation across the process boundary: every appended window
        # came back exactly once — as a served row or a supersession.
        results = [entry.payload for entry in result_stream.range()]
        served = sum(len(r.session_ids) for r in results)
        superseded = sum(len(r.superseded) for r in results)
        assert served + superseded == appended
        assert served > 0
        # and both workers stayed on their own cohort the whole soak
        for result in results:
            owner = cohorts[int(result.consumer.rsplit("-", 1)[1])]
            assert result.cohort == owner
