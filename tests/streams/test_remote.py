"""Socket transport tests: server/client/proxy semantics in-process, then
the two-process acceptance run — two scheduler processes draining disjoint
cohort streams must produce row-identical probabilities to a single-process
SerialExecutor consumer fed the same recorded entries.
"""

import multiprocessing
import socket
import time

import numpy as np
import pytest

from tests.helpers import FakeClock, hard_timeout

from repro.models.cnn import CNNConfig, EEGCNN
from repro.models.compiled import CompiledClassifier
from repro.serving.scheduler import SchedulerConfig
from repro.streams import (
    DEFAULT_AUTHKEY,
    SCHEDULER_GROUP,
    STOP_COMMAND,
    PlanSwap,
    RemoteStreamError,
    StreamClient,
    StreamConsumerScheduler,
    StreamRegistry,
    StreamServer,
    StreamTopology,
    WindowSubmission,
    stream_consumer_worker,
)


@pytest.fixture
def served_registry():
    registry = StreamRegistry(clock=FakeClock())
    server = StreamServer(registry).start()
    try:
        yield registry, server
    finally:
        server.stop()


class TestServerClient:
    def test_ping_and_create_or_get(self, served_registry):
        registry, server = served_registry
        client = StreamClient(server.address)
        assert client.ping()
        proxy = client.stream("logs/a")
        assert proxy.append("x") == 1
        # create-or-get: a second client converges on the same server log
        other = StreamClient(server.address)
        twin = other.stream("logs/a")
        assert [e.payload for e in twin.range()] == ["x"]
        client.close()
        other.close()

    def test_group_surface_round_trips(self, served_registry):
        registry, server = served_registry
        client = StreamClient(server.address)
        proxy = client.stream("logs/a")
        assert proxy.create_group("g") is True
        assert proxy.create_group("g", exists_ok=True) is False
        proxy.append("a")
        proxy.append("b")
        delivered = proxy.read_group("g", "c0")
        assert [e.payload for e in delivered] == ["a", "b"]
        assert proxy.has_group("g")
        assert proxy.depth("g") == 2
        assert len(proxy.pending("g", "c0")) == 2
        assert proxy.ack("g", 1, 2) == 2
        assert proxy.depth("g") == 0
        assert proxy.lag_s("g") == 0.0
        assert proxy.info()["length"] == 2.0
        client.close()

    def test_claim_recovers_remote_orphans(self, served_registry):
        registry, server = served_registry
        clock = registry.clock
        client = StreamClient(server.address)
        proxy = client.stream("logs/a")
        proxy.create_group("g")
        proxy.append("w")
        proxy.read_group("g", "dead")
        clock.advance(5.0)
        claimed = proxy.claim("g", "alive", min_idle_s=1.0)
        assert [e.payload for e in claimed] == ["w"]
        client.close()

    def test_non_whitelisted_method_is_refused(self, served_registry):
        registry, server = served_registry
        client = StreamClient(server.address)
        client.stream("logs/a")
        with pytest.raises(RemoteStreamError, match="not remotable"):
            client.call("logs/a", "groups")
        # a refused call does not poison the connection
        assert client.ping()
        client.close()

    def test_server_side_errors_are_forwarded_by_name(self, served_registry):
        registry, server = served_registry
        client = StreamClient(server.address)
        proxy = client.stream("logs/a")
        with pytest.raises(RemoteStreamError, match="StreamError.*no consumer group"):
            proxy.read_group("missing", "c")
        client.close()

    def test_maxlen_mismatch_is_refused_remotely(self, served_registry):
        registry, server = served_registry
        client = StreamClient(server.address)
        client.stream("logs/capped", maxlen=4)
        with pytest.raises(RemoteStreamError, match="maxlen"):
            client.stream("logs/capped", maxlen=8)
        client.close()

    def test_lost_connection_raises_remote_stream_error(self, served_registry):
        registry, server = served_registry
        client = StreamClient(server.address)
        proxy = client.stream("logs/a")
        client.close()
        with pytest.raises(RemoteStreamError, match="connection lost"):
            proxy.append("x")


class TestConnectRetry:
    """Worker processes race the server's listener at fleet start: the
    client must ride out a cold server instead of dying on the first
    ``ConnectionRefusedError``."""

    def test_transient_refusals_are_retried_until_the_server_answers(
        self, served_registry, monkeypatch
    ):
        import repro.streams.remote as remote_mod

        registry, server = served_registry
        real_client = remote_mod.Client
        attempts = []

        def cold_then_warm(address, authkey=None):
            attempts.append(address)
            if len(attempts) <= 2:
                raise ConnectionRefusedError("listener not up yet")
            return real_client(address, authkey=authkey)

        monkeypatch.setattr(remote_mod, "Client", cold_then_warm)
        client = StreamClient(
            server.address, connect_retries=5, connect_backoff_s=0.001
        )
        assert len(attempts) == 3
        assert client.ping()
        client.close()

    def test_exhausted_retries_raise_with_attempt_count(self):
        # A port nothing listens on: refused instantly on loopback.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        before = time.monotonic()
        with pytest.raises(RemoteStreamError, match="unreachable after 3 attempt"):
            StreamClient(
                ("127.0.0.1", port), connect_retries=2, connect_backoff_s=0.001
            )
        # Backoff actually slept between attempts but stayed bounded.
        assert time.monotonic() - before < 5.0

    def test_negative_retry_budget_is_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            StreamClient(("127.0.0.1", 1), connect_retries=-1)


# ---------------------------------------------------------------------- #
# Two scheduler processes vs one serial consumer (real clock, hard timeout)
# ---------------------------------------------------------------------- #
COHORTS = ("alpha", "beta")
N_PER_COHORT = 12
CONFIG = SchedulerConfig(deadline_s=0.05, max_batch_size=8)


def _compiled(seed):
    classifier = EEGCNN(
        CNNConfig(
            n_conv_layers=2,
            filters=(6, 8),
            kernel_size=3,
            stride=1,
            pooling="max",
            hidden_units=12,
        ),
        seed=seed,
    )
    classifier.ensure_network(4, 50)
    return classifier.ensure_compiled()


def _collect_rows(result_entries):
    rows = {}
    for entry in result_entries:
        result = entry.payload
        for index, (session_id, sequence) in enumerate(
            zip(result.session_ids, result.sequences)
        ):
            rows[(session_id, sequence)] = result.probabilities[index]
    return rows


class TestTwoProcessFanout:
    def test_two_schedulers_match_single_process_rows(self):
        with hard_timeout(90, "two-process stream fan-out"):
            registry = StreamRegistry()  # real clock: workers measure real lag
            server = StreamServer(registry).start()
            payloads = {
                cohort: _compiled(seed).to_payload()
                for seed, cohort in enumerate(COHORTS)
            }
            streams = {
                cohort: registry.create(f"fleet/{cohort}")[0] for cohort in COHORTS
            }
            result_stream, _ = registry.create("fleet/#results")
            control_stream, _ = registry.create("fleet/#control")
            rng = np.random.default_rng(7)
            for cohort in COHORTS:
                for i in range(N_PER_COHORT):
                    streams[cohort].append(
                        WindowSubmission(
                            session_id=f"{cohort}-s{i:02d}",
                            cohort=cohort,
                            window=rng.standard_normal((4, 50)),
                            submitted_at_s=registry.clock.now(),
                            sequence=0,
                        )
                    )
            ctx = multiprocessing.get_context("spawn")
            workers = []
            for index, cohort in enumerate(COHORTS):
                worker = ctx.Process(
                    target=stream_consumer_worker,
                    args=(
                        server.address,
                        DEFAULT_AUTHKEY,
                        {cohort: f"fleet/{cohort}"},
                        "fleet/#results",
                        "fleet/#control",
                        {cohort: payloads[cohort]},
                        CONFIG,
                        SCHEDULER_GROUP,
                        f"worker-{index}",
                    ),
                    daemon=True,
                )
                worker.start()
                workers.append(worker)
            try:
                settle_by = time.monotonic() + 60
                while time.monotonic() < settle_by:
                    drained = all(
                        stream.has_group(SCHEDULER_GROUP)
                        and stream.depth(SCHEDULER_GROUP) == 0
                        for stream in streams.values()
                    )
                    if drained:
                        break
                    time.sleep(0.01)
                else:
                    pytest.fail("workers never drained their cohort streams")
                control_stream.append(STOP_COMMAND)
                for worker in workers:
                    worker.join(timeout=30)
                assert all(worker.exitcode == 0 for worker in workers)
            finally:
                for worker in workers:
                    if worker.is_alive():
                        worker.terminate()
                server.stop()

            remote_rows = _collect_rows(result_stream.range())
            # distinct sessions => no supersession: every window has a row
            assert len(remote_rows) == len(COHORTS) * N_PER_COHORT
            consumers = {e.payload.consumer for e in result_stream.range()}
            assert consumers == {"worker-0", "worker-1"}
            # each worker only ever served its own cohort
            for entry in result_stream.range():
                owner = COHORTS[int(entry.payload.consumer.rsplit("-", 1)[1])]
                assert entry.payload.cohort == owner

            # Single-process baseline: a SerialExecutor consumer fed the
            # exact entries the workers drained (the log retains them).
            clock = FakeClock()
            topology = StreamTopology(clock=clock)
            baseline = StreamConsumerScheduler(
                {
                    cohort: CompiledClassifier.from_payload(payloads[cohort])
                    for cohort in COHORTS
                },
                {cohort: topology.cohort_stream(cohort) for cohort in COHORTS},
                topology.result_stream,
                scheduler_config=CONFIG,
                clock=clock,
            )
            for cohort in COHORTS:
                for entry in streams[cohort].range():
                    topology.cohort_stream(cohort).append(entry.payload)
            baseline.poll()
            baseline.drain()
            baseline_rows = _collect_rows(topology.result_stream.range())
            assert baseline_rows.keys() == remote_rows.keys()
            for key, row in baseline_rows.items():
                np.testing.assert_allclose(remote_rows[key], row, atol=1e-7)


class TestBlockSparseStreamWorker:
    def test_worker_process_serves_a_block_sparse_plan(self):
        """A block-pruned plan survives the stream payload hop bit-exactly."""
        from repro.compression.pruning import prune_classifier_inplace
        from repro.models.lstm_model import EEGLSTM, LSTMConfig
        from repro.nn.inference import SparsityConfig

        classifier = EEGLSTM(LSTMConfig(hidden_size=32), seed=21)
        classifier.ensure_network(16, 50)
        prune_classifier_inplace(classifier, 0.9, tile=(8, 8))
        classifier.plan_sparsity = SparsityConfig(mode="always", min_size=0)
        compiled = classifier.ensure_compiled()
        assert any("block" in k for k in compiled.plan.describe())
        # Gate-coupled pruning pins the recurrent projections to fused-gate
        # slabs — the stream hop below must round-trip that geometry too.
        from repro.nn.sparse import BlockSparseWeight

        assert any(
            isinstance(operand, BlockSparseWeight) and operand.groups == 4
            for kernel in compiled.plan.kernels
            if hasattr(kernel, "layers")
            for layer in kernel.layers
            for operand in layer[:2]
        )
        payload = compiled.to_payload()

        with hard_timeout(90, "block-sparse stream worker"):
            registry = StreamRegistry()
            server = StreamServer(registry).start()
            stream, _ = registry.create("fleet/block")
            result_stream, _ = registry.create("fleet/#results")
            control_stream, _ = registry.create("fleet/#control")
            rng = np.random.default_rng(22)
            windows = rng.standard_normal((6, 16, 50))
            for i in range(windows.shape[0]):
                stream.append(
                    WindowSubmission(
                        session_id=f"s{i:02d}",
                        cohort="block",
                        window=windows[i],
                        submitted_at_s=registry.clock.now(),
                        sequence=0,
                    )
                )
            ctx = multiprocessing.get_context("spawn")
            worker = ctx.Process(
                target=stream_consumer_worker,
                args=(
                    server.address,
                    DEFAULT_AUTHKEY,
                    {"block": "fleet/block"},
                    "fleet/#results",
                    "fleet/#control",
                    {"block": payload},
                    CONFIG,
                    SCHEDULER_GROUP,
                    "worker-block",
                ),
                daemon=True,
            )
            worker.start()
            try:
                settle_by = time.monotonic() + 60
                while time.monotonic() < settle_by:
                    if (
                        stream.has_group(SCHEDULER_GROUP)
                        and stream.depth(SCHEDULER_GROUP) == 0
                    ):
                        break
                    time.sleep(0.01)
                else:
                    pytest.fail("worker never drained the block cohort stream")
                control_stream.append(STOP_COMMAND)
                worker.join(timeout=30)
                assert worker.exitcode == 0
            finally:
                if worker.is_alive():
                    worker.terminate()
                server.stop()

        remote_rows = _collect_rows(result_stream.range())
        assert len(remote_rows) == windows.shape[0]
        # In-process replica of the same payload is the oracle: the worker
        # hop must be bit-exact, not merely close.
        replica = CompiledClassifier.from_payload(payload)
        expected = replica.predict_proba(windows)
        for i in range(windows.shape[0]):
            np.testing.assert_array_equal(
                remote_rows[(f"s{i:02d}", 0)], expected[i]
            )


class TestPlanSwapOverControlStream:
    def test_swap_reroutes_rows_and_spares_other_workers(self):
        """A PlanSwap on the fanned-out control stream re-plans exactly the
        targeted cohort: rows after the swap match the replacement plan,
        rows before it match the original, and the worker owning the other
        cohort ignores the command and exits cleanly."""
        old_plan = _compiled(0)
        new_plan = _compiled(5)
        beta_plan = _compiled(1)
        rng = np.random.default_rng(11)
        pre = rng.standard_normal((4, 4, 50))
        post = rng.standard_normal((4, 4, 50))
        beta_windows = rng.standard_normal((4, 4, 50))

        with hard_timeout(90, "plan hot-swap over control stream"):
            registry = StreamRegistry()
            server = StreamServer(registry).start()
            streams = {
                cohort: registry.create(f"fleet/{cohort}")[0]
                for cohort in ("alpha", "beta")
            }
            result_stream, _ = registry.create("fleet/#results")
            control_stream, _ = registry.create("fleet/#control")

            def submit(cohort, tag, windows):
                for i in range(windows.shape[0]):
                    streams[cohort].append(
                        WindowSubmission(
                            session_id=f"{tag}{i}",
                            cohort=cohort,
                            window=windows[i],
                            submitted_at_s=registry.clock.now(),
                            sequence=0,
                        )
                    )

            def await_drained(cohorts, what):
                settle_by = time.monotonic() + 60
                while time.monotonic() < settle_by:
                    if all(
                        streams[c].has_group(SCHEDULER_GROUP)
                        and streams[c].depth(SCHEDULER_GROUP) == 0
                        for c in cohorts
                    ):
                        return
                    time.sleep(0.01)
                pytest.fail(f"workers never drained {what}")

            submit("alpha", "pre", pre)
            submit("beta", "b", beta_windows)
            ctx = multiprocessing.get_context("spawn")
            workers = []
            for cohort, plan in (("alpha", old_plan), ("beta", beta_plan)):
                worker = ctx.Process(
                    target=stream_consumer_worker,
                    args=(
                        server.address,
                        DEFAULT_AUTHKEY,
                        {cohort: f"fleet/{cohort}"},
                        "fleet/#results",
                        "fleet/#control",
                        {cohort: plan.to_payload()},
                        CONFIG,
                        SCHEDULER_GROUP,
                        f"swap-{cohort}",
                    ),
                    daemon=True,
                )
                worker.start()
                workers.append(worker)
            try:
                await_drained(("alpha", "beta"), "the pre-swap windows")
                control_stream.append(
                    PlanSwap(cohort="alpha", payload=new_plan.to_payload())
                )
                # Wait for every worker to ack the swap before submitting
                # post-swap traffic, so no post row can ride the old plan.
                seen_by = time.monotonic() + 60
                while time.monotonic() < seen_by:
                    if all(
                        control_stream.has_group(f"ctl-swap-{c}")
                        and control_stream.depth(f"ctl-swap-{c}") == 0
                        for c in ("alpha", "beta")
                    ):
                        break
                    time.sleep(0.01)
                else:
                    pytest.fail("workers never consumed the PlanSwap entry")
                submit("alpha", "post", post)
                await_drained(("alpha",), "the post-swap windows")
                control_stream.append(STOP_COMMAND)
                for worker in workers:
                    worker.join(timeout=30)
                # The beta worker saw a swap for a cohort it does not own
                # and must shrug it off rather than crash.
                assert all(worker.exitcode == 0 for worker in workers)
            finally:
                for worker in workers:
                    if worker.is_alive():
                        worker.terminate()
                server.stop()

        rows = _collect_rows(result_stream.range())
        assert len(rows) == 12
        old_replica = CompiledClassifier.from_payload(old_plan.to_payload())
        new_replica = CompiledClassifier.from_payload(new_plan.to_payload())
        np.testing.assert_allclose(
            np.stack([rows[(f"pre{i}", 0)] for i in range(4)]),
            old_replica.predict_proba(pre),
            atol=1e-7,
        )
        np.testing.assert_allclose(
            np.stack([rows[(f"post{i}", 0)] for i in range(4)]),
            new_replica.predict_proba(post),
            atol=1e-7,
        )
        # The swap visibly changed the plan: the same rows under the old
        # replica must NOT match (seeds 0 and 5 differ materially).
        assert not np.allclose(
            np.stack([rows[(f"post{i}", 0)] for i in range(4)]),
            old_replica.predict_proba(post),
            atol=1e-3,
        )
