"""StreamTopology tests: naming, lazy creation, reserved leaves, sharing."""

import pytest

from tests.helpers import FakeClock

from repro.streams import StreamTopology
from repro.streams.stream import StreamRegistry
from repro.streams.topology import CONTROL_LEAF, RESULTS_LEAF


@pytest.fixture
def topology():
    return StreamTopology(clock=FakeClock())


class TestNodeTree:
    def test_cohort_nodes_are_created_lazily_and_cached(self, topology):
        assert topology.cohorts == ()
        node = topology.cohort_node("adults")
        assert node.path == "fleet/adults"
        assert node.kind == "cohort"
        assert node.name == "adults"
        assert topology.cohort_node("adults") is node
        assert topology.cohorts == ("adults",)

    def test_session_nodes_nest_under_their_cohort(self, topology):
        node = topology.session_node("adults", "s0")
        assert node.path == "fleet/adults/s0"
        assert node.kind == "session"
        assert topology.cohort_node("adults").children["s0"] is node

    def test_reserved_streams_have_hash_paths(self, topology):
        assert topology.result_node.path == f"fleet/{RESULTS_LEAF}"
        assert topology.control_node.path == f"fleet/{CONTROL_LEAF}"

    def test_cohort_names_cannot_collide_with_reserved(self, topology):
        with pytest.raises(ValueError, match="reserved"):
            topology.cohort_node("#results")
        with pytest.raises(ValueError, match="must not contain"):
            topology.cohort_node("a/b")
        with pytest.raises(ValueError, match="non-empty"):
            topology.cohort_node("")

    def test_walk_visits_every_materialised_node(self, topology):
        topology.cohort_node("a")
        topology.session_node("a", "s0")
        topology.cohort_node("b")
        _ = topology.result_node
        paths = {node.path for node in topology.walk()}
        assert paths == {
            "fleet",
            "fleet/a",
            "fleet/a/s0",
            "fleet/b",
            f"fleet/{RESULTS_LEAF}",
        }

    def test_describe_reports_per_stream_counters(self, topology):
        topology.cohort_stream("a").append("x")
        described = topology.describe()
        assert described["fleet/a"]["length"] == 1.0


class TestSharing:
    def test_two_topologies_over_one_registry_share_streams(self):
        clock = FakeClock()
        registry = StreamRegistry(clock=clock)
        one = StreamTopology(registry=registry, clock=clock)
        two = StreamTopology(registry=registry, clock=clock)
        one.cohort_stream("a").append("from-one")
        entries = two.cohort_stream("a").range()
        assert [e.payload for e in entries] == ["from-one"]
        assert one.result_stream is two.result_stream

    def test_cohort_streams_take_the_maxlen_cap_reserved_do_not(self):
        topology = StreamTopology(clock=FakeClock(), maxlen=2)
        assert topology.cohort_stream("a").maxlen == 2
        assert topology.result_stream.maxlen is None
        assert topology.control_stream.maxlen is None
