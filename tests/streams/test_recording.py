"""Record/replay determinism: a recorded run re-drives bit-for-bit.

The headline satellite: a 32-session SimulatedLoad run over the stream
plane is captured with StreamRecorder, then re-driven through a *fresh*
consumer under a fresh virtual clock — and produces tick-for-tick
identical FleetTickRecords, an equal FleetReport and bit-identical
FlushResult payloads.
"""

import numpy as np
import pytest

from tests.helpers import (
    ClockedStubClassifier,
    FakeClock,
    ScriptedSession,
    SimulatedLoad,
)

from repro.serving.scheduler import SchedulerConfig
from repro.streams import (
    ReplayError,
    StreamConsumerScheduler,
    StreamDuplex,
    StreamRecorder,
    StreamRecording,
    StreamReplayer,
    StreamTopology,
    WindowStream,
)
from repro.utils.timing import SYSTEM_CLOCK

COHORTS = ("alpha", "beta")
CONFIG = SchedulerConfig(deadline_s=0.05, max_batch_size=8)


def make_classifiers(clock):
    return {
        "alpha": ClockedStubClassifier(clock, base_latency_s=0.002, per_row_s=0.0005),
        "beta": ClockedStubClassifier(
            clock, base_latency_s=0.001, per_row_s=0.0005, peak_class=1
        ),
    }


def run_live(n_sessions=32, duration_s=5.0, stall_every=None):
    clock = FakeClock()
    duplex = StreamDuplex(make_classifiers(clock), scheduler_config=CONFIG, clock=clock)
    for i in range(n_sessions):
        duplex.add_session(
            ScriptedSession(f"s{i:02d}", seed=i, stall_every=stall_every),
            cohort=COHORTS[i % 2],
        )
    SimulatedLoad(duplex, clock, period_s=0.1, jitter_s=0.03, seed=7).run(duration_s)
    return duplex


def fresh_consumer():
    clock = FakeClock()
    topology = StreamTopology(clock=clock)
    consumer = StreamConsumerScheduler(
        make_classifiers(clock),
        {c: topology.cohort_stream(c) for c in COHORTS},
        topology.result_stream,
        scheduler_config=CONFIG,
        clock=clock,
    )
    return topology, consumer


class TestDeterminism:
    def test_32_session_run_replays_bit_for_bit(self):
        duplex = run_live(n_sessions=32, duration_s=5.0, stall_every=7)
        recording = StreamRecorder(duplex.topology).capture()
        assert recording.n_entries == duplex.producer.submitted
        assert set(recording.cohorts) == set(COHORTS)

        topology, consumer = fresh_consumer()
        fed = StreamReplayer(recording).replay(consumer)
        assert fed == recording.n_entries

        live_records = duplex.consumer.telemetry.records
        replay_records = consumer.telemetry.records
        assert len(live_records) == len(replay_records)
        for live, replayed in zip(live_records, replay_records):
            assert live == replayed  # tick-for-tick, every field

        # the final reports agree field for field
        assert duplex.consumer.report() == consumer.report()

        # and the published FlushResult payloads are bit-identical
        live_results = [e.payload for e in duplex.topology.result_stream.range()]
        replay_results = [e.payload for e in topology.result_stream.range()]
        assert len(live_results) == len(replay_results)
        for live, replayed in zip(live_results, replay_results):
            assert live.session_ids == replayed.session_ids
            assert live.sequences == replayed.sequences
            assert live.entry_ids == replayed.entry_ids
            assert live.flushed_at_s == replayed.flushed_at_s
            assert live.service_s == replayed.service_s
            assert live.superseded == replayed.superseded
            np.testing.assert_array_equal(live.probabilities, replayed.probabilities)

    def test_partial_replay_stays_consistent(self):
        duplex = run_live(n_sessions=8, duration_s=2.0)
        recording = StreamRecorder(duplex.topology).capture()
        _, consumer = fresh_consumer()
        fed = StreamReplayer(recording).replay(consumer, count=10)
        assert fed == 10
        # the partial run still drained: nothing left in the backlog
        assert consumer.backlog_depth() == 0
        assert consumer.telemetry.total_labels <= 10

    def test_save_load_roundtrip(self, tmp_path):
        duplex = run_live(n_sessions=4, duration_s=1.0)
        recording = StreamRecorder(duplex.topology).capture()
        path = str(tmp_path / "run.streamrec")
        recording.save(path)
        loaded = StreamRecording.load(path)
        assert loaded.n_entries == recording.n_entries
        _, consumer = fresh_consumer()
        StreamReplayer(loaded).replay(consumer)
        assert consumer.telemetry.records == duplex.consumer.telemetry.records

    def test_load_rejects_foreign_pickles(self, tmp_path):
        import pickle

        path = str(tmp_path / "bogus.streamrec")
        with open(path, "wb") as handle:
            pickle.dump({"not": "a recording"}, handle)
        with pytest.raises(ReplayError, match="does not hold a StreamRecording"):
            StreamRecording.load(path)


class TestReplayGuards:
    def test_trimmed_streams_are_refused_at_capture(self):
        clock = FakeClock()
        topology = StreamTopology(clock=clock, maxlen=2)
        stream = topology.cohort_stream("alpha")
        for i in range(5):
            stream.append(i)
        with pytest.raises(ReplayError, match="lost entries"):
            StreamRecorder(topology).capture()

    def test_stale_target_stream_aborts_replay(self):
        duplex = run_live(n_sessions=2, duration_s=1.0)
        recording = StreamRecorder(duplex.topology).capture()
        topology, consumer = fresh_consumer()
        # A leftover entry skews every subsequent id: replay must notice.
        first = recording.cohorts["alpha"][0]
        topology.cohort_stream("alpha").append(first.payload)  # not fresh anymore
        with pytest.raises(ReplayError, match="needs fresh streams"):
            StreamReplayer(recording).replay(consumer)

    def test_real_clock_is_refused(self):
        duplex = run_live(n_sessions=2, duration_s=0.5)
        recording = StreamRecorder(duplex.topology).capture()
        topology = StreamTopology()
        consumer = StreamConsumerScheduler(
            make_classifiers(None),
            {c: topology.cohort_stream(c) for c in COHORTS},
            topology.result_stream,
            scheduler_config=CONFIG,
            clock=SYSTEM_CLOCK,
        )
        with pytest.raises(ReplayError, match="virtual clock"):
            StreamReplayer(recording).replay(consumer)

    def test_missing_cohort_is_refused(self):
        duplex = run_live(n_sessions=2, duration_s=0.5)
        recording = StreamRecorder(duplex.topology).capture()
        clock = FakeClock()
        topology = StreamTopology(clock=clock)
        consumer = StreamConsumerScheduler(
            {"alpha": ClockedStubClassifier(clock)},
            {"alpha": topology.cohort_stream("alpha")},
            topology.result_stream,
            scheduler_config=CONFIG,
            clock=clock,
        )
        with pytest.raises(ReplayError, match="does not own recorded cohort"):
            StreamReplayer(recording).replay(consumer)


class TestVirtualClock:
    """repro.utils.timing.VirtualClock is the src-side twin of FakeClock."""

    def test_replay_runs_on_the_src_virtual_clock(self):
        from repro.utils.timing import VirtualClock

        duplex = run_live(n_sessions=4, duration_s=1.0)
        recording = StreamRecorder(duplex.topology).capture()
        clock = VirtualClock()
        topology = StreamTopology(clock=clock)
        consumer = StreamConsumerScheduler(
            make_classifiers(clock),
            {c: topology.cohort_stream(c) for c in COHORTS},
            topology.result_stream,
            scheduler_config=CONFIG,
            clock=clock,
        )
        StreamReplayer(recording).replay(consumer)
        assert consumer.telemetry.records == duplex.consumer.telemetry.records

    def test_virtual_clock_semantics(self):
        from repro.utils.timing import VirtualClock

        clock = VirtualClock(start=5.0)
        assert clock.now() == 5.0
        clock.sleep(1.5)
        assert clock.now() == 6.5
        clock.advance_to(10.0)
        assert clock.now() == 10.0
        clock.advance_to(10.0)  # same instant is fine
        with pytest.raises(ValueError):
            clock.advance_to(9.0)
        with pytest.raises(ValueError):
            clock.sleep(-1.0)
