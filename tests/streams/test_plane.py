"""End-to-end streaming plane tests: producer + consumer over one topology.

Covers the conservation contract (every admitted window lands in exactly
one FlushResult, as a row or a supersession), lag-driven admission control,
per-session sequences, the SimulatedLoad-drivable StreamDuplex facade, and
equivalence with the direct AsyncFleetScheduler.
"""

import numpy as np
import pytest

from tests.helpers import (
    ClockedStubClassifier,
    FakeClock,
    ScriptedSession,
    SimulatedLoad,
)

from repro.serving.scheduler import AsyncFleetScheduler, SchedulerConfig
from repro.streams import (
    SCHEDULER_GROUP,
    StreamConsumerScheduler,
    StreamDuplex,
    StreamFleetProducer,
    StreamTopology,
)


@pytest.fixture
def clock():
    return FakeClock()


def make_plane(clock, n_sessions=4, cohorts=("a",), **cfg):
    config = SchedulerConfig(**{"deadline_s": 0.05, "max_batch_size": 8, **cfg})
    topology = StreamTopology(clock=clock)
    producer = StreamFleetProducer(topology, scheduler_config=config, clock=clock)
    consumer = StreamConsumerScheduler(
        {c: ClockedStubClassifier(clock, base_latency_s=0.001) for c in cohorts},
        {c: topology.cohort_stream(c) for c in cohorts},
        topology.result_stream,
        scheduler_config=config,
        clock=clock,
    )
    for i in range(n_sessions):
        producer.add_session(
            ScriptedSession(f"s{i}"), cohort=cohorts[i % len(cohorts)]
        )
    return topology, producer, consumer


class TestProducer:
    def test_submissions_land_on_the_cohort_stream_in_sequence(self, clock):
        topology, producer, _ = make_plane(clock, n_sessions=2)
        for _ in range(3):
            for session in producer.sessions:
                assert producer.submit(session.session_id) == "queued"
            clock.advance(0.1)
        entries = topology.cohort_stream("a").range()
        assert len(entries) == 6
        by_session = {}
        for entry in entries:
            by_session.setdefault(entry.payload.session_id, []).append(
                entry.payload.sequence
            )
        assert by_session == {"s0": [0, 1, 2], "s1": [0, 1, 2]}

    def test_trace_sessions_mirrors_submissions(self, clock):
        topology = StreamTopology(clock=clock)
        producer = StreamFleetProducer(
            topology,
            scheduler_config=SchedulerConfig(deadline_s=0.05),
            clock=clock,
            trace_sessions=True,
        )
        producer.add_session(ScriptedSession("s0"), cohort="a")
        producer.submit("s0")
        assert len(topology.cohort_stream("a")) == 1
        assert len(topology.session_stream("a", "s0")) == 1

    def test_conservation_applied_plus_superseded_equals_submitted(self, clock):
        topology, producer, consumer = make_plane(clock, n_sessions=3)
        for round_idx in range(10):
            for session in producer.sessions:
                producer.submit(session.session_id)
            # Only poll every other round: skipped rounds leave stale
            # windows behind that the next round supersedes.
            if round_idx % 2:
                consumer.poll()
                clock.advance(0.05)
                consumer.pump()
            else:
                clock.advance(0.05)
        consumer.poll()
        consumer.drain()
        producer.harvest_results()
        assert producer.submitted == 30
        assert producer.labels_applied + producer.superseded_count == 30
        assert producer.superseded_count > 0  # the scenario actually bit
        applied = sum(len(s.applied) for s in producer.sessions)
        assert applied == producer.labels_applied
        # and the group is fully acked: nothing pending, nothing undelivered
        assert topology.cohort_stream("a").depth(SCHEDULER_GROUP) == 0

    def test_lag_budget_sheds_when_consumers_fall_behind(self, clock):
        topology, producer, consumer = make_plane(
            clock, n_sessions=1, stream_lag_budget_s=0.2
        )
        outcomes = []
        for _ in range(10):  # no consumer polling: lag grows unbounded
            outcomes.append(producer.submit("s0"))
            clock.advance(0.1)
        assert "shed" in outcomes
        assert producer.admission.shedding
        assert producer.admission.activations == 1
        # consumer catches up -> lag recovers -> admission resumes
        consumer.poll()
        consumer.drain()
        producer.harvest_results()
        producer.submit("s0")
        assert not producer.admission.shedding

    def test_departed_session_rows_are_dropped_on_harvest(self, clock):
        topology, producer, consumer = make_plane(clock, n_sessions=2)
        for session in producer.sessions:
            producer.submit(session.session_id)
        consumer.poll()
        departed = producer.remove_session("s0")
        clock.advance(0.05)
        consumer.pump()
        producer.harvest_results()
        assert len(departed.applied) == 0
        assert len(producer.get_session("s1").applied) == 1
        # conservation counts the departed row as applied-to-nobody
        assert producer.labels_applied == 1

    def test_report_aggregates_stream_fields(self, clock):
        topology, producer, consumer = make_plane(clock, n_sessions=2)
        for session in producer.sessions:
            producer.submit(session.session_id)
        clock.advance(0.05)
        consumer.poll()
        consumer.pump()
        producer.harvest_results()
        report = producer.report()
        assert report.fleet["total_labels"] == 2.0
        assert report.fleet["stream_lag_s"] >= 0.0
        assert report.fleet["max_stream_depth"] == 2.0
        assert "a" in report.cohorts
        assert report.cohorts["a"]["max_stream_lag_s"] >= 0.0
        # worker attribution is per scheduler process + lane
        assert list(report.workers) == ["consumer-0/serial"]


class TestDuplex:
    def test_simulated_load_drives_the_duplex_like_a_scheduler(self, clock):
        duplex = StreamDuplex(
            {"a": ClockedStubClassifier(clock, base_latency_s=0.001)},
            scheduler_config=SchedulerConfig(deadline_s=0.05, max_batch_size=8),
            clock=clock,
        )
        for i in range(4):
            duplex.add_session(ScriptedSession(f"s{i}"), cohort="a")
        load = SimulatedLoad(duplex, clock, period_s=0.1)
        load.run(3.0)
        assert load.outcomes["queued"] + load.outcomes["flushed"] > 0
        report = duplex.report()
        assert report.fleet["total_labels"] == float(duplex.producer.submitted)
        assert report.fleet["deadline_violations"] == 0.0
        applied = sum(len(s.applied) for s in duplex.sessions)
        assert applied == duplex.producer.submitted

    def test_full_batch_submission_reports_flushed(self, clock):
        duplex = StreamDuplex(
            {"a": ClockedStubClassifier(clock)},
            scheduler_config=SchedulerConfig(deadline_s=0.05, max_batch_size=2),
            clock=clock,
        )
        duplex.add_session(ScriptedSession("s0"), cohort="a")
        duplex.add_session(ScriptedSession("s1"), cohort="a")
        assert duplex.submit("s0") == "queued"
        assert duplex.submit("s1") == "flushed"
        assert duplex.last_flush_event.reason == "full"
        assert duplex.last_flush_event.batch_size == 2

    def test_unroutable_cohort_is_refused(self, clock):
        duplex = StreamDuplex(
            {"a": ClockedStubClassifier(clock)},
            clock=clock,
        )
        with pytest.raises(KeyError, match="unknown cohort"):
            duplex.add_session(ScriptedSession("s0"), cohort="nope")

    def test_duplex_matches_direct_scheduler_row_for_row(self, clock):
        """The stream plane must not change *what* is computed, only how it
        travels: same sessions, same arrivals, same classifier => the same
        probability rows in the same flush grouping."""
        config = SchedulerConfig(deadline_s=0.05, max_batch_size=8)

        def run(factory):
            local_clock = FakeClock()
            target = factory(local_clock, config)
            for i in range(4):
                target.add_session(
                    ScriptedSession(f"s{i}", seed=i), cohort="a"
                )
            SimulatedLoad(target, local_clock, period_s=0.1).run(3.0)
            return {
                s.session_id: [probs for probs, _ in s.applied]
                for s in target.sessions
            }

        direct = run(
            lambda clk, cfg: AsyncFleetScheduler(
                {"a": ClockedStubClassifier(clk, base_latency_s=0.001)},
                scheduler_config=cfg,
                clock=clk,
            )
        )
        streamed = run(
            lambda clk, cfg: StreamDuplex(
                {"a": ClockedStubClassifier(clk, base_latency_s=0.001)},
                scheduler_config=cfg,
                clock=clk,
            )
        )
        assert direct.keys() == streamed.keys()
        for session_id in direct:
            assert len(direct[session_id]) == len(streamed[session_id])
            for left, right in zip(direct[session_id], streamed[session_id]):
                np.testing.assert_allclose(left, right, atol=1e-12)
