"""Allocation-aware profiling of the serving engine (deployment.profiler)."""

import numpy as np

from repro.deployment.profiler import profile_classifier
from repro.models.lstm_model import EEGLSTM, LSTMConfig
from repro.models.random_forest import RandomForestClassifier, RandomForestConfig
from tests.helpers import make_toy_dataset


def _built_lstm(hidden=48):
    classifier = EEGLSTM(LSTMConfig(hidden_size=hidden), seed=0)
    classifier.ensure_network(4, 50)
    return classifier


def _windows(n=8):
    return np.random.default_rng(0).standard_normal((n, 4, 50)).astype(np.float32)


class TestAllocationProfile:
    def test_generic_plan_reports_allocations(self):
        profile = profile_classifier(_built_lstm(), _windows(), repeats=3)
        assert profile.engine == "compiled"
        assert profile.alloc_peak_bytes is not None
        assert profile.alloc_peak_bytes > 0
        assert profile.plan_scratch_bytes == 0
        assert profile.specialized_hit_rate == 0.0

    def test_specialized_profile_collapses_plan_allocations(self):
        windows = _windows()
        generic = profile_classifier(_built_lstm(), windows, repeats=3)
        specialized = profile_classifier(
            _built_lstm(), windows, repeats=3, specialize=True
        )
        # The plan's intermediates no longer allocate: the transient peak
        # drops and the arena accounts for the scratch instead.
        assert specialized.alloc_peak_bytes < generic.alloc_peak_bytes
        assert specialized.plan_scratch_bytes > 0
        assert specialized.specialized_hit_rate > 0.0

    def test_allocations_can_be_skipped(self):
        profile = profile_classifier(
            _built_lstm(), _windows(), repeats=3, include_allocations=False
        )
        assert profile.alloc_peak_bytes is None
        assert profile.alloc_net_blocks is None

    def test_non_neural_classifier_profiles_without_plan_fields(self):
        train = make_toy_dataset(n_per_class=8, n_channels=4, window_size=50)
        classifier = RandomForestClassifier(
            RandomForestConfig(n_estimators=3), seed=0
        )
        classifier.fit(train)
        profile = profile_classifier(classifier, _windows(4), repeats=2)
        assert profile.engine == "autograd"
        assert profile.plan_scratch_bytes is None
        assert profile.specialized_hit_rate is None
        assert profile.alloc_peak_bytes is not None

    def test_compiled_speedup_still_reported(self):
        profile = profile_classifier(
            _built_lstm(), _windows(2), repeats=2, include_autograd=True
        )
        assert profile.compiled_speedup is not None
        assert profile.compiled_speedup > 0
