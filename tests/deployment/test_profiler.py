"""Allocation-aware profiling of the serving engine (deployment.profiler)."""

import numpy as np

from repro.deployment.profiler import profile_classifier
from repro.models.lstm_model import EEGLSTM, LSTMConfig
from repro.models.random_forest import RandomForestClassifier, RandomForestConfig
from tests.helpers import make_toy_dataset


def _built_lstm(hidden=48):
    classifier = EEGLSTM(LSTMConfig(hidden_size=hidden), seed=0)
    classifier.ensure_network(4, 50)
    return classifier


def _windows(n=8):
    return np.random.default_rng(0).standard_normal((n, 4, 50)).astype(np.float32)


class TestAllocationProfile:
    def test_generic_plan_reports_allocations(self):
        profile = profile_classifier(_built_lstm(), _windows(), repeats=3)
        assert profile.engine == "compiled"
        assert profile.alloc_peak_bytes is not None
        assert profile.alloc_peak_bytes > 0
        assert profile.plan_scratch_bytes == 0
        assert profile.specialized_hit_rate == 0.0

    def test_specialized_profile_collapses_plan_allocations(self):
        windows = _windows()
        generic = profile_classifier(_built_lstm(), windows, repeats=3)
        specialized = profile_classifier(
            _built_lstm(), windows, repeats=3, specialize=True
        )
        # The plan's intermediates no longer allocate: the transient peak
        # drops and the arena accounts for the scratch instead.
        assert specialized.alloc_peak_bytes < generic.alloc_peak_bytes
        assert specialized.plan_scratch_bytes > 0
        assert specialized.specialized_hit_rate > 0.0

    def test_allocations_can_be_skipped(self):
        profile = profile_classifier(
            _built_lstm(), _windows(), repeats=3, include_allocations=False
        )
        assert profile.alloc_peak_bytes is None
        assert profile.alloc_net_blocks is None

    def test_non_neural_classifier_profiles_without_plan_fields(self):
        train = make_toy_dataset(n_per_class=8, n_channels=4, window_size=50)
        classifier = RandomForestClassifier(
            RandomForestConfig(n_estimators=3), seed=0
        )
        classifier.fit(train)
        profile = profile_classifier(classifier, _windows(4), repeats=2)
        assert profile.engine == "autograd"
        assert profile.plan_scratch_bytes is None
        assert profile.specialized_hit_rate is None
        assert profile.alloc_peak_bytes is not None

    def test_compiled_speedup_still_reported(self):
        profile = profile_classifier(
            _built_lstm(), _windows(2), repeats=2, include_autograd=True
        )
        assert profile.compiled_speedup is not None
        assert profile.compiled_speedup > 0


class TestKernelVariantReporting:
    def _block_pruned_lstm(self, mode="always"):
        from repro.compression.pruning import prune_classifier_inplace
        from repro.nn.inference import SparsityConfig

        classifier = EEGLSTM(LSTMConfig(hidden_size=32), seed=1)
        classifier.ensure_network(8, 50)
        prune_classifier_inplace(classifier, 0.9, tile=(8, 8))
        classifier.plan_sparsity = SparsityConfig(mode=mode, min_size=0)
        return classifier

    @staticmethod
    def _windows8(n=4):
        return (
            np.random.default_rng(3).standard_normal((n, 8, 50)).astype(np.float32)
        )

    def test_dense_plan_reports_dense_variants(self):
        profile = profile_classifier(_built_lstm(), _windows(4), repeats=2)
        assert profile.kernel_variants
        assert all(v.endswith("=dense") for v in profile.kernel_variants)

    def test_block_pruned_plan_reports_block_variants(self):
        profile = profile_classifier(
            self._block_pruned_lstm(), self._windows8(), repeats=2
        )
        # hidden 32 → the (32, 128) recurrent projection carries (16, 1) tiles
        assert any("block" in v for v in profile.kernel_variants)
        every_op = {v.split("[")[0] for v in profile.kernel_variants}
        assert {"lstm-ih", "lstm-hh", "dense"} <= every_op

    def test_pinned_mode_reports_no_autotune_counts(self):
        profile = profile_classifier(
            self._block_pruned_lstm(), self._windows8(), repeats=2
        )
        # mode="always" pins the lowering: nothing was calibrated, so
        # hit/miss counters stay None rather than lying with zeros.
        assert profile.autotune_hits is None
        assert profile.autotune_misses is None

    def test_auto_mode_counts_misses_then_hits(self, tmp_path, monkeypatch):
        from repro.nn import autotune
        from repro.nn.autotune import AutotuneCache, set_default_cache

        monkeypatch.setattr(
            autotune, "median_call_time_s", lambda call, repeats=5: (call(), 1e-4)[1]
        )
        cache = AutotuneCache(path=str(tmp_path / "autotune.json"))
        previous = set_default_cache(cache)
        try:
            cold = profile_classifier(
                self._block_pruned_lstm(mode="auto"), self._windows8(), repeats=2
            )
            assert cold.autotune_misses and cold.autotune_hits == 0
            warm = profile_classifier(
                self._block_pruned_lstm(mode="auto"), self._windows8(), repeats=2
            )
            assert warm.autotune_misses == 0
            assert warm.autotune_hits == cold.autotune_misses
        finally:
            set_default_cache(previous)

    def test_autograd_served_classifier_reports_no_variants(self):
        train = make_toy_dataset(n_per_class=8, n_channels=4, window_size=50)
        classifier = RandomForestClassifier(
            RandomForestConfig(n_estimators=3), seed=0
        )
        classifier.fit(train)
        profile = profile_classifier(classifier, _windows(4), repeats=2)
        assert profile.kernel_variants == []
        assert profile.autotune_hits is None
        assert profile.variant_timings == []


class TestVariantTimingTable:
    def _calibrated_profile(self, tmp_path, monkeypatch, repeats=2):
        from repro.nn import autotune
        from repro.nn.autotune import AutotuneCache, set_default_cache

        monkeypatch.setattr(
            autotune, "median_call_time_s", lambda call, repeats=5: (call(), 1e-4)[1]
        )
        cache = AutotuneCache(path=str(tmp_path / "autotune.json"))
        previous = set_default_cache(cache)
        try:
            classifier = TestKernelVariantReporting()._block_pruned_lstm(mode="auto")
            return profile_classifier(
                classifier, TestKernelVariantReporting._windows8(), repeats=repeats
            )
        finally:
            set_default_cache(previous)

    def test_table_lists_every_raced_candidate(self, tmp_path, monkeypatch):
        profile = self._calibrated_profile(tmp_path, monkeypatch)
        assert profile.variant_timings
        raced = {row["variant"] for row in profile.variant_timings}
        # The calibrator raced the BLAS baseline, the elementwise gather,
        # and at least one block layout — losers included.
        assert "dense" in raced and "ell" in raced
        assert any(v.startswith("block") for v in raced)
        # Calibrated decisions carry measurements; matmuls the compiler kept
        # dense without racing (below the sparsity threshold) appear as a
        # single winner row with no microseconds.
        calibrated = [r for r in profile.variant_timings if r["cached"] is False]
        assert calibrated
        for row in calibrated:
            assert row["us"] is not None and row["us"] > 0

    def test_exactly_one_winner_per_matmul(self, tmp_path, monkeypatch):
        profile = self._calibrated_profile(tmp_path, monkeypatch)
        by_op = {}
        for row in profile.variant_timings:
            key = (row["op"], tuple(row["shape"]))
            by_op.setdefault(key, []).append(row)
        for key, rows in by_op.items():
            assert sum(row["chosen"] for row in rows) == 1, key

    def test_tile_column_decodes_block_geometry(self, tmp_path, monkeypatch):
        from repro.deployment.profiler import _variant_tile

        assert _variant_tile("dense") == "-"
        assert _variant_tile("ell") == "-"
        assert _variant_tile("block8x8") == "8x8"
        assert _variant_tile("block16x1g4") == "16x1g4"
        profile = self._calibrated_profile(tmp_path, monkeypatch)
        block_rows = [
            row for row in profile.variant_timings
            if row["variant"].startswith("block")
        ]
        assert block_rows
        for row in block_rows:
            assert row["tile"] == row["variant"][len("block"):]

    def test_pinned_plan_reports_winner_rows_without_timings(self):
        classifier = TestKernelVariantReporting()._block_pruned_lstm(mode="always")
        profile = profile_classifier(
            classifier, TestKernelVariantReporting._windows8(), repeats=2
        )
        assert profile.variant_timings
        # Pinned lowering never timed anything: one row per matmul, the
        # winner only, with no microsecond column to lie about.
        assert all(row["chosen"] for row in profile.variant_timings)
        assert all(row["us"] is None for row in profile.variant_timings)
