"""Tests for the edge-device model and the classifier profiler."""

import numpy as np
import pytest

from repro.deployment.edge_device import (
    JETSON_ORIN_NANO,
    RTX_A6000,
    DeviceSpec,
    EdgeDeviceModel,
)
from repro.deployment.profiler import profile_classifier
from repro.models.base import TrainingConfig
from repro.models.cnn import CNNConfig, EEGCNN
from tests.helpers import make_toy_dataset


class TestEdgeDeviceModel:
    @pytest.fixture()
    def device(self):
        return EdgeDeviceModel(JETSON_ORIN_NANO)

    def test_latency_grows_with_parameters(self, device):
        small = device.estimate(10_000)
        large = device.estimate(10_000_000)
        assert large.latency_s > small.latency_s

    def test_int8_is_faster_than_float32(self, device):
        comparison = device.compare_precisions(5_000_000)
        assert comparison["int8"].latency_s < comparison["float32"].latency_s

    def test_pruning_reduces_estimated_latency(self, device):
        dense = device.estimate(1_000_000)
        pruned = device.estimate(300_000)  # 70 % pruned
        assert pruned.latency_s < dense.latency_s

    def test_memory_check_detects_oversized_models(self, device):
        tiny = device.estimate(10_000)
        giant = device.estimate(4_000_000_000)
        assert tiny.fits_in_memory
        assert not giant.fits_in_memory

    def test_realtime_rate_check(self, device):
        estimate = device.estimate(100_000)
        assert estimate.meets_realtime(15.0) == (estimate.meets_rate_hz >= 15.0)

    def test_workstation_is_faster_than_jetson(self):
        jetson = EdgeDeviceModel(JETSON_ORIN_NANO).estimate(5_000_000)
        workstation = EdgeDeviceModel(RTX_A6000).estimate(5_000_000)
        assert workstation.latency_s < jetson.latency_s

    def test_energy_positive_and_scales_with_latency(self, device):
        small = device.estimate(10_000)
        large = device.estimate(50_000_000)
        assert 0 < small.energy_mj < large.energy_mj

    def test_invalid_arguments_rejected(self, device):
        with pytest.raises(ValueError):
            device.estimate(-1)
        with pytest.raises(ValueError):
            device.estimate(100, bits_per_weight=12)
        with pytest.raises(ValueError):
            device.estimate(100, utilisation=0.0)

    def test_paper_scale_ensemble_latency_order_of_magnitude(self, device):
        """A ~1M-parameter CNN+Transformer ensemble should land near the
        paper's reported 0.075 s on the Jetson-class device model."""
        estimate = device.estimate(1_200_000, bits_per_weight=32)
        assert 0.005 < estimate.latency_s < 0.5


class TestProfiler:
    def test_profile_reports_measured_and_estimated_latency(self):
        dataset = make_toy_dataset(n_per_class=8, window_size=40)
        model = EEGCNN(
            CNNConfig(filters=(4,), kernel_size=3, stride=2, hidden_units=8),
            training=TrainingConfig(epochs=1, batch_size=16),
        )
        model.fit(dataset)
        profile = profile_classifier(model, dataset.windows[:4], repeats=2)
        assert profile.model_family == "cnn"
        assert profile.measured_latency_s > 0
        assert profile.effective_parameters <= profile.parameters
        assert profile.throughput_hz > 0
        assert profile.estimated.latency_s > 0
