"""Tests for spectral quality metrics."""

import numpy as np
import pytest

from repro.signals.quality import (
    EEG_BANDS,
    band_power,
    line_noise_power,
    power_spectral_density,
    relative_band_power,
    signal_to_noise_ratio,
)

FS = 125.0


def _tone(freq_hz, duration_s=4.0, fs=FS, amplitude=1.0):
    t = np.arange(int(duration_s * fs)) / fs
    return amplitude * np.sin(2 * np.pi * freq_hz * t)


class TestPSD:
    def test_peak_at_tone_frequency(self):
        freqs, psd = power_spectral_density(_tone(10.0), FS)
        assert abs(freqs[np.argmax(psd)] - 10.0) < 1.0

    def test_2d_input_returns_per_channel_psd(self):
        data = np.vstack([_tone(10.0), _tone(20.0)])
        freqs, psd = power_spectral_density(data, FS)
        assert psd.shape == (2, freqs.shape[0])

    def test_short_signal_does_not_crash(self):
        freqs, psd = power_spectral_density(np.ones(32), FS)
        assert freqs.shape == psd.shape


class TestBandPower:
    def test_tone_power_concentrated_in_band(self):
        x = _tone(10.0)
        in_band = band_power(x, (8, 12), FS)
        out_band = band_power(x, (20, 40), FS)
        assert in_band > 50 * out_band

    def test_invalid_band_raises(self):
        with pytest.raises(ValueError):
            band_power(_tone(10.0), (12.0, 8.0), FS)

    def test_band_outside_spectrum_returns_zero(self):
        x = _tone(10.0, duration_s=1.0)
        assert band_power(x, (60.0, 62.0), FS) == pytest.approx(0.0)

    def test_relative_band_power_sums_close_to_one(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(1000)
        rel = relative_band_power(x, FS)
        assert set(rel) == set(EEG_BANDS)
        total = sum(float(v) for v in rel.values())
        assert 0.8 <= total <= 1.1


class TestSNR:
    def test_clean_in_band_signal_has_high_snr(self):
        clean = _tone(10.0)
        assert signal_to_noise_ratio(clean, (0.5, 45.0), FS) > 10.0

    def test_out_of_band_noise_lowers_snr(self):
        clean = _tone(10.0)
        noisy = clean + _tone(55.0, amplitude=3.0)
        assert signal_to_noise_ratio(noisy, (0.5, 45.0), FS) < signal_to_noise_ratio(
            clean, (0.5, 45.0), FS
        )

    def test_line_noise_power_detects_50hz(self):
        with_line = _tone(10.0) + _tone(50.0, amplitude=2.0)
        without_line = _tone(10.0)
        assert line_noise_power(with_line, 50.0, 1.0, FS) > 10 * line_noise_power(
            without_line, 50.0, 1.0, FS
        )
