"""Tests for the synthetic EEG generator."""

import numpy as np
import pytest

from repro.signals.montage import Montage
from repro.signals.quality import band_power
from repro.signals.synthetic import (
    ACTION_IDLE,
    ACTION_LEFT,
    ACTION_RIGHT,
    ParticipantProfile,
    SyntheticEEGGenerator,
)


@pytest.fixture()
def generator():
    profile = ParticipantProfile(participant_id="P01", seed=42)
    return SyntheticEEGGenerator(profile)


class TestGeneration:
    def test_output_shape_matches_duration(self, generator):
        data = generator.generate(2.0, ACTION_IDLE)
        assert data.shape == (16, 250)

    def test_unknown_action_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.generate(1.0, "jump")

    def test_zero_duration_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.generate(0.0, ACTION_IDLE)

    def test_output_is_finite(self, generator):
        data = generator.generate(4.0, ACTION_RIGHT)
        assert np.isfinite(data).all()

    def test_amplitude_in_physiological_range(self, generator):
        data = generator.generate(4.0, ACTION_IDLE)
        # EEG plus artifacts should live within roughly +-300 microvolts.
        assert np.abs(data).max() < 300.0

    def test_trial_concatenates_task_and_rest(self, generator):
        data, labels = generator.generate_trial(ACTION_LEFT, 2.0, 3.0)
        assert data.shape[1] == labels.shape[0] == 625
        assert (labels[:250] == ACTION_LEFT).all()
        assert (labels[250:] == ACTION_IDLE).all()


class TestERDLateralisation:
    """Right-hand imagery suppresses mu power over C3; left over C4."""

    @staticmethod
    def _mu_power(generator, action, channel, n_trials=6, duration=4.0):
        montage = generator.montage
        idx = montage.index_of(channel)
        powers = []
        for _ in range(n_trials):
            data = generator.generate(duration, action)
            powers.append(band_power(data[idx], (8.0, 13.0), generator.sampling_rate_hz))
        return float(np.mean(powers))

    def test_right_imagery_suppresses_c3(self, generator):
        idle = self._mu_power(generator, ACTION_IDLE, "C3")
        right = self._mu_power(generator, ACTION_RIGHT, "C3")
        assert right < idle

    def test_left_imagery_suppresses_c4(self, generator):
        idle = self._mu_power(generator, ACTION_IDLE, "C4")
        left = self._mu_power(generator, ACTION_LEFT, "C4")
        assert left < idle

    def test_lateralisation_index_discriminates_left_right(self, generator):
        c3 = generator.montage.index_of("C3")
        c4 = generator.montage.index_of("C4")

        def lateralisation(action):
            vals = []
            for _ in range(6):
                data = generator.generate(4.0, action)
                p3 = band_power(data[c3], (8.0, 30.0), 125.0)
                p4 = band_power(data[c4], (8.0, 30.0), 125.0)
                vals.append((p4 - p3) / (p4 + p3))
            return float(np.mean(vals))

        assert lateralisation(ACTION_RIGHT) > lateralisation(ACTION_LEFT)


class TestCohort:
    def test_cohort_size_and_unique_ids(self):
        cohort = ParticipantProfile.cohort(5)
        assert len(cohort) == 5
        assert len({p.participant_id for p in cohort}) == 5

    def test_cohort_profiles_differ(self):
        cohort = ParticipantProfile.cohort(5)
        depths = {p.rhythms.erd_depth for p in cohort}
        assert len(depths) > 1

    def test_cohort_is_deterministic_for_seed(self):
        a = ParticipantProfile.cohort(3, base_seed=7)
        b = ParticipantProfile.cohort(3, base_seed=7)
        assert [p.rhythms.mu_freq_hz for p in a] == [p.rhythms.mu_freq_hz for p in b]

    def test_generator_respects_custom_montage(self):
        montage = Montage(channels=("C3", "C4", "FP1", "O1"))
        profile = ParticipantProfile(participant_id="X", seed=1)
        gen = SyntheticEEGGenerator(profile, montage)
        assert gen.generate(1.0).shape[0] == 4
