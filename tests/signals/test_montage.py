"""Tests for the 10-20 montage model."""

import math

import pytest

from repro.signals.montage import (
    CHANNEL_NAMES_16,
    MOTOR_CHANNELS,
    Montage,
    standard_1020_positions,
)


class TestStandardPositions:
    def test_returns_all_requested_channels(self):
        positions = standard_1020_positions()
        assert set(positions) == set(CHANNEL_NAMES_16)

    def test_positions_lie_on_head_sphere(self):
        radius = 9.0
        positions = standard_1020_positions(head_radius_cm=radius)
        for x, y, z in positions.values():
            assert math.isclose(math.sqrt(x * x + y * y + z * z), radius, rel_tol=1e-9)

    def test_unknown_channel_raises(self):
        with pytest.raises(KeyError):
            standard_1020_positions(["XX9"])

    def test_custom_radius_scales_coordinates(self):
        small = standard_1020_positions(["C3"], head_radius_cm=1.0)["C3"]
        large = standard_1020_positions(["C3"], head_radius_cm=2.0)["C3"]
        assert all(math.isclose(2 * s, l, rel_tol=1e-9) for s, l in zip(small, large))


class TestMontage:
    def test_default_montage_has_16_channels(self):
        assert Montage().n_channels == 16

    def test_index_of_is_case_insensitive(self):
        montage = Montage()
        assert montage.index_of("c3") == montage.index_of("C3")

    def test_index_of_unknown_channel_raises(self):
        with pytest.raises(KeyError):
            Montage().index_of("CZ")  # CZ is not among the 16 recorded sites

    def test_indices_of_preserves_order(self):
        montage = Montage()
        idx = montage.indices_of(["C4", "C3"])
        assert idx == [montage.index_of("C4"), montage.index_of("C3")]

    def test_duplicate_channels_rejected(self):
        with pytest.raises(ValueError):
            Montage(channels=("C3", "c3"))

    def test_motor_channels_are_lateralised(self):
        montage = Montage()
        # C3 is on the left (negative x), C4 on the right (positive x).
        assert montage.laterality("C3") < 0 < montage.laterality("C4")

    def test_distance_is_symmetric_and_zero_on_diagonal(self):
        montage = Montage()
        assert montage.distance_cm("C3", "C4") == pytest.approx(
            montage.distance_cm("C4", "C3")
        )
        assert montage.distance_cm("C3", "C3") == pytest.approx(0.0)

    def test_motor_indices_cover_both_hemispheres(self):
        montage = Montage()
        names = [montage.channels[i] for i in montage.motor_indices()]
        assert set(names) == set(MOTOR_CHANNELS)

    def test_frontal_indices_include_fp_channels(self):
        montage = Montage()
        frontal_names = {montage.channels[i] for i in montage.frontal_indices()}
        assert {"FP1", "FP2"} <= frontal_names

    def test_temporal_indices_only_t_channels(self):
        montage = Montage()
        names = {montage.channels[i] for i in montage.temporal_indices()}
        assert names == {"T7", "T8"}
