"""Tests for the preprocessing filter chain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signals.filters import (
    FilterSettings,
    PreprocessingPipeline,
    bandpass_butterworth,
    notch_filter,
    remove_artifacts,
)
from repro.signals.quality import band_power, line_noise_power

FS = 125.0


def _tone(freq_hz, duration_s=4.0, fs=FS, amplitude=1.0):
    t = np.arange(int(duration_s * fs)) / fs
    return amplitude * np.sin(2 * np.pi * freq_hz * t)


class TestBandpass:
    def test_passband_tone_preserved(self):
        x = _tone(10.0)
        y = bandpass_butterworth(x, FS)
        assert band_power(y, (8, 12), FS) > 0.5 * band_power(x, (8, 12), FS)

    def test_dc_drift_removed(self):
        x = _tone(10.0) + 50.0
        y = bandpass_butterworth(x, FS)
        assert abs(np.mean(y)) < 1.0

    def test_high_frequency_attenuated(self):
        x = _tone(55.0)
        y = bandpass_butterworth(x, FS)
        assert np.std(y) < 0.1 * np.std(x)

    def test_invalid_band_raises(self):
        with pytest.raises(ValueError):
            bandpass_butterworth(_tone(10.0), FS, low_hz=40.0, high_hz=10.0)

    def test_high_above_nyquist_raises(self):
        with pytest.raises(ValueError):
            bandpass_butterworth(_tone(10.0), FS, high_hz=70.0)

    def test_2d_input_filters_each_channel(self):
        x = np.vstack([_tone(10.0), _tone(55.0)])
        y = bandpass_butterworth(x, FS)
        assert y.shape == x.shape
        assert np.std(y[0]) > 5 * np.std(y[1])

    def test_3d_input_rejected(self):
        with pytest.raises(ValueError):
            bandpass_butterworth(np.zeros((2, 2, 2)), FS)


class TestNotch:
    def test_line_noise_removed(self):
        clean = _tone(10.0)
        noisy = clean + _tone(50.0, amplitude=2.0)
        filtered = notch_filter(noisy, FS)
        assert line_noise_power(filtered, 50.0, 1.0, FS) < 0.05 * line_noise_power(
            noisy, 50.0, 1.0, FS
        )

    def test_neighbouring_frequencies_preserved(self):
        x = _tone(10.0)
        y = notch_filter(x, FS)
        assert band_power(y, (8, 12), FS) > 0.8 * band_power(x, (8, 12), FS)

    def test_notch_at_nyquist_raises(self):
        with pytest.raises(ValueError):
            notch_filter(_tone(10.0), FS, notch_hz=70.0)

    def test_negative_notch_raises(self):
        with pytest.raises(ValueError):
            notch_filter(_tone(10.0), FS, notch_hz=-1.0)


class TestArtifactRemoval:
    def test_blink_spike_suppressed(self):
        x = _tone(10.0, amplitude=5.0)
        x[200:220] += 150.0
        cleaned = remove_artifacts(x, FS, amplitude_threshold_uv=60.0)
        assert np.abs(cleaned[200:220]).max() < 80.0

    def test_clean_signal_untouched(self):
        x = _tone(10.0, amplitude=5.0)
        cleaned = remove_artifacts(x, FS, amplitude_threshold_uv=60.0)
        np.testing.assert_allclose(cleaned, x)

    def test_multichannel_independent_cleaning(self):
        a = _tone(10.0, amplitude=5.0)
        b = a.copy()
        b[100] = 500.0
        cleaned = remove_artifacts(np.vstack([a, b]), FS)
        np.testing.assert_allclose(cleaned[0], a)
        assert abs(cleaned[1, 100]) < 60.0


class TestPipeline:
    def test_full_chain_improves_line_noise(self):
        x = _tone(10.0, amplitude=8.0) + _tone(50.0, amplitude=5.0) + 30.0
        pipeline = PreprocessingPipeline()
        y = pipeline(x[None, :])
        assert line_noise_power(y[0], 50.0, 1.0, FS) < 0.1 * line_noise_power(
            x, 50.0, 1.0, FS
        )

    def test_minimum_samples_positive(self):
        assert PreprocessingPipeline().minimum_samples() > 0

    def test_artifact_stage_can_be_disabled(self):
        settings_obj = FilterSettings(remove_artifacts=False)
        pipeline = PreprocessingPipeline(settings_obj)
        x = _tone(10.0, amplitude=5.0)[None, :]
        assert pipeline(x).shape == x.shape

    @settings(max_examples=20, deadline=None)
    @given(
        freq=st.floats(min_value=2.0, max_value=40.0),
        amplitude=st.floats(min_value=0.5, max_value=50.0),
    )
    def test_property_output_finite_and_bounded(self, freq, amplitude):
        """Filtering any in-band tone yields finite output of comparable scale."""
        x = _tone(freq, amplitude=amplitude)
        y = PreprocessingPipeline()(x[None, :])
        assert np.isfinite(y).all()
        assert np.abs(y).max() <= 3.0 * amplitude + 1.0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_filtering_is_deterministic(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((4, 500))
        p = PreprocessingPipeline()
        np.testing.assert_allclose(p(x), p(x))
