"""Tests for synthetic command audio and voice activity detection."""

import numpy as np
import pytest

from repro.asr.audio import DISTRACTORS, KEYWORDS, CommandAudioGenerator
from repro.asr.vad import VADConfig, VoiceActivityDetector


class TestCommandAudioGenerator:
    @pytest.fixture()
    def generator(self):
        return CommandAudioGenerator(seed=0)

    def test_utterance_length_matches_duration(self, generator):
        waveform = generator.utterance("arm")
        assert waveform.shape[0] == int(0.6 * 16000)

    def test_unknown_word_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.utterance("banana")

    def test_silence_is_quiet(self, generator):
        silence = generator.utterance("silence")
        speech = generator.utterance("fingers")
        assert np.mean(silence**2) < 0.2 * np.mean(speech**2)

    def test_different_words_differ_spectrally(self, generator):
        a = np.abs(np.fft.rfft(generator.utterance("arm")))
        b = np.abs(np.fft.rfft(generator.utterance("fingers")))
        correlation = np.corrcoef(a, b)[0, 1]
        assert correlation < 0.95

    def test_labelled_dataset_balanced(self, generator):
        waveforms, labels = generator.labelled_dataset(n_per_word=5)
        assert len(waveforms) == len(labels) == 5 * (len(KEYWORDS) + len(DISTRACTORS))
        for word in KEYWORDS:
            assert labels.count(word) == 5

    def test_stream_embeds_commands_at_schedule(self, generator):
        stream = generator.stream_with_commands([(1.0, "arm"), (3.0, "elbow")], 5.0)
        assert stream.shape[0] == 5 * 16000
        command_region = stream[int(1.0 * 16000) : int(1.4 * 16000)]
        quiet_region = stream[:int(0.5 * 16000)]
        assert np.mean(command_region**2) > 2.0 * np.mean(quiet_region**2)

    def test_stream_command_outside_duration_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.stream_with_commands([(10.0, "arm")], 5.0)


class TestVADConfig:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            VADConfig(frame_duration_s=0.0)
        with pytest.raises(ValueError):
            VADConfig(energy_threshold=0.5)
        with pytest.raises(ValueError):
            VADConfig(hangover_frames=-1)
        with pytest.raises(ValueError):
            VADConfig(noise_adaptation=1.5)


class TestVoiceActivityDetector:
    @pytest.fixture()
    def generator(self):
        return CommandAudioGenerator(seed=1)

    @pytest.fixture()
    def vad(self):
        return VoiceActivityDetector()

    def test_detects_speech_segment(self, generator, vad):
        stream = generator.stream_with_commands([(1.0, "arm")], 3.0)
        segments = vad.voiced_segments(stream)
        assert segments
        assert any(start <= 1.05 <= end + 0.2 for start, end in segments)

    def test_pure_noise_mostly_unvoiced(self, generator, vad):
        rng = np.random.default_rng(2)
        noise = 0.05 * rng.standard_normal(3 * 16000)
        assert vad.activity_fraction(noise) < 0.3

    def test_activity_fraction_increases_with_speech_density(self, generator, vad):
        sparse = generator.stream_with_commands([(1.0, "arm")], 6.0)
        dense = generator.stream_with_commands(
            [(0.5, "arm"), (1.5, "elbow"), (2.5, "fingers"), (3.5, "arm"), (4.5, "elbow")], 6.0
        )
        assert vad.activity_fraction(dense) > vad.activity_fraction(sparse)

    def test_empty_audio_returns_empty_decisions(self, vad):
        assert vad.detect_frames(np.zeros(10)).size == 0
        assert vad.activity_fraction(np.zeros(10)) == 0.0

    def test_hangover_extends_activity(self, generator):
        stream = generator.stream_with_commands([(0.5, "arm")], 2.0)
        short = VoiceActivityDetector(VADConfig(hangover_frames=0))
        long = VoiceActivityDetector(VADConfig(hangover_frames=10))
        assert long.activity_fraction(stream) >= short.activity_fraction(stream)
