"""Tests for MFCC features, the recogniser family and the command pipeline."""

import numpy as np
import pytest

from repro.asr.audio import KEYWORDS, CommandAudioGenerator
from repro.asr.commands import CommandGrammar, VoiceCommandPipeline
from repro.asr.features import log_mel_spectrogram, mel_filterbank, mfcc, utterance_embedding
from repro.asr.recognizer import (
    ASR_MODEL_FAMILY,
    KeywordRecognizer,
    RecognizerProfile,
    recognizer_family,
)


class TestFeatures:
    def test_mel_filterbank_shape_and_coverage(self):
        bank = mel_filterbank(26, 512, 16000.0)
        assert bank.shape == (26, 257)
        assert (bank >= 0).all()
        assert bank.sum(axis=1).min() > 0  # every filter covers some bins

    def test_log_mel_shape(self):
        audio = np.random.default_rng(0).standard_normal(16000)
        features = log_mel_spectrogram(audio)
        assert features.shape[1] == 26
        assert features.shape[0] > 0

    def test_mfcc_shape_and_argument_validation(self):
        audio = np.random.default_rng(0).standard_normal(16000)
        coefficients = mfcc(audio, n_coefficients=13)
        assert coefficients.shape[1] == 13
        with pytest.raises(ValueError):
            mfcc(audio, n_coefficients=0)
        with pytest.raises(ValueError):
            mfcc(audio, n_coefficients=40)

    def test_short_audio_rejected(self):
        with pytest.raises(ValueError):
            log_mel_spectrogram(np.zeros(10))

    def test_utterance_embedding_fixed_length(self):
        gen = CommandAudioGenerator(seed=0)
        embedding = utterance_embedding(gen.utterance("arm"))
        assert embedding.shape == (26,)

    def test_same_word_embeddings_closer_than_different_words(self):
        gen = CommandAudioGenerator(seed=1)
        arm1 = utterance_embedding(gen.utterance("arm"))
        arm2 = utterance_embedding(gen.utterance("arm"))
        fingers = utterance_embedding(gen.utterance("fingers"))
        assert np.linalg.norm(arm1 - arm2) < np.linalg.norm(arm1 - fingers)


class TestRecognizer:
    @pytest.fixture(scope="class")
    def trained_small(self):
        generator = CommandAudioGenerator(seed=2)
        waveforms, labels = generator.labelled_dataset(n_per_word=12)
        profile = ASR_MODEL_FAMILY[2]  # kws-small
        return KeywordRecognizer(profile, seed=0).fit(waveforms, labels), generator

    def test_fit_validation(self):
        recognizer = KeywordRecognizer(ASR_MODEL_FAMILY[0])
        with pytest.raises(ValueError):
            recognizer.fit([], [])
        with pytest.raises(ValueError):
            recognizer.fit([np.zeros(16000)], ["arm", "elbow"])

    def test_transcribe_before_fit_raises(self):
        recognizer = KeywordRecognizer(ASR_MODEL_FAMILY[0])
        with pytest.raises(RuntimeError):
            recognizer.transcribe(np.zeros(16000))

    def test_recognises_known_keywords(self, trained_small):
        recognizer, generator = trained_small
        test_waveforms, test_labels = generator.labelled_dataset(n_per_word=6)
        assert recognizer.accuracy(test_waveforms, test_labels) > 0.6

    def test_scores_cover_vocabulary(self, trained_small):
        recognizer, generator = trained_small
        scores = recognizer.scores(generator.utterance("arm"))
        assert set(KEYWORDS) <= set(scores)

    def test_empty_accuracy_is_zero(self, trained_small):
        recognizer, _ = trained_small
        assert recognizer.accuracy([], []) == 0.0

    def test_larger_models_are_slower_and_not_less_accurate(self):
        generator = CommandAudioGenerator(seed=3, snr_db=8.0)
        family = recognizer_family(generator, n_train_per_word=15, seed=1)
        eval_waveforms, eval_labels = generator.labelled_dataset(n_per_word=8)
        tiny = family["kws-tiny"]
        large = family["kws-large"]
        assert large.accuracy(eval_waveforms, eval_labels) >= tiny.accuracy(
            eval_waveforms, eval_labels
        ) - 0.05
        probe = generator.utterance("arm")
        assert large.inference_latency_s(probe, repeats=2) > tiny.inference_latency_s(
            probe, repeats=2
        )

    def test_family_profiles_increase_in_size(self):
        vram = [p.vram_mb for p in ASR_MODEL_FAMILY]
        assert vram == sorted(vram)
        assert [p.name for p in ASR_MODEL_FAMILY][2] == "kws-small"


class TestCommandPipeline:
    @pytest.fixture(scope="class")
    def pipeline(self):
        generator = CommandAudioGenerator(seed=4)
        waveforms, labels = generator.labelled_dataset(n_per_word=12)
        recognizer = KeywordRecognizer(ASR_MODEL_FAMILY[2], seed=0).fit(waveforms, labels)
        return VoiceCommandPipeline(recognizer), generator

    def test_grammar_maps_keywords_to_modes(self):
        grammar = CommandGrammar()
        assert grammar.mode_for("arm") == "arm"
        assert grammar.mode_for("hello") is None

    def test_invalid_grammar_rejected(self):
        with pytest.raises(ValueError):
            CommandGrammar(keyword_to_mode={"arm": "shoulder"})

    def test_detects_scheduled_commands(self, pipeline):
        pipe, generator = pipeline
        stream = generator.stream_with_commands([(1.0, "arm"), (3.0, "fingers")], 5.0)
        commands = pipe.process_stream(stream)
        assert len(commands) >= 1
        assert all(c.keyword in generator.vocabulary for c in commands)

    def test_duty_cycle_below_one_for_sparse_commands(self, pipeline):
        pipe, generator = pipeline
        stream = generator.stream_with_commands([(2.0, "elbow")], 8.0)
        assert pipe.duty_cycle(stream) < 0.5
