#!/usr/bin/env python
"""Voice-command mode switching: VAD, keyword spotting and the multiplexer.

Reproduces the ASR half of the system (paper §III-F and Fig. 7):

1. compares the keyword-recogniser family (Whisper-variant analogues) on
   accuracy, latency and memory, picking the knee-point model;
2. runs a continuous audio stream with embedded commands through VAD gating
   and the selected recogniser; and
3. feeds the decoded commands into the mode multiplexer that the real-time
   control loop uses.

Run with:  python examples/voice_multiplexing.py
"""

from __future__ import annotations

from repro.asr.audio import CommandAudioGenerator
from repro.asr.commands import VoiceCommandPipeline
from repro.asr.recognizer import recognizer_family
from repro.core.multiplexer import ModeMultiplexer
from repro.experiments import fig07_asr_pareto


def main() -> None:
    print("=== ASR model family trade-off (Fig. 7) ===")
    result = fig07_asr_pareto.run(n_train_per_word=20, n_eval_per_word=10, seed=0)
    print(fig07_asr_pareto.format_report(result))
    print(f"\nselected recogniser: {result.selected}")

    print("\n=== VAD-gated command decoding on a continuous stream ===")
    generator = CommandAudioGenerator(seed=3)
    family = recognizer_family(generator, n_train_per_word=20, seed=0)
    recognizer = family[result.selected]
    pipeline = VoiceCommandPipeline(recognizer)
    schedule = [(2.0, "arm"), (5.0, "elbow"), (8.0, "fingers")]
    stream = generator.stream_with_commands(schedule, total_duration_s=11.0)
    print(f"  stream duration: 11.0 s, commands spoken at "
          f"{[t for t, _ in schedule]} s")
    print(f"  fraction of audio the ASR model actually processes (VAD duty cycle): "
          f"{pipeline.duty_cycle(stream):.2f}")

    multiplexer = ModeMultiplexer()
    print(f"  initial control mode: {multiplexer.mode}")
    for command in pipeline.process_stream(stream):
        switched = multiplexer.handle_command(command)
        outcome = "switched to" if switched else "kept"
        print(f"  t={command.time_s:5.2f}s  heard '{command.keyword}' -> {outcome} "
              f"mode '{multiplexer.mode}'")
    print(f"  final control mode: {multiplexer.mode} "
          f"({multiplexer.switch_count()} switches)")


if __name__ == "__main__":
    main()
