#!/usr/bin/env python
"""Quickstart: simulate an EEG collection session, train a classifier, predict.

This walks the first half of the CognitiveArm pipeline end to end:

1. simulate a small cohort with the paper's cue-driven collection protocol,
2. preprocess, annotate and segment the recordings into labelled windows,
3. train the paper's CNN architecture (single conv layer, 5x5 kernel,
   stride 2) on four participants, and
4. evaluate on the held-out participant and classify a few fresh windows.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.dataset.annotation import AnnotationConfig, Annotator
from repro.dataset.balance import balance_classes
from repro.dataset.protocol import ExperimentalProtocol, ProtocolConfig
from repro.dataset.splits import leave_one_subject_out
from repro.dataset.windows import WindowConfig, segment_cohort
from repro.models.base import TrainingConfig
from repro.models.cnn import CNNConfig, EEGCNN
from repro.signals.synthetic import ParticipantProfile


def main() -> None:
    print("=== CognitiveArm quickstart ===")
    print("Simulating the EEG collection protocol for 3 participants ...")
    profiles = ParticipantProfile.cohort(3, base_seed=42, erd_depth_range=(0.6, 0.85))
    protocol = ExperimentalProtocol(
        ProtocolConfig(task_duration_s=6.0, rest_duration_s=6.0,
                       session_duration_s=72.0, n_sessions=1),
        seed=0,
    )
    recordings = protocol.record_cohort(profiles)
    total_minutes = sum(r.total_duration_s for r in recordings.values()) / 60.0
    print(f"  collected {total_minutes:.1f} minutes of 16-channel EEG at 125 Hz")

    print("Preprocessing (Butterworth 0.5-45 Hz, 50 Hz notch), annotating, windowing ...")
    annotator = Annotator(AnnotationConfig(transition_period_s=0.5))
    labelled = {pid: annotator.annotate_recording(rec) for pid, rec in recordings.items()}
    dataset = segment_cohort(labelled, WindowConfig(window_size=100, step=25))
    dataset = balance_classes(dataset, "undersample")
    print(f"  {len(dataset)} balanced windows, classes: {dataset.class_counts()}")

    print("Training the paper's CNN on a leave-one-subject-out fold ...")
    fold = next(iter(leave_one_subject_out(dataset)))
    model = EEGCNN(
        CNNConfig(filters=(16,), kernel_size=5, stride=2, hidden_units=32, dropout=0.0),
        training=TrainingConfig(epochs=20, batch_size=32, learning_rate=1e-2, patience=20),
        seed=0,
    )
    model.fit(fold.train, fold.validation)
    print(f"  validation accuracy: {model.evaluate(fold.validation):.3f}")
    print(f"  test accuracy on held-out participant {fold.test_participant}: "
          f"{model.evaluate(fold.test):.3f}")
    print(f"  parameters: {model.parameter_count()}")

    print("Classifying five fresh windows from the held-out participant ...")
    sample = fold.test.windows[:5]
    predictions = model.predict(sample)
    probabilities = model.predict_proba(sample)
    for i, (prediction, probs) in enumerate(zip(predictions, probabilities)):
        truth = fold.test.label_names[fold.test.labels[i]]
        predicted = fold.test.label_names[prediction]
        print(f"  window {i}: predicted '{predicted}' (p={probs.max():.2f}), true '{truth}'")


if __name__ == "__main__":
    main()
