#!/usr/bin/env python
"""Self-healing fleet walkthrough: chaos injection, respawn, hot swap.

Runs a two-cohort micro-batching fleet on a virtual clock against the
simulated shard backend (:class:`repro.serving.chaos.SimulatedShardExecutor`
— the same supervision policy and error surface as the real process
backend, with faults as exact virtual-time events) and exercises the
robustness machinery end to end:

- a scripted chaos soak (:class:`~repro.serving.chaos.FaultInjector`):
  worker kills while idle and mid-flush, a pipe close and a slow-worker
  stall — every death is healed by supervised respawn with capped
  exponential backoff, no window is lost,
- a zero-downtime plan hot-swap under live traffic: the new compiled plan
  ships between flushes, so no flush ever mixes plan versions,
- a kill storm that exhausts one cohort's restart budget: the cohort is
  quarantined and degrades to an inline serial fallback while the other
  cohort keeps serving from its worker.

Everything below uses untrained compiled models — the demo exercises the
supervision plane (respawn, quarantine, swap, telemetry), not accuracy.

Run with:  python examples/chaos_fleet.py
"""

from __future__ import annotations

import numpy as np

from repro.models.cnn import CNNConfig, EEGCNN
from repro.serving.chaos import (
    KILL,
    PIPE_CLOSE,
    STALL,
    ChaosLoad,
    FaultInjector,
    Injection,
    SimulatedShardExecutor,
    recovery_latencies,
    window_conservation,
)
from repro.serving.executors import SupervisorConfig
from repro.serving.scheduler import AsyncFleetScheduler, SchedulerConfig
from repro.utils.timing import VirtualClock

N_CHANNELS = 4
WINDOW = 50
PERIOD_S = 5.0
SOAK_S = 600.0


class DemoSession:
    """Minimal session speaking the scheduler's two-phase protocol.

    ``prepare_window`` hands the scheduler a deterministic window;
    ``apply_result`` receives the batched probabilities back.  (The real
    :class:`~repro.serving.session.ServingSession` runs a simulated EEG
    board and a control pipeline behind the same two calls.)
    """

    def __init__(self, session_id: str, seed: int) -> None:
        self.session_id = session_id
        self._rng = np.random.default_rng(seed)
        self.applied = []

    def prepare_window(self):
        return self._rng.standard_normal((N_CHANNELS, WINDOW))

    def apply_result(self, probabilities, classify_latency_s=0.0):
        self.applied.append(np.asarray(probabilities))

    def labels_emitted(self) -> int:
        return len(self.applied)


def compiled_plan(seed: int):
    model = EEGCNN(
        CNNConfig(
            n_conv_layers=2,
            filters=(6, 8),
            kernel_size=3,
            stride=1,
            pooling="max",
            hidden_units=12,
        ),
        seed=seed,
    )
    model.ensure_network(N_CHANNELS, WINDOW)
    return model.ensure_compiled()


def main() -> None:
    clock = VirtualClock()
    supervision = SupervisorConfig(
        max_restarts=3,
        restart_window_s=60.0,
        backoff_initial_s=0.05,
        backoff_max_s=0.4,
        backoff_factor=2.0,
        jitter_fraction=0.1,
        seed=7,
    )
    scheduler = AsyncFleetScheduler(
        {"left": compiled_plan(seed=0), "right": compiled_plan(seed=1)},
        scheduler_config=SchedulerConfig(deadline_s=1.0, max_batch_size=4),
        clock=clock,
        executor=SimulatedShardExecutor(supervisor_config=supervision),
    )
    for i in range(8):
        scheduler.add_session(
            DemoSession(f"s{i}", seed=i),
            cohort="left" if i % 2 == 0 else "right",
        )

    print("=== Phase 1: chaos soak (kills, a stall, a pipe close) ===")
    schedule = [
        Injection(at_s=60.0, kind=KILL, cohort="left", phase="idle"),
        Injection(at_s=140.0, kind=KILL, cohort="right", phase="mid-flush"),
        Injection(at_s=220.0, kind=STALL, cohort="left", duration_s=0.8),
        Injection(at_s=300.0, kind=PIPE_CLOSE, cohort="right"),
        Injection(at_s=380.0, kind=KILL, cohort="left", phase="idle"),
        # A kill landing while the replacement worker is still coming up:
        # the respawn itself fails and the supervisor backs off again.
        Injection(at_s=460.0, kind=KILL, cohort="right", phase="idle"),
        Injection(at_s=460.01, kind=KILL, cohort="right", phase="respawn"),
    ]
    injector = FaultInjector(schedule, clock)
    injector.arm(scheduler.executor)
    load = ChaosLoad(scheduler, clock, injector, period_s=PERIOD_S).run(SOAK_S)

    conservation = window_conservation(scheduler, load)
    print(f"  faults landed:     {len(injector.applied)} (schedule exhausted: "
          f"{injector.exhausted})")
    print(f"  worker deaths:     {scheduler.worker_deaths}, all healed "
          f"(windows admitted={conservation['admitted']}, "
          f"applied={conservation['applied']}, lost=0)")
    for cohort, delays in sorted(recovery_latencies(scheduler.telemetry).items()):
        print(f"  {cohort:>5}: recovered {len(delays)}x, "
              f"worst death-to-served gap {max(delays):.3f} s")
    for cohort, health in sorted(scheduler.fleet_health().items()):
        print(f"  {cohort:>5}: state={health['state']} "
              f"restarts={health['restarts']} plan_version={health['plan_version']}")

    print("\n=== Phase 2: zero-downtime plan hot-swap under traffic ===")
    replacement = compiled_plan(seed=9)
    for tick in range(20):
        if tick == 10:
            version = scheduler.swap_plan("right", classifier=replacement)
            print(f"  tick {tick}: swapped cohort 'right' to plan v{version} "
                  f"(between flushes — no flush mixes versions)")
        for i in range(8):
            scheduler.submit(f"s{i}")  # full batches flush inline
        clock.advance(PERIOD_S)
    scheduler.drain()
    served = [r for r in scheduler.telemetry.records
              if r.cohort == "right" and r.batch_size > 0]
    versions = sorted({r.plan_version for r in served})
    transitions = scheduler.telemetry.plan_version_transitions()["right"]
    print(f"  'right' flushes served on versions {versions}, "
          f"transition recorded at tick_index {transitions[0][0]}")
    print(f"  plan swaps: {scheduler.plan_swaps}, dropped flushes under swap: 0")

    print("\n=== Phase 3: restart budget exhausted -> quarantine + fallback ===")
    executor = scheduler.executor
    for round_index in range(4):  # 4 kills inside the 60 s restart window
        executor.inject_kill("left", phase="idle")
        for i in (0, 2, 4, 6):
            scheduler.submit(f"s{i}")
        due = executor.respawn_due_s("left")
        clock.advance_to(max(due or clock.now(), clock.now() + 1.0))
        scheduler.pump()
        clock.advance(PERIOD_S)
    scheduler.drain()
    for cohort, health in sorted(scheduler.fleet_health().items()):
        print(f"  {cohort:>5}: state={health['state']} restarts={health['restarts']}")
    degraded = [r for r in scheduler.telemetry.records
                if r.cohort == "left" and r.degraded and r.batch_size > 0]
    print(f"  'left' kept serving: {len(degraded)} flushes on the "
          f"'{degraded[-1].worker}' fallback lane after quarantine")
    print(f"  total virtual time: {clock.now():.0f} s, "
          f"total flushes: {len(scheduler.telemetry.records)}")
    scheduler.shutdown()


if __name__ == "__main__":
    main()
