#!/usr/bin/env python
"""Design-space exploration: evolutionary search, ensembles and compression.

Reproduces the model-selection half of the paper (Figs. 8-12) at a scale that
runs in a few minutes on a laptop:

1. evolutionary search over the CNN/LSTM/Transformer design spaces,
2. the combined accuracy-vs-parameters Pareto front with Random Forests,
3. all pairwise ensembles (inference time vs accuracy), and
4. pruning/quantization of the selected model for edge deployment.

Run with:  python examples/model_exploration.py
"""

from __future__ import annotations

from repro.experiments import (
    fig08_evolutionary,
    fig09_pareto_front,
    fig10_rf_search,
    fig11_ensemble,
    fig12_compression,
)
from repro.experiments.common import BENCH_SCALE


def main() -> None:
    print("=== Evolutionary search per model family (Fig. 8) ===")
    fig08 = fig08_evolutionary.run(
        scale=BENCH_SCALE, population_size=6, generations=3, training_epochs=4,
        model_scale=0.1, seed=0,
    )
    print(fig08_evolutionary.format_report(fig08))

    print("\n=== Combined Pareto front (Fig. 9) ===")
    fig09 = fig09_pareto_front.run(fig08_result=fig08, rf_estimator_counts=(10, 30), seed=0)
    print(fig09_pareto_front.format_report(fig09))

    print("\n=== Random Forest hyper-parameter sweep (Fig. 10) ===")
    fig10 = fig10_rf_search.run(estimator_counts=(10, 20, 40), depths=(5, 10, 20), seed=0)
    print(fig10_rf_search.format_report(fig10))

    print("\n=== Ensemble comparison (Fig. 11) ===")
    fig11 = fig11_ensemble.run(epochs=4, seed=0)
    print(fig11_ensemble.format_report(fig11))

    print("\n=== Compression sweep (Fig. 12) ===")
    fig12 = fig12_compression.run(epochs=4, seed=0)
    print(fig12_compression.format_report(fig12))

    print("\nSelected configuration:", fig11.best_ensemble.name,
          "| compressed pick:", fig12.selected.label)


if __name__ == "__main__":
    main()
