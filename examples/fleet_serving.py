#!/usr/bin/env python
"""Fleet serving walkthrough: many users, one classifier, one batch per tick.

Builds a heterogeneous fleet of simulated participants, serves them all from
a single shared classifier with cross-session micro-batched inference, and
exercises the serving subsystem's operational behaviours:

- sessions joining and leaving mid-run,
- a session stalling (the batch shrinks, nobody else is delayed, and the
  stalled session catches up by dropping its backlog),
- fleet telemetry: throughput in labels/s, p50/p95/p99 batch latency,
  backlog depth and per-session accuracy.

Run with:  python examples/fleet_serving.py
"""

from __future__ import annotations

import numpy as np

from repro.core.config import CognitiveArmConfig
from repro.experiments.common import BENCH_SCALE, small_reference_models, train_validation
from repro.serving import FleetServer, calibrate_batch_latency_s
from repro.signals.synthetic import ACTION_LEFT, ACTION_RIGHT, ParticipantProfile


def make_profile(index: int) -> ParticipantProfile:
    """Heterogeneous fleet: each participant gets different ERD strength."""
    profile = ParticipantProfile(participant_id=f"USER{index:02d}", seed=200 + index)
    profile.rhythms.erd_depth = 0.6 + 0.04 * (index % 6)
    return profile


def main() -> None:
    config = CognitiveArmConfig(window_size=BENCH_SCALE.window_size,
                                label_rate_hz=10.0,
                                confidence_threshold=0.34, smoothing_window=3)

    print("=== Training the shared fleet classifier ===")
    train, validation = train_validation(BENCH_SCALE, seed=0)
    classifier = small_reference_models(epochs=4, seed=0)["cnn"]
    classifier.fit(train, validation)
    print(f"  validation accuracy: {classifier.evaluate(validation):.3f}")

    print("\n=== Sizing the fleet against the label-period budget ===")
    for batch in (1, 4, 8, 16):
        latency = calibrate_batch_latency_s(
            classifier, np.zeros((batch, config.n_channels, config.window_size))
        )
        verdict = "ok" if latency <= config.label_period_s else "OVER BUDGET"
        print(f"  batch n={batch:2d}: {latency * 1e3:7.2f} ms per tick "
              f"(budget {config.label_period_s * 1e3:.0f} ms) [{verdict}]")

    print("\n=== Serving an 8-session fleet with mid-run churn ===")
    server = FleetServer(classifier, config)
    for index in range(8):
        session = server.add_session(profile=make_profile(index))
        session.set_action(ACTION_RIGHT if index % 2 == 0 else ACTION_LEFT)

    # Phase 1: steady state.
    for _ in range(20):
        server.tick()

    # Phase 2: one user disconnects, a new one joins with a stall scheduled.
    departing = server.sessions[0]
    server.remove_session(departing.session_id)
    print(f"  {departing.session_id} left after {departing.labels_emitted()} labels")
    flaky = server.add_session(
        profile=make_profile(8),
        session_id="late-flaky",
        stall_ticks={4, 5, 6},  # session-local ticks: stalls shortly after joining
    )
    flaky.set_action(ACTION_RIGHT)
    for _ in range(20):
        server.tick()

    report = server.report()
    server.shutdown()

    print("\n=== Fleet telemetry ===")
    fleet = report.fleet
    print(f"  ticks: {int(fleet['ticks'])}, labels: {int(fleet['total_labels'])}")
    print(f"  throughput: {fleet['throughput_labels_per_s']:.0f} labels/s "
          f"of classification time")
    print(f"  batch latency p50/p95/p99: {fleet['batch_latency_p50_s'] * 1e3:.2f} / "
          f"{fleet['batch_latency_p95_s'] * 1e3:.2f} / "
          f"{fleet['batch_latency_p99_s'] * 1e3:.2f} ms")
    print(f"  stall rate: {fleet['stall_rate']:.3f}, "
          f"max backlog depth: {int(fleet['max_backlog_depth'])}")

    print("\n=== Per-session roll-up ===")
    for stats in report.sessions:
        print(f"  {stats.session_id:>12s}: {stats.labels_emitted:3d} labels, "
              f"accuracy {stats.accuracy:.2f}, "
              f"dropped windows {stats.dropped_windows}")


if __name__ == "__main__":
    main()
