#!/usr/bin/env python
"""Real-time multiplexed control of the prosthetic arm (the Fig. 6 scenario).

Trains the CNN + Transformer ensemble on a simulated cohort, then runs a
scripted real-time session: the (simulated) user raises the hand with
right-hand imagery in *arm* mode, rotates the wrist in *elbow* mode and
closes the fingers in *fingers* mode — switching modes with voice commands —
finishing with the "catch a ball" task script.

Run with:  python examples/realtime_control.py
"""

from __future__ import annotations

from repro.arm.poses import task_library
from repro.core.config import CognitiveArmConfig
from repro.core.pipeline import CognitiveArmPipeline, ScriptedIntent
from repro.experiments.common import BENCH_SCALE, small_reference_models, train_validation
from repro.models.ensemble import EnsembleClassifier
from repro.signals.synthetic import ACTION_IDLE, ACTION_LEFT, ACTION_RIGHT, ParticipantProfile


def main() -> None:
    print("=== Training the deployed CNN + Transformer ensemble ===")
    train, validation = train_validation(BENCH_SCALE, seed=0)
    models = small_reference_models(epochs=4, seed=0)
    ensemble = EnsembleClassifier([models["cnn"], models["transformer"]],
                                  name="cnn+transformer")
    ensemble.fit(train, validation)
    print(f"  validation accuracy: {ensemble.evaluate(validation):.3f}")

    print("\n=== Running the scripted real-time session (15 Hz labels) ===")
    profile = ParticipantProfile(participant_id="USER", seed=99)
    profile.rhythms.erd_depth = 0.8
    config = CognitiveArmConfig(window_size=BENCH_SCALE.window_size,
                                confidence_threshold=0.34, smoothing_window=3)
    pipeline = CognitiveArmPipeline(ensemble, profile=profile, config=config, seed=1)
    script = [
        ScriptedIntent(1.0, ACTION_IDLE),
        ScriptedIntent(2.0, ACTION_RIGHT, voice_keyword="arm"),      # raise hand
        ScriptedIntent(2.0, ACTION_RIGHT, voice_keyword="elbow"),    # rotate clockwise
        ScriptedIntent(2.0, ACTION_RIGHT, voice_keyword="fingers"),  # close fingers
        ScriptedIntent(2.0, ACTION_LEFT),                            # open fingers
        ScriptedIntent(1.0, ACTION_IDLE),
    ]
    report = pipeline.run_scripted_session(script, success_threshold=0.3)
    state = pipeline.controller.joint_state()
    print(f"  intent accuracy over the session: {report.intent_accuracy:.3f}")
    print(f"  per-phase accuracy: {[round(a, 2) for a in report.per_phase_accuracy]}")
    print(f"  mode switches via voice: {report.mode_switches}")
    print(f"  mean per-label processing latency: {report.mean_processing_latency_s * 1000:.1f} ms")
    print(f"  final joint state: elbow {state.elbow_deg:.1f} deg, "
          f"wrist {state.wrist_rotation_deg:.1f} deg, grip {state.grip_percent:.0f}%")
    print(f"  fingertip position (cm): "
          f"{tuple(round(v, 1) for v in pipeline.controller.arm.fingertip_position_cm())}")

    print("\n=== Replaying the 'catch a ball' task script on the arm ===")
    arm = pipeline.controller.arm
    script = task_library()["ball_catch"]
    for step in range(5):
        t = step * script.duration_s / 4
        arm.move_to(script.pose_at(t))
        x, y, z = arm.fingertip_position_cm()
        print(f"  t={t:.1f}s  elbow {arm.joint_state.elbow_deg:5.1f} deg  "
              f"grip {arm.joint_state.grip_percent:5.1f}%  fingertip=({x:.1f}, {y:.1f}, {z:.1f}) cm")


if __name__ == "__main__":
    main()
