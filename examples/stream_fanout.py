#!/usr/bin/env python
"""Stream fan-out walkthrough: many producers, two scheduler processes.

Builds the same two-cohort fleet as ``examples/fleet_serving.py`` but runs
it on the streaming data plane (``repro.streams``): producer threads append
EEG windows to per-cohort append-only logs hosted by a
:class:`StreamServer`, and two *separate scheduler processes* — one per
cohort — drain the logs through consumer groups, flush micro-batches on
their own compiled classifier replica, and publish
:class:`~repro.streams.messages.FlushResult` records to the shared result
stream.  The producer side watches per-group lag and depth live, then
reads the result stream back for the throughput roll-up.

The classifiers are compiled but untrained — the demo exercises the data
plane (logs, groups, acks, socket transport, multi-process fan-out), not
accuracy.

Run with:  python examples/stream_fanout.py
"""

from __future__ import annotations

import multiprocessing
import threading
import time

from repro.models.cnn import CNNConfig, EEGCNN
from repro.serving.scheduler import SchedulerConfig
from repro.signals.synthetic import (
    ACTION_LEFT,
    ACTION_RIGHT,
    ParticipantProfile,
    SyntheticEEGGenerator,
)
from repro.streams import (
    DEFAULT_AUTHKEY,
    SCHEDULER_GROUP,
    STOP_COMMAND,
    StreamRegistry,
    StreamServer,
    WindowSubmission,
    stream_consumer_worker,
)

COHORTS = ("adults", "kids")
SESSIONS_PER_COHORT = 4
ROUNDS = 15
WINDOW_S = 0.4  # 50 samples at 125 Hz


def compiled_payload(seed: int, n_channels: int, n_samples: int) -> bytes:
    """One cohort's classifier as a transport payload the worker rebuilds."""
    classifier = EEGCNN(
        CNNConfig(
            n_conv_layers=2,
            filters=(6, 8),
            kernel_size=3,
            stride=1,
            pooling="max",
            hidden_units=12,
        ),
        seed=seed,
    )
    classifier.ensure_network(n_channels, n_samples)
    return classifier.ensure_compiled().to_payload()


def make_generators(cohort_index: int) -> list:
    """A cohort's participants, with heterogeneous ERD like fleet_serving."""
    generators = []
    for index in range(SESSIONS_PER_COHORT):
        profile = ParticipantProfile(
            participant_id=f"{COHORTS[cohort_index]}-s{index}",
            seed=200 + 10 * cohort_index + index,
        )
        profile.rhythms.erd_depth = 0.6 + 0.04 * (index % 6)
        generators.append(SyntheticEEGGenerator(profile))
    return generators


def produce(cohort: str, stream, generators, clock) -> None:
    """One producer thread: every round, a fresh window for every session."""
    for sequence in range(ROUNDS):
        for generator in generators:
            action = ACTION_RIGHT if sequence % 2 == 0 else ACTION_LEFT
            window = generator.generate(WINDOW_S, action=action)
            stream.append(
                WindowSubmission(
                    session_id=generator.profile.participant_id,
                    cohort=cohort,
                    window=window,
                    submitted_at_s=clock.now(),
                    sequence=sequence,
                )
            )
        time.sleep(0.05)  # stream at a realistic cadence


def main() -> None:
    probe = make_generators(0)[0]
    n_channels = probe.montage.n_channels
    n_samples = int(round(WINDOW_S * probe.sampling_rate_hz))

    print("=== Compiling one classifier replica payload per cohort ===")
    payloads = {
        cohort: compiled_payload(seed, n_channels, n_samples)
        for seed, cohort in enumerate(COHORTS)
    }
    for cohort in COHORTS:
        print(f"  {cohort}: {len(payloads[cohort]) / 1024:.1f} KiB payload")

    print("\n=== Hosting the stream topology behind a StreamServer ===")
    registry = StreamRegistry()
    server = StreamServer(registry).start()
    streams = {cohort: registry.create(f"fleet/{cohort}")[0] for cohort in COHORTS}
    result_stream, _ = registry.create("fleet/#results")
    control_stream, _ = registry.create("fleet/#control")
    print(f"  listening on {server.address}, streams: "
          + ", ".join(f"fleet/{c}" for c in COHORTS))

    print("\n=== Spawning one scheduler process per cohort ===")
    config = SchedulerConfig(deadline_s=0.05, max_batch_size=8)
    ctx = multiprocessing.get_context("spawn")
    workers = [
        ctx.Process(
            target=stream_consumer_worker,
            args=(
                server.address,
                DEFAULT_AUTHKEY,
                {cohort: f"fleet/{cohort}"},
                "fleet/#results",
                "fleet/#control",
                {cohort: payloads[cohort]},
                config,
                SCHEDULER_GROUP,
                f"worker-{index}",
            ),
            daemon=True,
        )
        for index, cohort in enumerate(COHORTS)
    ]
    for worker in workers:
        worker.start()
    # Spawned workers take a moment to rebuild their classifier and join
    # the group; produce only once both groups exist, so windows meet a
    # live scheduler instead of piling up and being superseded.
    while not all(s.has_group(SCHEDULER_GROUP) for s in streams.values()):
        time.sleep(0.02)
    print("  both consumer groups registered: schedulers are live")

    print("\n=== Producing: "
          f"{len(COHORTS)} threads x {SESSIONS_PER_COHORT} sessions x "
          f"{ROUNDS} rounds ===")
    started = time.monotonic()
    producers = [
        threading.Thread(
            target=produce,
            args=(cohort, streams[cohort], make_generators(index), registry.clock),
        )
        for index, cohort in enumerate(COHORTS)
    ]
    for producer in producers:
        producer.start()
    while any(producer.is_alive() for producer in producers):
        time.sleep(0.1)
        lags = {
            cohort: (stream.lag_s(SCHEDULER_GROUP), stream.depth(SCHEDULER_GROUP))
            if stream.has_group(SCHEDULER_GROUP)
            else (0.0, len(stream))
            for cohort, stream in streams.items()
        }
        print("  " + "   ".join(
            f"{cohort}: lag {lag * 1e3:6.1f} ms, depth {depth:2d}"
            for cohort, (lag, depth) in lags.items()
        ))
    for producer in producers:
        producer.join()

    # Wait for both consumer groups to drain, then stop the workers.
    while not all(
        s.has_group(SCHEDULER_GROUP) and s.depth(SCHEDULER_GROUP) == 0
        for s in streams.values()
    ):
        time.sleep(0.02)
    elapsed = time.monotonic() - started
    control_stream.append(STOP_COMMAND)
    for worker in workers:
        worker.join(timeout=30)
    server.stop()

    print("\n=== Result-stream roll-up ===")
    results = [entry.payload for entry in result_stream.range()]
    submitted = len(COHORTS) * SESSIONS_PER_COHORT * ROUNDS
    for index, cohort in enumerate(COHORTS):
        mine = [r for r in results if r.cohort == cohort]
        rows = sum(len(r.session_ids) for r in mine)
        superseded = sum(len(r.superseded) for r in mine)
        batches = [len(r.session_ids) for r in mine if r.session_ids]
        lag_peak = max((r.stream_lag_s for r in mine), default=0.0)
        print(f"  {cohort:>7s} (worker-{index}): {rows:3d} rows + "
              f"{superseded} superseded in {len(batches)} flushes, "
              f"mean batch {sum(batches) / max(len(batches), 1):.1f}, "
              f"peak group lag {lag_peak * 1e3:.1f} ms")
    served = sum(len(r.session_ids) for r in results)
    superseded = sum(len(r.superseded) for r in results)
    print(f"  conservation: {served} served + {superseded} superseded "
          f"== {submitted} submitted "
          f"[{'ok' if served + superseded == submitted else 'LOST WINDOWS'}]")
    print(f"  end-to-end throughput: {served / elapsed:.0f} rows/s "
          f"across {len(workers)} scheduler processes")


if __name__ == "__main__":
    main()
